//! A recycling pool of [`PacketBuf`]s and the sink trait the datapath
//! engines emit through.
//!
//! The PXGW hot loop (merge, split, caravan) must not touch the global
//! allocator per packet: §3/§4 of the paper put the gateway on the
//! 400 GbE fast path, where an allocator round-trip per packet is the
//! difference between line rate and not. [`BufPool`] keeps a LIFO
//! freelist of headroom-preserving buffers (LIFO so the hottest buffer —
//! the one most likely still in cache — is reused first, the same
//! policy as DPDK mempool caches and the kernel's per-CPU page caches).
//!
//! Emission is *sink-based*: instead of `push(..) -> Vec<Vec<u8>>`
//! (one `Vec` per output packet plus the collection itself), engines
//! call [`PacketSink::accept`] per output packet. The sink either keeps
//! the buffer (ownership transfer, e.g. [`VecSink`] for the
//! `Vec`-returning compatibility wrappers) or hands it straight back so
//! the caller can [`BufPool::put`] it — the zero-allocation steady
//! state.

use crate::buffer::{PacketBuf, DEFAULT_HEADROOM};
use std::cell::Cell;
#[cfg(debug_assertions)]
use std::collections::HashSet;

/// Pool occupancy / traffic counters, for leak checks and bench
/// reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers created fresh because the freelist was empty.
    pub allocated: u64,
    /// Buffers handed out (fresh + recycled).
    pub gets: u64,
    /// Buffers returned.
    pub puts: u64,
    /// Returned buffers dropped because the freelist was at capacity.
    pub dropped: u64,
    /// [`BufPool::try_get`] calls that found the pool exhausted (the
    /// degradation trigger — see DESIGN.md §12).
    pub exhausted: u64,
}

/// A LIFO freelist of recycled [`PacketBuf`]s.
///
/// Every buffer handed out has `headroom` bytes reserved in front (so
/// encapsulation never copies) and a backing allocation sized for
/// `headroom + payload_capacity` bytes (so appends up to the configured
/// payload size never reallocate). In debug builds the pool tracks the
/// base address of every parked buffer and panics on a double-`put`.
#[derive(Debug)]
pub struct BufPool {
    free: Vec<PacketBuf>,
    headroom: usize,
    capacity: usize,
    max_free: usize,
    /// Optional cap on buffers live at once (outstanding + parked
    /// fresh allocations). `None` = unbounded, the historical behavior;
    /// `Some(n)` makes [`BufPool::try_get`] report exhaustion instead
    /// of allocating past `n` — how tests and the chaos harness model a
    /// finite mempool.
    live_cap: Option<u64>,
    /// Occupancy and traffic counters.
    pub stats: PoolStats,
    #[cfg(debug_assertions)]
    parked: HashSet<usize>,
}

impl BufPool {
    /// Creates a pool of buffers with `headroom` front bytes and room
    /// for `payload_capacity` payload bytes, keeping at most `max_free`
    /// buffers parked.
    pub fn new(headroom: usize, payload_capacity: usize, max_free: usize) -> Self {
        BufPool {
            free: Vec::new(),
            headroom,
            capacity: headroom + payload_capacity,
            max_free,
            live_cap: None,
            stats: PoolStats::default(),
            #[cfg(debug_assertions)]
            parked: HashSet::new(),
        }
    }

    /// A pool sized for one jumbo packet plus encapsulation headroom —
    /// the configuration every PXGW engine uses.
    pub fn for_mtu(imtu: usize, max_free: usize) -> Self {
        BufPool::new(DEFAULT_HEADROOM, imtu, max_free)
    }

    /// Fills the freelist with up to `n` freshly allocated parked
    /// buffers (never past `max_free`). Warming the pool at setup time
    /// moves the first high-water excursion's allocations out of the
    /// hot path, so steady-state traffic — including flow-scale soaks
    /// that ratchet the concurrent-aggregate peak slowly — recycles
    /// from the first packet on.
    pub fn prewarm(&mut self, n: usize) {
        let target = n.min(self.max_free);
        while self.free.len() < target {
            // Booked as an alloc plus an immediate get/put round trip so
            // `outstanding()` stays balanced.
            self.stats.allocated += 1;
            self.stats.gets += 1;
            self.stats.puts += 1;
            let buf = PacketBuf::with_capacity(self.headroom, self.capacity);
            #[cfg(debug_assertions)]
            self.parked.insert(buf.base_addr());
            self.free.push(buf);
        }
    }

    /// The headroom every handed-out buffer starts with.
    pub fn headroom(&self) -> usize {
        self.headroom
    }

    /// Buffers currently parked on the freelist.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Buffers handed out and not yet returned. Sinks that keep buffers
    /// (e.g. [`VecSink`]) legitimately hold these; after a full flush
    /// with a recycling sink this must be zero — the leak invariant the
    /// pool tests assert.
    pub fn outstanding(&self) -> u64 {
        self.stats.gets - self.stats.puts - self.stats.dropped
    }

    /// Caps the number of buffers that may be live at once (see
    /// [`BufPool::try_get`]). `None` removes the cap.
    pub fn set_live_cap(&mut self, cap: Option<u64>) {
        self.live_cap = cap;
    }

    /// The configured live-buffer cap, if any.
    pub fn live_cap(&self) -> Option<u64> {
        self.live_cap
    }

    /// Like [`BufPool::get`], but refuses to grow past the live-buffer
    /// cap: when the freelist is empty and `outstanding()` has reached
    /// `live_cap`, returns `None` and counts the exhaustion instead of
    /// allocating. With no cap set this never fails.
    ///
    /// This is the degradation trigger: engines fall back to
    /// passthrough forwarding (never drop) when it fires.
    pub fn try_get(&mut self) -> Option<PacketBuf> {
        if self.free.is_empty() {
            if let Some(cap) = self.live_cap {
                if self.outstanding() >= cap {
                    self.stats.exhausted += 1;
                    return None;
                }
            }
        }
        Some(self.get())
    }

    /// Hands out a buffer: the most recently returned one if available
    /// (LIFO — warmest first), else a fresh allocation.
    pub fn get(&mut self) -> PacketBuf {
        self.stats.gets += 1;
        match self.free.pop() {
            Some(buf) => {
                #[cfg(debug_assertions)]
                self.parked.remove(&buf.base_addr());
                buf
            }
            None => {
                self.stats.allocated += 1;
                PacketBuf::with_capacity(self.headroom, self.capacity)
            }
        }
    }

    /// Returns a buffer to the pool, resetting it to empty-with-headroom
    /// while keeping its backing allocation. Buffers beyond `max_free`
    /// are dropped (freed) rather than parked.
    ///
    /// In debug builds, returning the same buffer twice panics — the
    /// datapath equivalent of a double-free.
    pub fn put(&mut self, mut buf: PacketBuf) {
        #[cfg(debug_assertions)]
        {
            if buf.capacity() > 0 {
                assert!(
                    self.parked.insert(buf.base_addr()),
                    "BufPool: double put of buffer at {:#x}",
                    buf.base_addr()
                );
            }
        }
        if self.free.len() >= self.max_free {
            self.stats.dropped += 1;
            #[cfg(debug_assertions)]
            self.parked.remove(&buf.base_addr());
            return;
        }
        self.stats.puts += 1;
        buf.reset(self.headroom);
        self.free.push(buf);
    }
}

/// A live-view counter for scatter-gather packets sharing one backing
/// jumbo buffer.
///
/// The zero-copy split path hands out [`SgPacket`] views whose payload
/// slices borrow the jumbo being split. Rust's borrow checker already
/// guarantees no view outlives the jumbo; the counter makes the
/// lifecycle *observable*: the owner recycles the jumbo's buffer only
/// once `views()` has returned to zero, and the pool leak tests assert
/// exactly that. Single-threaded by design (a `Cell`, not an atomic) —
/// each engine splits on its own core, like the rest of the datapath.
#[derive(Debug, Default)]
pub struct SgRc(Cell<usize>);

impl SgRc {
    /// A counter with no live views.
    pub fn new() -> Self {
        SgRc(Cell::new(0))
    }

    /// Number of [`SgPacket`] views currently alive against this
    /// counter.
    pub fn views(&self) -> usize {
        self.0.get()
    }

    fn inc(&self) {
        self.0.set(self.0.get() + 1);
    }

    fn dec(&self) {
        debug_assert!(self.0.get() > 0, "SgRc underflow");
        self.0.set(self.0.get().saturating_sub(1));
    }
}

/// A scatter-gather output packet: a pooled header segment plus a
/// payload slice borrowed from the jumbo being split.
///
/// This is the zero-copy emission unit of the split engine. The header
/// segment holds the rewritten IP+TCP headers (tens of bytes, built
/// fresh per output packet); the payload is a view into the input
/// jumbo — its bytes are never copied unless a sink without a
/// [`PacketSink::push_sg`] override materialises the view. Dropping the
/// view decrements its [`SgRc`], signalling the jumbo's owner when the
/// backing buffer may be recycled.
#[derive(Debug)]
pub struct SgPacket<'a> {
    /// Rewritten headers; `None` once a sink has taken it.
    header: Option<PacketBuf>,
    payload: &'a [u8],
    rc: Option<&'a SgRc>,
}

impl<'a> SgPacket<'a> {
    /// Builds a view and registers it with `rc`.
    pub fn new(header: PacketBuf, payload: &'a [u8], rc: &'a SgRc) -> Self {
        rc.inc();
        SgPacket {
            header: Some(header),
            payload,
            rc: Some(rc),
        }
    }

    /// Builds an untracked view (tests and one-shot callers with no
    /// recycle decision to make).
    pub fn untracked(header: PacketBuf, payload: &'a [u8]) -> Self {
        SgPacket {
            header: Some(header),
            payload,
            rc: None,
        }
    }

    /// The header segment's live bytes (empty once taken, or for
    /// pass-through views that are all payload).
    pub fn header(&self) -> &[u8] {
        self.header.as_ref().map_or(&[], |h| h.as_slice())
    }

    /// The borrowed payload slice.
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Total wire length of the packet this view represents.
    pub fn total_len(&self) -> usize {
        self.header.as_ref().map_or(0, |h| h.len()) + self.payload.len()
    }

    /// Detaches the header segment so the sink can fill or recycle it.
    /// The view stays alive (and keeps its `rc` registration) until
    /// dropped.
    pub fn take_header(&mut self) -> PacketBuf {
        debug_assert!(self.header.is_some(), "SgPacket header taken twice");
        self.header
            .take()
            .unwrap_or_else(|| PacketBuf::with_headroom(0))
    }
}

impl Drop for SgPacket<'_> {
    fn drop(&mut self) {
        if let Some(rc) = self.rc {
            rc.dec();
        }
    }
}

/// Pairs a jumbo's backing buffer with its view counter: the owner-side
/// handle of the scatter-gather lifecycle. Callers split out of
/// `bytes()`, hand `rc()` to the splitter, and reclaim the buffer with
/// [`SgSource::into_buf`] once emission is done.
#[derive(Debug)]
pub struct SgSource {
    buf: PacketBuf,
    rc: SgRc,
}

impl SgSource {
    /// Wraps a filled jumbo buffer.
    pub fn new(buf: PacketBuf) -> Self {
        SgSource {
            buf,
            rc: SgRc::new(),
        }
    }

    /// The jumbo's live bytes (what gets split).
    pub fn bytes(&self) -> &[u8] {
        self.buf.as_slice()
    }

    /// The view counter to register [`SgPacket`]s against.
    pub fn rc(&self) -> &SgRc {
        &self.rc
    }

    /// Live views against this source.
    pub fn views(&self) -> usize {
        self.rc.views()
    }

    /// Reclaims the backing buffer for pool recycling. Debug-asserts
    /// that every view has been dropped — the "recycle only after the
    /// last view" invariant.
    pub fn into_buf(self) -> PacketBuf {
        debug_assert_eq!(self.rc.views(), 0, "SgSource reclaimed with live views");
        self.buf
    }
}

/// Where engines deliver output packets.
///
/// `accept` consumes one finished packet. Returning `Some(buf)` hands
/// the buffer back to the caller for recycling (the sink copied or
/// hashed what it needed); returning `None` keeps ownership (the sink
/// converted the buffer into its own representation).
pub trait PacketSink {
    /// Delivers one output packet.
    fn accept(&mut self, buf: PacketBuf) -> Option<PacketBuf>;

    /// Delivers one scatter-gather output packet.
    ///
    /// The default implementation materialises the view — appends the
    /// payload into the header segment and routes through
    /// [`PacketSink::accept`] — so every existing sink keeps working
    /// unchanged. Sinks on the hot path override this to consume the
    /// header and payload segments separately, which is what makes the
    /// split emission path copy-free end to end.
    fn push_sg(&mut self, mut pkt: SgPacket<'_>) -> Option<PacketBuf> {
        // px-analyze: allow(R3, reason = "taking the header may rebuild headroom when the view was constructed without a pool buffer; hot-path sinks never route through this default")
        let mut buf = pkt.take_header();
        // px-analyze: allow(R7, reason = "compatibility default for sinks without native SG support; every hot-path sink overrides this with a segment-aware version")
        buf.extend_from_slice(pkt.payload());
        self.accept(buf)
    }
}

/// Closures `FnMut(PacketBuf) -> Option<PacketBuf>` are sinks.
impl<F: FnMut(PacketBuf) -> Option<PacketBuf>> PacketSink for F {
    fn accept(&mut self, buf: PacketBuf) -> Option<PacketBuf> {
        self(buf)
    }
}

/// A sink that collects output packets into `Vec<Vec<u8>>` — the
/// compatibility shim behind every legacy `push(..) -> Vec<Vec<u8>>`
/// wrapper. Keeps each buffer (converted in place via
/// [`PacketBuf::into_vec`]), so wrapped calls allocate exactly like the
/// pre-sink API did.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The packets collected so far, in emission order.
    pub pkts: Vec<Vec<u8>>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Consumes the sink, returning the collected packets.
    pub fn into_pkts(self) -> Vec<Vec<u8>> {
        self.pkts
    }
}

impl PacketSink for VecSink {
    fn accept(&mut self, buf: PacketBuf) -> Option<PacketBuf> {
        self.pkts.push(buf.into_vec());
        None
    }

    /// Scatter-gather delivery with exactly one copy: header and payload
    /// segments land directly in a right-sized `Vec`, and the header
    /// buffer goes straight back to the caller for recycling. (The
    /// default would copy the payload into the header buffer *and* then
    /// convert that buffer — the double-copy this override removes.)
    fn push_sg(&mut self, mut pkt: SgPacket<'_>) -> Option<PacketBuf> {
        // px-analyze: allow(R3, reason = "taking the header may rebuild headroom for pool-less views; the shim exists to hand out Vecs, not to stay alloc-free")
        let header = pkt.take_header();
        // px-analyze: allow(R3, reason = "VecSink is the Vec-returning compatibility shim; one exactly-sized Vec per packet is its contract")
        let mut out = Vec::with_capacity(header.len() + pkt.payload().len());
        // px-analyze: allow(R7, reason = "the shim's single contracted copy: header lands in the caller-visible Vec")
        out.extend_from_slice(header.as_slice());
        // px-analyze: allow(R7, reason = "the shim's single contracted copy: payload lands in the caller-visible Vec")
        out.extend_from_slice(pkt.payload());
        self.pkts.push(out);
        Some(header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_reuses_lifo() {
        let mut pool = BufPool::new(16, 128, 8);
        let a = pool.get();
        let addr_a = a.base_addr();
        pool.put(a);
        let b = pool.get();
        assert_eq!(b.base_addr(), addr_a, "LIFO must reuse the last buffer");
        assert_eq!(pool.stats.allocated, 1);
        assert_eq!(pool.stats.gets, 2);
        pool.put(b);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn recycled_buffer_is_reset() {
        let mut pool = BufPool::new(16, 128, 8);
        let mut a = pool.get();
        a.extend_from_slice(b"stale payload");
        a.push_front(&[1, 2, 3]);
        pool.put(a);
        let b = pool.get();
        assert_eq!(b.len(), 0);
        assert_eq!(b.headroom(), 16);
    }

    #[test]
    fn freelist_capacity_bounds_parked_buffers() {
        let mut pool = BufPool::new(8, 64, 2);
        let bufs: Vec<_> = (0..4).map(|_| pool.get()).collect();
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.free_len(), 2);
        assert_eq!(pool.stats.dropped, 2);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn no_realloc_within_capacity() {
        let mut pool = BufPool::new(16, 256, 4);
        let mut b = pool.get();
        let addr = b.base_addr();
        b.extend_from_slice(&[0xAB; 256]);
        b.push_front(&[0; 16]);
        assert_eq!(b.base_addr(), addr, "append within capacity must not move");
        pool.put(b);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn parked_tracking_matches_freelist() {
        // `put` consumes the buffer, so safe callers cannot alias one
        // allocation — the debug set guards the pool's own bookkeeping:
        // every parked buffer is tracked, every handed-out one is not.
        let mut pool = BufPool::new(8, 64, 8);
        let bufs: Vec<_> = (0..3).map(|_| pool.get()).collect();
        assert_eq!(pool.parked.len(), 0);
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.parked.len(), pool.free_len());
        let _b = pool.get();
        assert_eq!(pool.parked.len(), pool.free_len());
    }

    #[test]
    fn try_get_honors_the_live_cap() {
        let mut pool = BufPool::new(8, 64, 8);
        pool.set_live_cap(Some(2));
        assert_eq!(pool.live_cap(), Some(2));
        let a = pool.try_get().expect("first under cap");
        let b = pool.try_get().expect("second under cap");
        assert!(pool.try_get().is_none(), "cap reached");
        assert!(pool.try_get().is_none());
        assert_eq!(pool.stats.exhausted, 2);
        // A return makes the freelist non-empty again: try_get recovers.
        pool.put(a);
        let c = pool.try_get().expect("recovered after put");
        pool.put(b);
        pool.put(c);
        assert_eq!(pool.outstanding(), 0);
        // Uncapped pools never report exhaustion.
        pool.set_live_cap(None);
        let bufs: Vec<_> = (0..16).map(|_| pool.try_get().unwrap()).collect();
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.stats.exhausted, 2, "unchanged");
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::new();
        let mut a = PacketBuf::with_headroom(4);
        a.extend_from_slice(b"one");
        let mut b = PacketBuf::with_headroom(4);
        b.extend_from_slice(b"two");
        assert!(sink.accept(a).is_none());
        assert!(sink.accept(b).is_none());
        assert_eq!(sink.into_pkts(), vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn sg_default_sink_materialises() {
        // A sink with no push_sg override sees one flat packet,
        // byte-identical to header || payload.
        let mut pool = BufPool::new(8, 64, 8);
        let rc = SgRc::new();
        let jumbo = [7u8; 32];
        let mut hdr = pool.get();
        hdr.extend_from_slice(b"HD");
        let mut got: Vec<Vec<u8>> = Vec::new();
        {
            let mut sink = |b: PacketBuf| {
                got.push(b.as_slice().to_vec());
                Some(b)
            };
            let view = SgPacket::new(hdr, &jumbo[4..12], &rc);
            assert_eq!(rc.views(), 1);
            assert_eq!(view.total_len(), 10);
            if let Some(b) = sink.push_sg(view) {
                pool.put(b);
            }
        }
        assert_eq!(rc.views(), 0, "view dropped inside push_sg scope");
        assert_eq!(got, vec![b"HD\x07\x07\x07\x07\x07\x07\x07\x07".to_vec()]);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn vec_sink_push_sg_single_copies_and_returns_the_header() {
        let mut pool = BufPool::new(8, 64, 8);
        let rc = SgRc::new();
        let payload = [9u8; 5];
        let mut hdr = pool.get();
        hdr.extend_from_slice(b"hdr!");
        let mut sink = VecSink::new();
        let back = sink.push_sg(SgPacket::new(hdr, &payload, &rc));
        let b = back.expect("VecSink hands the header segment back");
        pool.put(b);
        assert_eq!(rc.views(), 0);
        assert_eq!(pool.outstanding(), 0, "header recycled, nothing kept");
        assert_eq!(sink.into_pkts(), vec![b"hdr!\x09\x09\x09\x09\x09".to_vec()]);
    }

    #[test]
    fn sg_source_recycles_the_jumbo_exactly_once_after_views_drop() {
        let mut pool = BufPool::new(8, 256, 8);
        let mut jumbo = pool.get();
        jumbo.extend_from_slice(&[0x55; 200]);
        let jumbo_addr = jumbo.base_addr();
        let src = SgSource::new(jumbo);
        {
            // Three concurrent views over disjoint payload ranges.
            let views: Vec<SgPacket<'_>> = (0..3)
                .map(|i| {
                    let mut h = pool.get();
                    h.extend_from_slice(&[i as u8]);
                    SgPacket::new(h, &src.bytes()[i * 50..(i + 1) * 50], src.rc())
                })
                .collect();
            assert_eq!(src.views(), 3);
            for mut v in views {
                pool.put(v.take_header());
            }
        }
        assert_eq!(src.views(), 0, "all views dropped");
        let puts_before = pool.stats.puts;
        pool.put(src.into_buf());
        assert_eq!(pool.stats.puts, puts_before + 1, "jumbo recycled once");
        assert_eq!(pool.outstanding(), 0, "no leaks");
        // The recycled jumbo is the next buffer handed out (LIFO).
        let again = pool.get();
        assert_eq!(again.base_addr(), jumbo_addr);
        pool.put(again);
    }

    #[test]
    fn untracked_views_and_empty_headers_work() {
        let payload = b"all payload";
        let mut view = SgPacket::untracked(PacketBuf::with_headroom(0), payload);
        assert_eq!(view.header(), b"");
        assert_eq!(view.total_len(), payload.len());
        let mut sink = VecSink::new();
        let _ = sink.push_sg(SgPacket::untracked(view.take_header(), payload));
        assert_eq!(sink.into_pkts(), vec![payload.to_vec()]);
    }

    #[test]
    fn closure_is_a_sink() {
        let mut seen = 0usize;
        let mut pool = BufPool::new(8, 64, 8);
        let buf = pool.get();
        {
            let mut sink = |b: PacketBuf| {
                seen += b.len();
                Some(b)
            };
            if let Some(b) = sink.accept(buf) {
                pool.put(b);
            }
        }
        assert_eq!(seen, 0);
        assert_eq!(pool.outstanding(), 0);
    }
}
