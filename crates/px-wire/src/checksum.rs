//! Internet checksum (RFC 1071) helpers, including the incremental update
//! rule from RFC 1624 that PXGW uses when it rewrites single header fields
//! (e.g. the MSS option or an IP ID) without re-summing the whole packet.

use std::net::Ipv4Addr;

/// Computes the one's-complement sum of `data` folded to 16 bits, without
/// the final negation. Odd trailing bytes are padded with zero per RFC 1071.
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    fold(sum)
}

fn fold(mut sum: u32) -> u16 {
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Computes the Internet checksum of `data` (the negated folded sum).
pub fn checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Combines partial one's-complement sums, as if their source buffers had
/// been concatenated (both parts must be even-length, which holds for all
/// uses in this crate: headers and pseudo-headers are even).
pub fn combine(a: u16, b: u16) -> u16 {
    fold(u32::from(a) + u32::from(b))
}

/// The TCP/UDP pseudo-header sum for IPv4 (RFC 793 §3.1, RFC 768).
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u16) -> u16 {
    let s = src.octets();
    let d = dst.octets();
    let mut sum: u32 = 0;
    sum += u32::from(u16::from_be_bytes([s[0], s[1]]));
    sum += u32::from(u16::from_be_bytes([s[2], s[3]]));
    sum += u32::from(u16::from_be_bytes([d[0], d[1]]));
    sum += u32::from(u16::from_be_bytes([d[2], d[3]]));
    sum += u32::from(protocol);
    sum += u32::from(length);
    fold(sum)
}

/// Computes a transport-layer checksum over pseudo-header + segment bytes.
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let pseudo = pseudo_header_sum(src, dst, protocol, segment.len() as u16);
    !combine(pseudo, ones_complement_sum(segment))
}

/// RFC 1624 incremental checksum update: returns the new checksum after a
/// 16-bit word at some position changed from `old_word` to `new_word`.
///
/// Uses the corrected equation `HC' = ~(~HC + ~m + m')` (eqn. 3), which is
/// safe for all corner cases including results of 0xFFFF.
pub fn incremental_update(old_checksum: u16, old_word: u16, new_word: u16) -> u16 {
    let sum = u32::from(!old_checksum) + u32::from(!old_word) + u32::from(new_word);
    !fold(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: words 0x0001 0xf203 0xf4f5 0xf6f7
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(ones_complement_sum(&[0xAB]), 0xAB00);
    }

    #[test]
    fn verify_is_zero_sum() {
        // A buffer containing its own correct checksum sums to 0xFFFF.
        let mut data = vec![
            0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(ones_complement_sum(&data), 0xFFFF);
    }

    #[test]
    fn combine_matches_concatenation() {
        let a = [1u8, 2, 3, 4, 5, 6];
        let b = [7u8, 8, 9, 10];
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(
            combine(ones_complement_sum(&a), ones_complement_sum(&b)),
            ones_complement_sum(&whole)
        );
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x54, 0xbe, 0xef, 0x40, 0x00, 0x40, 0x06, 0, 0,
        ];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());

        // Change the ID word 0xbeef -> 0x1234 and update incrementally.
        let updated = incremental_update(ck, 0xbeef, 0x1234);
        data[4..6].copy_from_slice(&0x1234u16.to_be_bytes());
        data[10..12].copy_from_slice(&[0, 0]);
        assert_eq!(updated, checksum(&data));
    }

    #[test]
    fn pseudo_header_known_vector() {
        // Hand-computed: 10.0.0.1 -> 10.0.0.2, UDP(17), length 8.
        let sum = pseudo_header_sum(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            17,
            8,
        );
        // 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 0x0011 + 0x0008 = 0x141c
        assert_eq!(sum, 0x141c);
    }
}
