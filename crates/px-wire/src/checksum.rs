//! Internet checksum (RFC 1071) helpers, including the incremental update
//! rule from RFC 1624 that PXGW uses when it rewrites single header fields
//! (e.g. the MSS option or an IP ID) without re-summing the whole packet.

use std::net::Ipv4Addr;

/// Computes the one's-complement sum of `data` folded to 16 bits, without
/// the final negation. Odd trailing bytes are padded with zero per RFC 1071.
///
/// Wide fast path: accumulates eight bytes per iteration into a `u64`
/// with end-around carry, then folds 64→32→16. RFC 1071 §2(C) licenses
/// summing at any word width; [`ones_complement_sum_scalar`] is the
/// proven 16-bit-at-a-time implementation kept as the property-test
/// oracle (the two agree bit-for-bit, including the 0x0000/0xFFFF
/// representative: both return 0 only for all-zero input).
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut wide: u64 = 0;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        let (s, carry) = wide.overflowing_add(w);
        wide = s + u64::from(carry);
    }
    // Fold the 64-bit one's-complement accumulator down to 16 bits…
    let mut sum = (wide >> 32) + (wide & 0xFFFF_FFFF);
    sum = (sum >> 16) + (sum & 0xFFFF);
    let mut sum = fold(sum as u32);
    // …then absorb the ≤7 trailing bytes at 16-bit granularity. They sit
    // at an even offset (8·k), so no byte-swap correction is needed.
    let rest = chunks.remainder();
    let mut tail = rest.chunks_exact(2);
    let mut tail_sum: u32 = u32::from(sum);
    for c in &mut tail {
        tail_sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = tail.remainder() {
        tail_sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum = fold(tail_sum);
    sum
}

/// The original 16-bits-per-iteration one's-complement sum. Slower but
/// trivially auditable against RFC 1071; retained as the oracle the
/// property tests compare the wide [`ones_complement_sum`] against.
pub fn ones_complement_sum_scalar(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    fold(sum)
}

fn fold(mut sum: u32) -> u16 {
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Computes the Internet checksum of `data` (the negated folded sum).
pub fn checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Combines partial one's-complement sums, as if their source buffers had
/// been concatenated (both parts must be even-length, which holds for all
/// uses in this crate: headers and pseudo-headers are even).
pub fn combine(a: u16, b: u16) -> u16 {
    fold(u32::from(a) + u32::from(b))
}

/// Combines partial sums when the second buffer was appended at an
/// arbitrary byte offset: if `b`'s data starts at an odd offset in the
/// concatenation, its 16-bit words straddle the even word grid and its
/// standalone sum must be byte-swapped before adding (RFC 1071 §2(B),
/// "byte order independence"). With an even offset this is exactly
/// [`combine`].
pub fn combine_at_offset(a: u16, b: u16, b_starts_odd: bool) -> u16 {
    let b = if b_starts_odd { b.swap_bytes() } else { b };
    fold(u32::from(a) + u32::from(b))
}

/// The TCP/UDP pseudo-header sum for IPv4 (RFC 793 §3.1, RFC 768).
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u16) -> u16 {
    let s = src.octets();
    let d = dst.octets();
    let mut sum: u32 = 0;
    sum += u32::from(u16::from_be_bytes([s[0], s[1]]));
    sum += u32::from(u16::from_be_bytes([s[2], s[3]]));
    sum += u32::from(u16::from_be_bytes([d[0], d[1]]));
    sum += u32::from(u16::from_be_bytes([d[2], d[3]]));
    sum += u32::from(protocol);
    sum += u32::from(length);
    fold(sum)
}

/// Computes a transport-layer checksum over pseudo-header + segment bytes.
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let pseudo = pseudo_header_sum(src, dst, protocol, segment.len() as u16);
    !combine(pseudo, ones_complement_sum(segment))
}

/// RFC 1624 incremental checksum update: returns the new checksum after a
/// 16-bit word at some position changed from `old_word` to `new_word`.
///
/// Uses the corrected equation `HC' = ~(~HC + ~m + m')` (eqn. 3), which is
/// safe for all corner cases including results of 0xFFFF.
pub fn incremental_update(old_checksum: u16, old_word: u16, new_word: u16) -> u16 {
    let sum = u32::from(!old_checksum) + u32::from(!old_word) + u32::from(new_word);
    !fold(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: words 0x0001 0xf203 0xf4f5 0xf6f7
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(ones_complement_sum_scalar(&data), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn wide_matches_scalar_on_edge_lengths() {
        // Deterministic xorshift bytes at every length spanning the 8-byte
        // chunk boundary and both parities; the proptest in the workspace
        // root covers random content up to 9216 bytes.
        let mut state = 0x9E37_79B9u32;
        let mut data = Vec::new();
        for len in 0..=64 {
            data.truncate(0);
            for _ in 0..len {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                data.push(state as u8);
            }
            assert_eq!(
                ones_complement_sum(&data),
                ones_complement_sum_scalar(&data),
                "len {len}"
            );
        }
        // All-ones input exercises the end-around carry chain.
        assert_eq!(
            ones_complement_sum(&[0xFF; 40]),
            ones_complement_sum_scalar(&[0xFF; 40])
        );
    }

    #[test]
    fn combine_at_offset_matches_concatenation() {
        let a = [0x12u8, 0x34, 0x56]; // odd length: b lands on an odd offset
        let b = [0x78u8, 0x9A, 0xBC, 0xDE];
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(
            combine_at_offset(
                ones_complement_sum(&a),
                ones_complement_sum(&b),
                a.len() % 2 == 1
            ),
            ones_complement_sum(&whole)
        );
        // Even split degenerates to plain `combine`.
        let whole2: Vec<u8> = b.iter().chain(b.iter()).copied().collect();
        assert_eq!(
            combine_at_offset(ones_complement_sum(&b), ones_complement_sum(&b), false),
            ones_complement_sum(&whole2)
        );
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(ones_complement_sum(&[0xAB]), 0xAB00);
    }

    #[test]
    fn verify_is_zero_sum() {
        // A buffer containing its own correct checksum sums to 0xFFFF.
        let mut data = vec![
            0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(ones_complement_sum(&data), 0xFFFF);
    }

    #[test]
    fn combine_matches_concatenation() {
        let a = [1u8, 2, 3, 4, 5, 6];
        let b = [7u8, 8, 9, 10];
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(
            combine(ones_complement_sum(&a), ones_complement_sum(&b)),
            ones_complement_sum(&whole)
        );
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x54, 0xbe, 0xef, 0x40, 0x00, 0x40, 0x06, 0, 0,
        ];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());

        // Change the ID word 0xbeef -> 0x1234 and update incrementally.
        let updated = incremental_update(ck, 0xbeef, 0x1234);
        data[4..6].copy_from_slice(&0x1234u16.to_be_bytes());
        data[10..12].copy_from_slice(&[0, 0]);
        assert_eq!(updated, checksum(&data));
    }

    #[test]
    fn pseudo_header_known_vector() {
        // Hand-computed: 10.0.0.1 -> 10.0.0.2, UDP(17), length 8.
        let sum = pseudo_header_sum(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            17,
            8,
        );
        // 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 0x0011 + 0x0008 = 0x141c
        assert_eq!(sum, 0x141c);
    }
}
