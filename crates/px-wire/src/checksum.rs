//! Internet checksum (RFC 1071) helpers, including the incremental update
//! rule from RFC 1624 that PXGW uses when it rewrites single header fields
//! (e.g. the MSS option or an IP ID) without re-summing the whole packet.
//!
//! # Kernels
//!
//! [`ones_complement_sum`] dispatches to the fastest checksum kernel the
//! host supports, decided once per process: AVX2 → SSE2 → the portable
//! `u64` wide path. The decision is cached in an atomic; set
//! `PX_CHECKSUM_FORCE=scalar|u64|sse2|avx2` before the first checksum to
//! pin a kernel (CI runs the whole test suite under each value), or call
//! [`force_kernel`] to switch in-process (benches). Every kernel is held
//! bit-for-bit equal to [`ones_complement_sum_scalar`] — the trivially
//! auditable RFC 1071 oracle — by exhaustive property tests over every
//! length 0..=9216 and alignment offset 0..=63.
//!
//! The SIMD kernels sum 16-bit words in *little-endian* lane order and
//! byte-swap the folded result: RFC 1071 §2(B) ("byte order
//! independence") makes the two conventions equal, and native-order
//! lanes keep the vector inner loop free of shuffles.

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU8, Ordering};

/// One `ones_complement_sum` implementation. All kernels return
/// bit-identical results; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// 16 bits per iteration — the RFC 1071 oracle.
    Scalar,
    /// 8 bytes per iteration in a `u64` with end-around carry.
    U64,
    /// 16 bytes per iteration in SSE2 registers (x86_64 baseline).
    Sse2,
    /// 32 bytes per iteration in AVX2 registers.
    Avx2,
}

impl Kernel {
    /// Every kernel, for property tests and the bench matrix.
    pub const ALL: [Kernel; 4] = [Kernel::Scalar, Kernel::U64, Kernel::Sse2, Kernel::Avx2];

    /// Stable lowercase label (the `PX_CHECKSUM_FORCE` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::U64 => "u64",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
        }
    }

    /// Parses a `PX_CHECKSUM_FORCE` value (case-insensitive). Unknown
    /// values yield `None`, which the dispatcher treats as "auto".
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Kernel::Scalar),
            "u64" => Some(Kernel::U64),
            "sse2" => Some(Kernel::Sse2),
            "avx2" => Some(Kernel::Avx2),
            _ => None,
        }
    }

    /// Whether this kernel can run on the current CPU. The portable
    /// kernels always can; SSE2 is part of the x86_64 baseline; AVX2 is
    /// runtime-detected. A forced-but-unavailable kernel degrades to the
    /// best available one instead of faulting.
    pub fn available(self) -> bool {
        match self {
            Kernel::Scalar | Kernel::U64 => true,
            Kernel::Sse2 => cfg!(target_arch = "x86_64"),
            Kernel::Avx2 => avx2_detected(),
        }
    }

    fn code(self) -> u8 {
        match self {
            Kernel::Scalar => 1,
            Kernel::U64 => 2,
            Kernel::Sse2 => 3,
            Kernel::Avx2 => 4,
        }
    }

    fn from_code(code: u8) -> Option<Kernel> {
        match code {
            1 => Some(Kernel::Scalar),
            2 => Some(Kernel::U64),
            3 => Some(Kernel::Sse2),
            4 => Some(Kernel::Avx2),
            _ => None,
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_detected() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_detected() -> bool {
    false
}

/// Cached dispatch decision: 0 = undecided, else `Kernel::code`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn best_available() -> Kernel {
    if Kernel::Avx2.available() {
        Kernel::Avx2
    } else if Kernel::Sse2.available() {
        Kernel::Sse2
    } else {
        Kernel::U64
    }
}

fn resolve_kernel() -> Kernel {
    // px-analyze: allow(R8, reason = "PX_CHECKSUM_FORCE is read once and cached in the process-global ACTIVE selector; it picks among bit-identical kernels (gated by kernel-matrix CI), so replay output never varies")
    if let Ok(v) = std::env::var("PX_CHECKSUM_FORCE") {
        if let Some(k) = Kernel::parse(&v) {
            if k.available() {
                return k;
            }
        }
    }
    best_available()
}

/// The kernel [`ones_complement_sum`] will use, resolving and caching
/// the decision (env override, then feature detection) on first call.
pub fn active_kernel() -> Kernel {
    if let Some(k) = Kernel::from_code(ACTIVE.load(Ordering::Relaxed)) {
        return k;
    }
    let k = resolve_kernel();
    ACTIVE.store(k.code(), Ordering::Relaxed);
    k
}

/// Overrides the cached kernel choice for this process: `Some(k)` pins
/// `k` (degraded to the best available kernel if the CPU lacks it),
/// `None` clears the cache so the next checksum re-resolves from the
/// environment and CPU features. Benches use this to sweep the kernel
/// matrix in one process; results are identical either way, so a racing
/// checksum on another thread is never incorrect, only differently fast.
pub fn force_kernel(kernel: Option<Kernel>) {
    match kernel {
        Some(k) if k.available() => ACTIVE.store(k.code(), Ordering::Relaxed),
        Some(_) => ACTIVE.store(best_available().code(), Ordering::Relaxed),
        None => ACTIVE.store(0, Ordering::Relaxed),
    }
}

/// Computes the one's-complement sum of `data` folded to 16 bits, without
/// the final negation. Odd trailing bytes are padded with zero per RFC 1071.
///
/// Dispatches to the fastest available [`Kernel`] (see module docs);
/// [`ones_complement_sum_scalar`] is the proven 16-bit-at-a-time
/// implementation kept as the property-test oracle (all kernels agree
/// bit-for-bit, including the 0x0000/0xFFFF representative: every kernel
/// returns 0 only for all-zero input).
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    ones_complement_sum_with(active_kernel(), data)
}

/// [`ones_complement_sum`] through an explicitly chosen kernel —
/// property tests and benches address each implementation directly.
/// A kernel the CPU cannot run falls back to the best it can.
pub fn ones_complement_sum_with(kernel: Kernel, data: &[u8]) -> u16 {
    match kernel {
        Kernel::Scalar => ones_complement_sum_scalar(data),
        Kernel::U64 => ones_complement_sum_u64(data),
        Kernel::Sse2 => sum_sse2(data),
        Kernel::Avx2 => sum_avx2(data),
    }
}

/// The portable wide path: accumulates eight bytes per iteration into a
/// `u64` with end-around carry, then folds 64→32→16 (RFC 1071 §2(C)
/// licenses summing at any word width).
pub fn ones_complement_sum_u64(data: &[u8]) -> u16 {
    let mut wide: u64 = 0;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        let (s, carry) = wide.overflowing_add(w);
        wide = s + u64::from(carry);
    }
    // Fold the 64-bit one's-complement accumulator down to 16 bits…
    let mut sum = (wide >> 32) + (wide & 0xFFFF_FFFF);
    sum = (sum >> 16) + (sum & 0xFFFF);
    let mut sum = fold(sum as u32);
    // …then absorb the ≤7 trailing bytes at 16-bit granularity. They sit
    // at an even offset (8·k), so no byte-swap correction is needed.
    let rest = chunks.remainder();
    let mut tail = rest.chunks_exact(2);
    let mut tail_sum: u32 = u32::from(sum);
    for c in &mut tail {
        tail_sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = tail.remainder() {
        tail_sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum = fold(tail_sum);
    sum
}

/// Folds a little-endian-convention wide sum plus the trailing bytes
/// (`rest` starts at an even offset, so its words stay on the even word
/// grid) into the big-endian RFC 1071 result. Per §2(B), summing the
/// byte-swapped words and swapping the folded result equals the
/// byte-order-faithful sum; an odd final byte is the low half of its
/// little-endian word, so it contributes its plain value here and the
/// closing swap restores the oracle's `b << 8`.
fn finish_le(mut wide: u64, rest: &[u8]) -> u16 {
    let mut tail = rest.chunks_exact(2);
    for c in &mut tail {
        wide += u64::from(u16::from_le_bytes([c[0], c[1]]));
    }
    if let [last] = tail.remainder() {
        wide += u64::from(*last);
    }
    let mut sum = (wide >> 32) + (wide & 0xFFFF_FFFF);
    sum = (sum >> 16) + (sum & 0xFFFF);
    fold(sum as u32).swap_bytes()
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn sum_sse2(data: &[u8]) -> u16 {
    let body = data.len() & !15;
    // SAFETY: SSE2 is part of the x86_64 baseline ABI, so the
    // target-feature precondition always holds here.
    let wide = unsafe { simd::sum16_le_sse2(data) };
    finish_le(wide, bytes::range_from(data, body))
}

#[cfg(not(target_arch = "x86_64"))]
fn sum_sse2(data: &[u8]) -> u16 {
    ones_complement_sum_u64(data)
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn sum_avx2(data: &[u8]) -> u16 {
    if !avx2_detected() {
        return sum_sse2(data);
    }
    let body = data.len() & !31;
    // SAFETY: the AVX2 target-feature precondition was just checked.
    let wide = unsafe { simd::sum16_le_avx2(data) };
    finish_le(wide, bytes::range_from(data, body))
}

#[cfg(not(target_arch = "x86_64"))]
fn sum_avx2(data: &[u8]) -> u16 {
    ones_complement_sum_u64(data)
}

#[cfg(target_arch = "x86_64")]
use crate::bytes;

/// The raw vector inner loops. Lanes hold little-endian 16-bit words
/// widened to u32; [`finish_le`] converts the drained total back to the
/// RFC's byte order. The crate denies `unsafe_code` globally — this
/// module is the scoped exception, and every unsafe operation is spelled
/// out individually (`unsafe_op_in_unsafe_fn` is denied).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[deny(unsafe_op_in_unsafe_fn)]
mod simd {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_setzero_si256,
        _mm256_storeu_si256, _mm256_unpackhi_epi16, _mm256_unpacklo_epi16, _mm_add_epi32,
        _mm_loadu_si128, _mm_setzero_si128, _mm_storeu_si128, _mm_unpackhi_epi16,
        _mm_unpacklo_epi16,
    };

    /// Vector iterations per u32-lane drain. Each iteration adds one
    /// 16-bit word into every u32 lane of each accumulator, so a block
    /// grows a lane by at most 16384 · 0xFFFF < 2³⁰ — far from wrapping.
    const BLOCK_ITERS: usize = 16_384;

    /// Sums the longest 16-byte-multiple prefix of `data` as
    /// little-endian 16-bit words into a `u64`.
    ///
    /// # Safety
    /// Caller must ensure SSE2 is available (always true on x86_64).
    #[target_feature(enable = "sse2")]
    pub unsafe fn sum16_le_sse2(data: &[u8]) -> u64 {
        // Register-only intrinsics are safe inside a matching
        // #[target_feature] fn; only the pointer loads/stores stay unsafe.
        let zero = _mm_setzero_si128();
        let mut acc_lo = zero;
        let mut acc_hi = zero;
        let mut total = 0u64;
        let mut iters = 0usize;
        for c in data.chunks_exact(16) {
            // SAFETY: `c` is exactly 16 readable bytes; `loadu` carries
            // no alignment requirement.
            let v = unsafe { _mm_loadu_si128(c.as_ptr().cast()) };
            // Widen u16 lanes to u32 by interleaving with zero, then add.
            acc_lo = _mm_add_epi32(acc_lo, _mm_unpacklo_epi16(v, zero));
            acc_hi = _mm_add_epi32(acc_hi, _mm_unpackhi_epi16(v, zero));
            iters += 1;
            if iters == BLOCK_ITERS {
                // SAFETY: SSE2 precondition inherited from this fn.
                total += unsafe { drain_sse2(acc_lo) + drain_sse2(acc_hi) };
                acc_lo = zero;
                acc_hi = zero;
                iters = 0;
            }
        }
        // SAFETY: SSE2 precondition inherited from this fn.
        total + unsafe { drain_sse2(acc_lo) + drain_sse2(acc_hi) }
    }

    /// Sums a vector's four u32 lanes.
    ///
    /// # Safety
    /// Caller must ensure SSE2 is available.
    #[target_feature(enable = "sse2")]
    unsafe fn drain_sse2(v: __m128i) -> u64 {
        let mut out = [0u32; 4];
        // SAFETY: `out` is 16 writable bytes; `storeu` is unaligned-safe.
        unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), v) };
        out.iter().map(|&x| u64::from(x)).sum()
    }

    /// AVX2 variant of [`sum16_le_sse2`]: 32 bytes per iteration. The
    /// in-lane unpack order of `_mm256_unpacklo/hi_epi16` scrambles word
    /// positions across lanes, which is irrelevant — every lane is
    /// summed into one scalar total.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available (runtime-detected).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum16_le_avx2(data: &[u8]) -> u64 {
        let zero = _mm256_setzero_si256();
        let mut acc_lo = zero;
        let mut acc_hi = zero;
        let mut total = 0u64;
        let mut iters = 0usize;
        for c in data.chunks_exact(32) {
            // SAFETY: `c` is exactly 32 readable bytes; `loadu` carries
            // no alignment requirement.
            let v = unsafe { _mm256_loadu_si256(c.as_ptr().cast()) };
            acc_lo = _mm256_add_epi32(acc_lo, _mm256_unpacklo_epi16(v, zero));
            acc_hi = _mm256_add_epi32(acc_hi, _mm256_unpackhi_epi16(v, zero));
            iters += 1;
            if iters == BLOCK_ITERS {
                // SAFETY: AVX2 precondition inherited from this fn.
                total += unsafe { drain_avx2(acc_lo) + drain_avx2(acc_hi) };
                acc_lo = zero;
                acc_hi = zero;
                iters = 0;
            }
        }
        // SAFETY: AVX2 precondition inherited from this fn.
        total + unsafe { drain_avx2(acc_lo) + drain_avx2(acc_hi) }
    }

    /// Sums a vector's eight u32 lanes.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    unsafe fn drain_avx2(v: __m256i) -> u64 {
        let mut out = [0u32; 8];
        // SAFETY: `out` is 32 writable bytes; `storeu` is unaligned-safe.
        unsafe { _mm256_storeu_si256(out.as_mut_ptr().cast(), v) };
        out.iter().map(|&x| u64::from(x)).sum()
    }
}

/// The original 16-bits-per-iteration one's-complement sum. Slower but
/// trivially auditable against RFC 1071; retained as the oracle the
/// property tests compare every other kernel against.
pub fn ones_complement_sum_scalar(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    fold(sum)
}

fn fold(mut sum: u32) -> u16 {
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Computes the Internet checksum of `data` (the negated folded sum).
pub fn checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Combines partial one's-complement sums, as if their source buffers had
/// been concatenated (both parts must be even-length, which holds for all
/// uses in this crate: headers and pseudo-headers are even).
pub fn combine(a: u16, b: u16) -> u16 {
    fold(u32::from(a) + u32::from(b))
}

/// Combines partial sums when the second buffer was appended at an
/// arbitrary byte offset: if `b`'s data starts at an odd offset in the
/// concatenation, its 16-bit words straddle the even word grid and its
/// standalone sum must be byte-swapped before adding (RFC 1071 §2(B),
/// "byte order independence"). With an even offset this is exactly
/// [`combine`].
pub fn combine_at_offset(a: u16, b: u16, b_starts_odd: bool) -> u16 {
    let b = if b_starts_odd { b.swap_bytes() } else { b };
    fold(u32::from(a) + u32::from(b))
}

/// The TCP/UDP pseudo-header sum for IPv4 (RFC 793 §3.1, RFC 768).
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u16) -> u16 {
    let s = src.octets();
    let d = dst.octets();
    let mut sum: u32 = 0;
    sum += u32::from(u16::from_be_bytes([s[0], s[1]]));
    sum += u32::from(u16::from_be_bytes([s[2], s[3]]));
    sum += u32::from(u16::from_be_bytes([d[0], d[1]]));
    sum += u32::from(u16::from_be_bytes([d[2], d[3]]));
    sum += u32::from(protocol);
    sum += u32::from(length);
    fold(sum)
}

/// Computes a transport-layer checksum over pseudo-header + segment bytes.
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let pseudo = pseudo_header_sum(src, dst, protocol, segment.len() as u16);
    !combine(pseudo, ones_complement_sum(segment))
}

/// RFC 1624 incremental checksum update: returns the new checksum after a
/// 16-bit word at some position changed from `old_word` to `new_word`.
///
/// Uses the corrected equation `HC' = ~(~HC + ~m + m')` (eqn. 3), which is
/// safe for all corner cases including results of 0xFFFF.
pub fn incremental_update(old_checksum: u16, old_word: u16, new_word: u16) -> u16 {
    let sum = u32::from(!old_checksum) + u32::from(!old_word) + u32::from(new_word);
    !fold(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: words 0x0001 0xf203 0xf4f5 0xf6f7
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(ones_complement_sum_scalar(&data), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn wide_matches_scalar_on_edge_lengths() {
        // Deterministic xorshift bytes at every length spanning the 8-byte
        // chunk boundary and both parities; the proptest in the workspace
        // root covers random content up to 9216 bytes.
        let mut state = 0x9E37_79B9u32;
        let mut data = Vec::new();
        for len in 0..=64 {
            data.truncate(0);
            for _ in 0..len {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                data.push(state as u8);
            }
            assert_eq!(
                ones_complement_sum(&data),
                ones_complement_sum_scalar(&data),
                "len {len}"
            );
        }
        // All-ones input exercises the end-around carry chain.
        assert_eq!(
            ones_complement_sum(&[0xFF; 40]),
            ones_complement_sum_scalar(&[0xFF; 40])
        );
    }

    #[test]
    fn every_kernel_matches_the_scalar_oracle() {
        // Deterministic xorshift bytes; lengths crossing both vector
        // widths and the drain boundary. The workspace proptests sweep
        // every length 0..=9216 at every alignment offset 0..=63.
        let mut state = 0x1234_5678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                state as u8
            })
            .collect();
        for kernel in Kernel::ALL {
            for len in (0..=96).chain([127, 128, 129, 1460, 4095, 4096]) {
                for off in [0usize, 1, 7, 33] {
                    let slice = &data[off..off + len.min(data.len() - off)];
                    assert_eq!(
                        ones_complement_sum_with(kernel, slice),
                        ones_complement_sum_scalar(slice),
                        "kernel {} len {len} off {off}",
                        kernel.name()
                    );
                }
            }
            assert_eq!(
                ones_complement_sum_with(kernel, &[0xFF; 40]),
                ones_complement_sum_scalar(&[0xFF; 40]),
                "kernel {} all-ones carry chain",
                kernel.name()
            );
        }
    }

    #[test]
    fn forced_kernel_is_reported_and_reversible() {
        force_kernel(Some(Kernel::U64));
        assert_eq!(active_kernel(), Kernel::U64);
        assert_eq!(ones_complement_sum(&[0xAB]), 0xAB00);
        // Unavailable requests degrade instead of faulting; on x86_64
        // AVX2 may genuinely be available, so only check membership.
        force_kernel(Some(Kernel::Avx2));
        assert!(active_kernel().available());
        force_kernel(None);
        assert!(active_kernel().available());
    }

    #[test]
    fn kernel_names_round_trip_through_parse() {
        for kernel in Kernel::ALL {
            assert_eq!(Kernel::parse(kernel.name()), Some(kernel));
        }
        assert_eq!(Kernel::parse("SSE2"), Some(Kernel::Sse2));
        assert_eq!(Kernel::parse("nope"), None);
    }

    #[test]
    fn combine_at_offset_matches_concatenation() {
        let a = [0x12u8, 0x34, 0x56]; // odd length: b lands on an odd offset
        let b = [0x78u8, 0x9A, 0xBC, 0xDE];
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(
            combine_at_offset(
                ones_complement_sum(&a),
                ones_complement_sum(&b),
                a.len() % 2 == 1
            ),
            ones_complement_sum(&whole)
        );
        // Even split degenerates to plain `combine`.
        let whole2: Vec<u8> = b.iter().chain(b.iter()).copied().collect();
        assert_eq!(
            combine_at_offset(ones_complement_sum(&b), ones_complement_sum(&b), false),
            ones_complement_sum(&whole2)
        );
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(ones_complement_sum(&[0xAB]), 0xAB00);
    }

    #[test]
    fn verify_is_zero_sum() {
        // A buffer containing its own correct checksum sums to 0xFFFF.
        let mut data = vec![
            0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(ones_complement_sum(&data), 0xFFFF);
    }

    #[test]
    fn combine_matches_concatenation() {
        let a = [1u8, 2, 3, 4, 5, 6];
        let b = [7u8, 8, 9, 10];
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(
            combine(ones_complement_sum(&a), ones_complement_sum(&b)),
            ones_complement_sum(&whole)
        );
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x54, 0xbe, 0xef, 0x40, 0x00, 0x40, 0x06, 0, 0,
        ];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());

        // Change the ID word 0xbeef -> 0x1234 and update incrementally.
        let updated = incremental_update(ck, 0xbeef, 0x1234);
        data[4..6].copy_from_slice(&0x1234u16.to_be_bytes());
        data[10..12].copy_from_slice(&[0, 0]);
        assert_eq!(updated, checksum(&data));
    }

    #[test]
    fn pseudo_header_known_vector() {
        // Hand-computed: 10.0.0.1 -> 10.0.0.2, UDP(17), length 8.
        let sum = pseudo_header_sum(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            17,
            8,
        );
        // 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 0x0011 + 0x0008 = 0x141c
        assert_eq!(sum, 0x141c);
    }
}
