//! UDP datagrams (RFC 768).

use crate::bytes;
use crate::checksum;
use crate::error::{Error, Result};
use crate::flow::IpProtocol;
use std::net::Ipv4Addr;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A typed view over a UDP datagram (header + payload, no IP header).
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        UdpDatagram { buffer }
    }

    /// Wraps a buffer, validating the length field against the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let dg = UdpDatagram { buffer };
        let b = dg.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let len = dg.length();
        if len < HEADER_LEN || len > b.len() {
            return Err(Error::Malformed);
        }
        Ok(dg)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        bytes::be16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        bytes::be16(self.buffer.as_ref(), 2)
    }

    /// The length field (header + payload).
    pub fn length(&self) -> usize {
        usize::from(bytes::be16(self.buffer.as_ref(), 4))
    }

    /// The checksum field.
    pub fn checksum_field(&self) -> u16 {
        bytes::be16(self.buffer.as_ref(), 6)
    }

    /// The payload (respects the length field).
    pub fn payload(&self) -> &[u8] {
        bytes::range(self.buffer.as_ref(), HEADER_LEN, self.length())
    }

    /// Verifies the checksum (a zero field means "no checksum" and passes,
    /// per RFC 768).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let b = bytes::range_to(self.buffer.as_ref(), self.length());
        let pseudo = checksum::pseudo_header_sum(src, dst, IpProtocol::Udp.into(), b.len() as u16);
        checksum::combine(pseudo, checksum::ones_complement_sum(b)) == 0xFFFF
    }

    /// Releases the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        bytes::put_be16(self.buffer.as_mut(), 0, p);
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        bytes::put_be16(self.buffer.as_mut(), 2, p);
    }

    /// Sets the length field.
    pub fn set_length(&mut self, len: u16) {
        bytes::put_be16(self.buffer.as_mut(), 4, len);
    }

    /// Zeroes, computes, and writes the checksum (0 results are emitted as
    /// 0xFFFF per RFC 768).
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let len = self.length();
        let b = self.buffer.as_mut();
        bytes::put_be16(b, 6, 0);
        let body = bytes::range_to(b, len);
        let mut ck = checksum::transport_checksum(src, dst, IpProtocol::Udp.into(), body);
        if ck == 0 {
            ck = 0xFFFF;
        }
        bytes::put_be16(b, 6, ck);
    }
}

/// A parsed, plain-Rust UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpRepr {
    /// Parses a datagram view into a repr.
    pub fn parse<T: AsRef<[u8]>>(dg: &UdpDatagram<T>) -> Result<Self> {
        Ok(UdpRepr {
            src_port: dg.src_port(),
            dst_port: dg.dst_port(),
        })
    }

    /// Builds a complete datagram with a valid checksum.
    pub fn build_datagram(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Result<Vec<u8>> {
        let total = HEADER_LEN + payload.len();
        if total > usize::from(u16::MAX) {
            return Err(Error::FieldRange);
        }
        let mut buf = vec![0u8; total];
        bytes::put(&mut buf, HEADER_LEN, payload);
        let mut dg = UdpDatagram::new_unchecked(&mut buf[..]);
        dg.set_src_port(self.src_port);
        dg.set_dst_port(self.dst_port);
        dg.set_length(total as u16);
        dg.fill_checksum(src, dst);
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 2);

    #[test]
    fn build_parse_roundtrip() {
        let repr = UdpRepr {
            src_port: 5353,
            dst_port: 53,
        };
        let buf = repr.build_datagram(SRC, DST, b"query").unwrap();
        let dg = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(dg.verify_checksum(SRC, DST));
        assert_eq!(UdpRepr::parse(&dg).unwrap(), repr);
        assert_eq!(dg.payload(), b"query");
        assert_eq!(dg.length(), 13);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut buf = repr.build_datagram(SRC, DST, b"payload").unwrap();
        buf[10] ^= 0xFF;
        let dg = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(!dg.verify_checksum(SRC, DST));
    }

    #[test]
    fn zero_checksum_means_disabled() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut buf = repr.build_datagram(SRC, DST, b"x").unwrap();
        buf[6..8].copy_from_slice(&[0, 0]);
        let dg = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(dg.verify_checksum(SRC, DST));
    }

    #[test]
    fn length_field_validation() {
        assert_eq!(
            UdpDatagram::new_checked(&[0u8; 7][..]).unwrap_err(),
            Error::Truncated
        );
        let mut buf = [0u8; 12];
        buf[4..6].copy_from_slice(&20u16.to_be_bytes()); // longer than buffer
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // shorter than header
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn trailing_bytes_ignored_by_payload() {
        let repr = UdpRepr {
            src_port: 9,
            dst_port: 10,
        };
        let mut buf = repr.build_datagram(SRC, DST, b"ab").unwrap();
        buf.extend_from_slice(&[0xCC; 5]);
        let dg = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(dg.payload(), b"ab");
    }

    #[test]
    fn oversize_payload_rejected() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let big = vec![0u8; 65536];
        assert_eq!(
            repr.build_datagram(SRC, DST, &big).unwrap_err(),
            Error::FieldRange
        );
    }
}
