//! IPv4 fragmentation and reassembly (RFC 791 §3.2).
//!
//! This is the substrate F-PMTUD rides on: a router that must forward a
//! packet larger than the egress MTU (and DF clear) calls [`fragment`];
//! the destination host feeds fragments into a [`Reassembler`]. The
//! F-PMTUD daemon additionally inspects the *sizes* of the fragments it
//! receives — the largest fragment's total length reveals the smallest
//! MTU on the path.

use crate::bytes;
use crate::error::{Error, Result};
use crate::flow::IpProtocol;
use crate::ipv4::Ipv4Packet;
use crate::pool::{BufPool, PacketSink};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Fragments a complete IPv4 packet so every fragment's total length is
/// ≤ `mtu`. Works on already-fragmented packets too (offsets accumulate,
/// the MF bit of the final piece preserves the original's MF).
///
/// Returns [`Error::FieldRange`] if the packet has DF set and does not
/// fit (the caller — a router — should then drop it and, if it is not an
/// ICMP-suppressing hop, emit a *fragmentation needed* message).
pub fn fragment(packet: &[u8], mtu: usize) -> Result<Vec<Vec<u8>>> {
    // Right-sized one-shot buffers: max_free 0 keeps the wrapper's
    // allocation behaviour (one Vec per fragment) without growth
    // reallocations inside the fill loop.
    let mut pool = BufPool::new(0, mtu, 0);
    let mut sink = crate::VecSink::new();
    fragment_into(packet, mtu, &mut pool, &mut sink)?;
    Ok(sink.into_pkts())
}

/// [`fragment`] with pooled buffers and sink-based emission — the
/// allocation-free form the PXGW split engine drives. Returns the number
/// of fragments delivered; on error nothing is emitted.
pub fn fragment_into(
    packet: &[u8],
    mtu: usize,
    pool: &mut BufPool,
    sink: &mut impl PacketSink,
) -> Result<usize> {
    let pkt = Ipv4Packet::new_checked(packet)?;
    if pkt.total_len() <= mtu {
        let mut buf = pool.get();
        // px-analyze: allow(R7, reason = "fits-in-MTU passthrough lands the datagram in a pool buffer the sink can own; the zero-copy route for unfragmented traffic is the SG split path, not this shim")
        buf.extend_from_slice(bytes::range_to(packet, pkt.total_len()));
        if let Some(b) = sink.accept(buf) {
            pool.put(b);
        }
        return Ok(1);
    }
    if pkt.dont_frag() {
        return Err(Error::FieldRange);
    }
    let header_len = pkt.header_len();
    if mtu < header_len + 8 {
        return Err(Error::FieldRange);
    }
    // Payload bytes per fragment must be a multiple of 8 (except the last).
    let max_payload = (mtu - header_len) / 8 * 8;
    let payload = pkt.payload();
    let base_offset = pkt.frag_offset();
    let original_mf = pkt.more_frags();

    let mut emitted = 0usize;
    let mut off = 0usize;
    while off < payload.len() {
        let take = max_payload.min(payload.len() - off);
        let last = off + take == payload.len();
        let mut frag = pool.get();
        // px-analyze: allow(R7, reason = "RFC 791 fragmentation materialises a fresh header per fragment by definition; the bytes are then mutated in place (offset, MF, checksum)")
        frag.extend_from_slice(bytes::range_to(packet, header_len));
        // px-analyze: allow(R7, reason = "each fragment owns a disjoint payload slice that outlives the source datagram, so the copy is inherent to IP fragmentation, not an implementation shortcut")
        frag.extend_from_slice(bytes::range(payload, off, off + take));
        let mut fp = Ipv4Packet::new_unchecked(frag.as_mut_slice());
        fp.set_total_len((header_len + take) as u16);
        fp.set_frag_fields(false, !last || original_mf, base_offset + off);
        fp.fill_checksum();
        if let Some(b) = sink.accept(frag) {
            pool.put(b);
        }
        emitted += 1;
        off += take;
    }
    Ok(emitted)
}

/// Key identifying one datagram's fragments (RFC 791: src, dst, protocol,
/// identification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragKey {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub proto: IpProtocol,
    /// IP identification field.
    pub ident: u16,
}

#[derive(Debug)]
struct PartialDatagram {
    /// Received payload ranges: (start, bytes).
    pieces: Vec<(usize, Vec<u8>)>,
    /// Total payload length, known once the MF=0 fragment arrives.
    total_payload: Option<usize>,
    /// Copy of the first-fragment header (offset 0), used to rebuild.
    first_header: Option<Vec<u8>>,
    /// Sizes of every fragment as received (total lengths), in arrival
    /// order — what the F-PMTUD daemon reports.
    fragment_sizes: Vec<usize>,
    /// Creation timestamp in caller-defined time units.
    created_at: u64,
}

/// Outcome of feeding one fragment to the reassembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReassemblyResult {
    /// The input was not a fragment; returned unchanged.
    NotFragmented(Vec<u8>),
    /// More fragments are still outstanding.
    Incomplete,
    /// The datagram is complete: the rebuilt packet and the sizes of all
    /// of its fragments in arrival order.
    Complete {
        /// The reassembled IPv4 packet.
        packet: Vec<u8>,
        /// Total length of every fragment, in arrival order.
        fragment_sizes: Vec<usize>,
    },
}

/// An IPv4 reassembly buffer with timeout-based eviction.
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: HashMap<FragKey, PartialDatagram>,
}

/// Default reassembly timeout, in nanoseconds (15 s, the classic value).
pub const REASSEMBLY_TIMEOUT_NS: u64 = 15_000_000_000;

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of in-progress datagrams.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Feeds one IPv4 packet (fragment or not). `now` is the caller's
    /// clock in nanoseconds (used only for expiry bookkeeping).
    pub fn push(&mut self, packet: &[u8], now: u64) -> Result<ReassemblyResult> {
        let pkt = Ipv4Packet::new_checked(packet)?;
        if !pkt.is_fragment() {
            return Ok(ReassemblyResult::NotFragmented(
                bytes::range_to(packet, pkt.total_len()).to_vec(),
            ));
        }
        let key = FragKey {
            src: pkt.src(),
            dst: pkt.dst(),
            proto: pkt.protocol(),
            ident: pkt.ident(),
        };
        let offset = pkt.frag_offset();
        let payload = pkt.payload().to_vec();
        let entry = self.partial.entry(key).or_insert_with(|| PartialDatagram {
            pieces: Vec::new(),
            total_payload: None,
            first_header: None,
            fragment_sizes: Vec::new(),
            created_at: now,
        });
        entry.fragment_sizes.push(pkt.total_len());
        if !pkt.more_frags() {
            entry.total_payload = Some(offset + payload.len());
        }
        if offset == 0 {
            entry.first_header = Some(bytes::range_to(packet, pkt.header_len()).to_vec());
        }
        // Drop exact duplicates; overlapping non-identical fragments keep
        // first-arrival bytes (BSD-style "first wins" for the overlap).
        if !entry
            .pieces
            .iter()
            .any(|(o, p)| *o == offset && p.len() == payload.len())
        {
            entry.pieces.push((offset, payload));
        }

        if let Some(total) = entry.total_payload {
            if Self::is_complete(&entry.pieces, total) && entry.first_header.is_some() {
                if let Some(done) = self.partial.remove(&key) {
                    return Ok(Self::rebuild(done));
                }
            }
        }
        Ok(ReassemblyResult::Incomplete)
    }

    fn is_complete(pieces: &[(usize, Vec<u8>)], total: usize) -> bool {
        let mut covered = 0usize;
        let mut sorted: Vec<_> = pieces.iter().map(|(o, p)| (*o, p.len())).collect();
        sorted.sort_unstable();
        for (off, len) in sorted {
            if off > covered {
                return false; // hole
            }
            covered = covered.max(off + len);
        }
        covered >= total
    }

    fn rebuild(entry: PartialDatagram) -> ReassemblyResult {
        // Both fields were verified present by the caller; a logic bug
        // upstream degrades to an empty rebuild rather than a panic.
        let total = entry.total_payload.unwrap_or(0);
        let header = entry.first_header.unwrap_or_default();
        let header_len = header.len();
        let mut packet = vec![0u8; header_len + total];
        bytes::put(&mut packet, 0, &header);
        // Later writes for overlapping ranges do not matter: is_complete
        // guarantees full coverage, and first-wins only affects pathological
        // overlap which we write in arrival order (first piece last so it
        // wins).
        for (off, piece) in entry.pieces.iter().rev() {
            bytes::put(&mut packet, header_len + off, piece);
        }
        let mut pkt = Ipv4Packet::new_unchecked(&mut packet[..]);
        pkt.set_total_len((header_len + total) as u16);
        pkt.set_frag_fields(false, false, 0);
        pkt.fill_checksum();
        ReassemblyResult::Complete {
            packet,
            fragment_sizes: entry.fragment_sizes,
        }
    }

    /// Evicts partial datagrams older than `timeout_ns`, returning how
    /// many were dropped (hosts emit ICMP time-exceeded code 1 for these;
    /// our simulator just counts them).
    pub fn expire(&mut self, now: u64, timeout_ns: u64) -> usize {
        let before = self.partial.len();
        self.partial
            .retain(|_, p| now.saturating_sub(p.created_at) < timeout_ns);
        before - self.partial.len()
    }
}

/// Convenience: fragment a packet down a *path* of MTUs, as a chain of
/// routers would, returning the fragments that arrive at the destination.
///
/// Each hop fragments anything exceeding its MTU; fragments of fragments
/// compose correctly because [`fragment`] preserves offsets and MF.
pub fn fragment_along_path(packet: &[u8], path_mtus: &[usize]) -> Result<Vec<Vec<u8>>> {
    let mut in_flight = vec![packet.to_vec()];
    for &mtu in path_mtus {
        let mut next = Vec::new();
        for p in &in_flight {
            next.extend(fragment(p, mtu)?);
        }
        in_flight = next;
    }
    Ok(in_flight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Repr;

    fn build(src: u8, payload_len: usize, ident: u16, df: bool) -> Vec<u8> {
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let mut repr = Ipv4Repr::new(
            Ipv4Addr::new(10, 0, 0, src),
            Ipv4Addr::new(10, 0, 9, 9),
            IpProtocol::Udp,
            payload_len,
        );
        repr.ident = ident;
        repr.dont_frag = df;
        repr.build_packet(&payload).unwrap()
    }

    #[test]
    fn small_packet_passes_unfragmented() {
        let p = build(1, 100, 7, false);
        let frags = fragment(&p, 1500).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], p);
    }

    #[test]
    fn fragments_fit_mtu_and_reassemble() {
        let p = build(1, 4000, 42, false);
        let frags = fragment(&p, 1500).unwrap();
        assert!(frags.len() >= 3);
        for f in &frags {
            assert!(f.len() <= 1500);
            let v = Ipv4Packet::new_checked(&f[..]).unwrap();
            assert!(v.verify_checksum());
        }
        let mut r = Reassembler::new();
        let mut done = None;
        for f in &frags {
            match r.push(f, 0).unwrap() {
                ReassemblyResult::Complete {
                    packet,
                    fragment_sizes,
                } => done = Some((packet, fragment_sizes)),
                ReassemblyResult::Incomplete => {}
                ReassemblyResult::NotFragmented(_) => panic!("should be fragments"),
            }
        }
        let (packet, sizes) = done.expect("reassembly must complete");
        assert_eq!(packet, p);
        assert_eq!(sizes.len(), frags.len());
    }

    #[test]
    fn df_packet_refuses_fragmentation() {
        let p = build(1, 4000, 1, true);
        assert_eq!(fragment(&p, 1500).unwrap_err(), Error::FieldRange);
    }

    #[test]
    fn out_of_order_and_duplicate_fragments() {
        let p = build(2, 5000, 77, false);
        let mut frags = fragment(&p, 1400).unwrap();
        frags.reverse();
        let dup = frags[1].clone();
        frags.insert(2, dup);
        let mut r = Reassembler::new();
        let mut complete = 0;
        for f in &frags {
            if let ReassemblyResult::Complete { packet, .. } = r.push(f, 0).unwrap() {
                assert_eq!(packet, p);
                complete += 1;
            }
        }
        assert_eq!(complete, 1);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn refragmentation_composes() {
        // 9000 -> 3000 -> 1000, as two successive narrower hops would do.
        let p = build(3, 8800, 9, false);
        let arrived = fragment_along_path(&p, &[3000, 1000]).unwrap();
        assert!(arrived.iter().all(|f| f.len() <= 1000));
        let mut r = Reassembler::new();
        let mut result = None;
        for f in &arrived {
            if let ReassemblyResult::Complete {
                packet,
                fragment_sizes,
            } = r.push(f, 0).unwrap()
            {
                result = Some((packet, fragment_sizes));
            }
        }
        let (packet, sizes) = result.expect("must reassemble");
        assert_eq!(packet, p);
        // Largest fragment reveals the narrowest MTU (within 8-byte rounding).
        let largest = *sizes.iter().max().unwrap();
        assert!(largest <= 1000 && largest > 1000 - 8 - 20);
    }

    #[test]
    fn interleaved_datagrams_keep_separate_state() {
        let p1 = build(1, 3000, 100, false);
        let p2 = build(1, 3000, 101, false); // same flow, different ident
        let f1 = fragment(&p1, 1500).unwrap();
        let f2 = fragment(&p2, 1500).unwrap();
        let mut r = Reassembler::new();
        let mut seen = Vec::new();
        for f in f1.iter().zip(f2.iter()).flat_map(|(a, b)| [a, b]) {
            if let ReassemblyResult::Complete { packet, .. } = r.push(f, 0).unwrap() {
                seen.push(packet);
            }
        }
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&p1) && seen.contains(&p2));
    }

    #[test]
    fn expiry_drops_stale_partials() {
        let p = build(4, 3000, 5, false);
        let frags = fragment(&p, 1500).unwrap();
        let mut r = Reassembler::new();
        r.push(&frags[0], 0).unwrap();
        assert_eq!(r.pending(), 1);
        assert_eq!(
            r.expire(REASSEMBLY_TIMEOUT_NS - 1, REASSEMBLY_TIMEOUT_NS),
            0
        );
        assert_eq!(r.expire(REASSEMBLY_TIMEOUT_NS, REASSEMBLY_TIMEOUT_NS), 1);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn mtu_smaller_than_header_plus_8_rejected() {
        let p = build(1, 100, 7, false);
        assert_eq!(fragment(&p, 24).unwrap_err(), Error::FieldRange);
    }

    #[test]
    fn fragment_offsets_are_8_aligned() {
        let p = build(5, 7777, 3, false);
        for f in fragment(&p, 1500).unwrap() {
            let v = Ipv4Packet::new_checked(&f[..]).unwrap();
            assert_eq!(v.frag_offset() % 8, 0);
        }
    }
}
