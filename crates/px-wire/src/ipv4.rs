//! IPv4 headers (RFC 791), options-free.
//!
//! The DS/ToS field matters to PacketExpress: PXGW marks PX-caravan packets
//! by setting a designated ToS value (paper §4.1), so the receiving host
//! stack knows to unbundle the inner datagrams.

use crate::bytes;
use crate::checksum;
use crate::error::{Error, Result};
use crate::flow::IpProtocol;
use std::net::Ipv4Addr;

/// Length of an options-free IPv4 header.
pub const HEADER_LEN: usize = 20;

/// Maximum IPv4 total length.
pub const MAX_TOTAL_LEN: usize = 65535;

/// The ToS/DSCP value PXGW writes into PX-caravan outer headers so that
/// caravan-aware receivers recognise tunnelled UDP bundles (paper §4.1:
/// "The PXGW function designates the IP header's ToS field to indicate
/// that the packet has been tunneled"). DSCP 44 (0xB0 as a ToS byte) is
/// unused by standard per-hop behaviours.
pub const CARAVAN_TOS: u8 = 0xB0;

/// A typed view over an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Wraps a buffer, validating version, header length, and total length
    /// against the buffer size.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = Ipv4Packet { buffer };
        pkt.check()?;
        Ok(pkt)
    }

    fn check(&self) -> Result<()> {
        let b = self.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if b[0] >> 4 != 4 {
            return Err(Error::Unsupported);
        }
        let ihl = usize::from(b[0] & 0x0F) * 4;
        if ihl < HEADER_LEN || b.len() < ihl {
            return Err(Error::Malformed);
        }
        let total = usize::from(bytes::be16(b, 2));
        if total < ihl || total > b.len() {
            return Err(Error::Malformed);
        }
        Ok(())
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0x0F) * 4
    }

    /// The ToS/DSCP byte.
    pub fn tos(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> usize {
        usize::from(bytes::be16(self.buffer.as_ref(), 2))
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        bytes::be16(self.buffer.as_ref(), 4)
    }

    /// Don't Fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buffer.as_ref()[6] & 0x40 != 0
    }

    /// More Fragments flag.
    pub fn more_frags(&self) -> bool {
        self.buffer.as_ref()[6] & 0x20 != 0
    }

    /// Fragment offset in bytes (the field is in 8-byte units).
    pub fn frag_offset(&self) -> usize {
        let b = self.buffer.as_ref();
        usize::from(u16::from_be_bytes([b[6] & 0x1F, b[7]])) * 8
    }

    /// Whether this packet is a fragment (offset ≠ 0 or MF set).
    pub fn is_fragment(&self) -> bool {
        self.more_frags() || self.frag_offset() != 0
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Transport protocol.
    pub fn protocol(&self) -> IpProtocol {
        self.buffer.as_ref()[9].into()
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        bytes::be16(self.buffer.as_ref(), 10)
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// Verifies the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let b = self.buffer.as_ref();
        checksum::ones_complement_sum(bytes::range_to(b, self.header_len())) == 0xFFFF
    }

    /// The transport payload (respects total length, skips the header).
    pub fn payload(&self) -> &[u8] {
        let b = self.buffer.as_ref();
        bytes::range(b, self.header_len(), self.total_len())
    }

    /// Releases the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Sets version=4 and the header length (bytes, multiple of 4).
    pub fn set_version_and_len(&mut self, header_len: usize) {
        debug_assert!(header_len.is_multiple_of(4) && header_len >= HEADER_LEN);
        self.buffer.as_mut()[0] = 0x40 | ((header_len / 4) as u8);
    }

    /// Sets the ToS byte.
    pub fn set_tos(&mut self, tos: u8) {
        self.buffer.as_mut()[1] = tos;
    }

    /// Sets total length.
    pub fn set_total_len(&mut self, len: u16) {
        bytes::put_be16(self.buffer.as_mut(), 2, len);
    }

    /// Sets the identification field.
    pub fn set_ident(&mut self, id: u16) {
        bytes::put_be16(self.buffer.as_mut(), 4, id);
    }

    /// Sets DF/MF flags and fragment offset (in bytes; must be a multiple
    /// of 8 unless this is the final fragment).
    pub fn set_frag_fields(&mut self, dont_frag: bool, more_frags: bool, offset_bytes: usize) {
        debug_assert!(offset_bytes.is_multiple_of(8));
        let units = (offset_bytes / 8) as u16;
        debug_assert!(units <= 0x1FFF);
        let mut word = units & 0x1FFF;
        if dont_frag {
            word |= 0x4000;
        }
        if more_frags {
            word |= 0x2000;
        }
        bytes::put_be16(self.buffer.as_mut(), 6, word);
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Decrements the TTL and incrementally patches the header checksum
    /// (what a router does per hop).
    pub fn decrement_ttl(&mut self) {
        let b = self.buffer.as_mut();
        if b.len() < HEADER_LEN || b[8] == 0 {
            return; // nothing sane to do on a runt or an expired TTL
        }
        let old_word = bytes::be16(b, 8);
        b[8] -= 1;
        let new_word = bytes::be16(b, 8);
        let old_ck = bytes::be16(b, 10);
        let new_ck = checksum::incremental_update(old_ck, old_word, new_word);
        bytes::put_be16(b, 10, new_ck);
    }

    /// Sets the transport protocol.
    pub fn set_protocol(&mut self, p: IpProtocol) {
        self.buffer.as_mut()[9] = p.into();
    }

    /// Sets source address.
    pub fn set_src(&mut self, a: Ipv4Addr) {
        bytes::put(self.buffer.as_mut(), 12, &a.octets());
    }

    /// Sets destination address.
    pub fn set_dst(&mut self, a: Ipv4Addr) {
        bytes::put(self.buffer.as_mut(), 16, &a.octets());
    }

    /// Zeroes the checksum field, computes the header checksum, and writes
    /// it back.
    pub fn fill_checksum(&mut self) {
        let hlen = self.header_len();
        let b = self.buffer.as_mut();
        bytes::put_be16(b, 10, 0);
        let ck = checksum::checksum(bytes::range_to(b, hlen));
        bytes::put_be16(b, 10, ck);
    }

    /// The transport payload, mutably.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let start = self.header_len();
        let end = self.total_len();
        bytes::range_mut(self.buffer.as_mut(), start, end)
    }
}

/// A parsed, plain-Rust IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub protocol: IpProtocol,
    /// ToS/DSCP byte.
    pub tos: u8,
    /// Identification (for fragmentation).
    pub ident: u16,
    /// Don't Fragment flag.
    pub dont_frag: bool,
    /// More Fragments flag.
    pub more_frags: bool,
    /// Fragment offset in bytes.
    pub frag_offset: usize,
    /// Time to live.
    pub ttl: u8,
    /// Payload length in bytes (total length − header length).
    pub payload_len: usize,
}

impl Ipv4Repr {
    /// A sensible default header for a fresh, unfragmented packet.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload_len: usize) -> Self {
        Ipv4Repr {
            src,
            dst,
            protocol,
            tos: 0,
            ident: 0,
            dont_frag: false,
            more_frags: false,
            frag_offset: 0,
            ttl: 64,
            payload_len,
        }
    }

    /// Parses a view into a repr (header fields only).
    pub fn parse<T: AsRef<[u8]>>(pkt: &Ipv4Packet<T>) -> Result<Self> {
        if !pkt.verify_checksum() {
            return Err(Error::Checksum);
        }
        Ok(Ipv4Repr {
            src: pkt.src(),
            dst: pkt.dst(),
            protocol: pkt.protocol(),
            tos: pkt.tos(),
            ident: pkt.ident(),
            dont_frag: pkt.dont_frag(),
            more_frags: pkt.more_frags(),
            frag_offset: pkt.frag_offset(),
            ttl: pkt.ttl(),
            payload_len: pkt.total_len() - pkt.header_len(),
        })
    }

    /// Total length this header describes.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emits the header into the first 20 bytes of `pkt` and fills the
    /// checksum. The buffer must be at least `total_len()` long.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, pkt: &mut Ipv4Packet<T>) -> Result<()> {
        if self.total_len() > MAX_TOTAL_LEN {
            return Err(Error::FieldRange);
        }
        if pkt.buffer.as_ref().len() < self.total_len() {
            return Err(Error::BufferTooSmall);
        }
        pkt.set_version_and_len(HEADER_LEN);
        pkt.set_tos(self.tos);
        pkt.set_total_len(self.total_len() as u16);
        pkt.set_ident(self.ident);
        pkt.set_frag_fields(self.dont_frag, self.more_frags, self.frag_offset);
        pkt.set_ttl(self.ttl);
        pkt.set_protocol(self.protocol);
        pkt.set_src(self.src);
        pkt.set_dst(self.dst);
        pkt.fill_checksum();
        Ok(())
    }

    /// Builds a complete packet (header + payload) as a fresh byte vector.
    pub fn build_packet(&self, payload: &[u8]) -> Result<Vec<u8>> {
        debug_assert_eq!(self.payload_len, payload.len());
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        bytes::put(&mut buf, HEADER_LEN, payload);
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        self.emit(&mut pkt)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(192, 168, 1, 2),
            protocol: IpProtocol::Udp,
            tos: 0,
            ident: 0x1234,
            dont_frag: true,
            more_frags: false,
            frag_offset: 0,
            ttl: 64,
            payload_len: 11,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample_repr();
        let buf = repr.build_packet(b"hello world").unwrap();
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.verify_checksum());
        assert_eq!(Ipv4Repr::parse(&pkt).unwrap(), repr);
        assert_eq!(pkt.payload(), b"hello world");
    }

    #[test]
    fn fragment_fields_roundtrip() {
        let mut repr = sample_repr();
        repr.dont_frag = false;
        repr.more_frags = true;
        repr.frag_offset = 1480;
        let buf = repr.build_packet(&[0u8; 11]).unwrap();
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.is_fragment());
        assert!(pkt.more_frags());
        assert!(!pkt.dont_frag());
        assert_eq!(pkt.frag_offset(), 1480);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let buf = sample_repr().build_packet(&[0u8; 11]).unwrap();
        let mut bad = buf.clone();
        bad[8] ^= 0xFF; // mangle TTL
        let pkt = Ipv4Packet::new_checked(&bad[..]).unwrap();
        assert!(!pkt.verify_checksum());
        assert_eq!(Ipv4Repr::parse(&pkt).unwrap_err(), Error::Checksum);
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let buf = sample_repr().build_packet(&[0u8; 11]).unwrap();
        let mut buf = buf;
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        pkt.decrement_ttl();
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.ttl(), 63);
        assert!(pkt.verify_checksum());
    }

    #[test]
    fn rejects_wrong_version_and_short_buffers() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0u8; 10][..]).unwrap_err(),
            Error::Truncated
        );
        let mut buf = sample_repr().build_packet(&[0u8; 11]).unwrap();
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn rejects_bad_total_len() {
        let mut buf = sample_repr().build_packet(&[0u8; 11]).unwrap();
        buf[2..4].copy_from_slice(&1000u16.to_be_bytes()); // longer than buffer
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn payload_respects_total_len_with_trailing_junk() {
        let repr = sample_repr();
        let mut buf = repr.build_packet(b"hello world").unwrap();
        buf.extend_from_slice(&[0xEE; 7]); // ethernet padding etc.
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.payload(), b"hello world");
    }
}
