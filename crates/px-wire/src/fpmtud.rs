//! The F-PMTUD wire format (paper §4.2): probe and report payloads, plus
//! the protocol's well-known ports.
//!
//! This lives in `px-wire` because three independent components speak it:
//! the standalone prober/daemon nodes in `px-pmtud`, the PXGW (which must
//! recognise probes to exempt them from caravan bundling, and can itself
//! probe destinations to learn per-path split sizes), and hosts that run
//! the daemon alongside their regular stacks.

/// Well-known UDP port of the F-PMTUD daemon ("a dummy UDP packet … to
/// the destination node with a well-known port").
pub const FPMTUD_PORT: u16 = 3198;

/// UDP echo port served by daemons for DF-probe acknowledgments
/// (PLPMTUD and classic-PMTUD verification).
pub const ECHO_PORT: u16 = 3197;

/// Magic prefix of a probe payload.
pub const PROBE_MAGIC: [u8; 4] = *b"FPMP";
/// Magic prefix of a report payload.
pub const REPORT_MAGIC: [u8; 4] = *b"FPMR";
/// Magic prefix of an echo-ack payload (served on [`ECHO_PORT`]).
pub const ECHO_MAGIC: [u8; 4] = *b"FPME";

/// Builds a probe payload: magic + probe id + zero padding so the whole
/// IP packet is `probe_size` bytes (20 B IP + 8 B UDP + payload).
pub fn probe_payload(probe_id: u32, probe_size: usize) -> Vec<u8> {
    let udp_payload_len = probe_size.saturating_sub(20 + 8).max(8);
    let mut p = vec![0u8; udp_payload_len];
    p[0..4].copy_from_slice(&PROBE_MAGIC);
    p[4..8].copy_from_slice(&probe_id.to_be_bytes());
    p
}

/// Parses a probe payload, returning its id.
pub fn parse_probe(data: &[u8]) -> Option<u32> {
    if data.len() < 8 || data[0..4] != PROBE_MAGIC {
        return None;
    }
    Some(u32::from_be_bytes(data[4..8].try_into().ok()?))
}

/// Builds a nonce-tagged probe payload. The 8-byte nonce occupies probe
/// bytes 8..16, which untagged probes leave as zero padding, so daemons
/// that predate the tag parse these probes unchanged. The payload is
/// floored at 16 bytes so the nonce always fits.
pub fn probe_payload_tagged(probe_id: u32, nonce: u64, probe_size: usize) -> Vec<u8> {
    let udp_payload_len = probe_size.saturating_sub(20 + 8).max(16);
    let mut p = vec![0u8; udp_payload_len];
    p[0..4].copy_from_slice(&PROBE_MAGIC);
    p[4..8].copy_from_slice(&probe_id.to_be_bytes());
    p[8..16].copy_from_slice(&nonce.to_be_bytes());
    p
}

/// Extracts the nonce from a probe payload. Untagged (short or
/// zero-padded) probes yield nonce 0.
pub fn probe_nonce(data: &[u8]) -> u64 {
    if data.len() < 16 || data[0..4] != PROBE_MAGIC {
        return 0;
    }
    u64::from_be_bytes(data[8..16].try_into().unwrap_or([0; 8]))
}

/// Serializes a fragment-size report: magic + probe id + count + sizes.
pub fn report_payload(probe_id: u32, sizes: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + sizes.len() * 2);
    out.extend_from_slice(&REPORT_MAGIC);
    out.extend_from_slice(&probe_id.to_be_bytes());
    out.extend_from_slice(&(sizes.len() as u16).to_be_bytes());
    for &s in sizes {
        out.extend_from_slice(&(s.min(65535) as u16).to_be_bytes());
    }
    out
}

/// Parses a report payload into (probe id, fragment sizes).
pub fn parse_report(data: &[u8]) -> Option<(u32, Vec<usize>)> {
    if data.len() < 10 || data[0..4] != REPORT_MAGIC {
        return None;
    }
    let id = u32::from_be_bytes(data[4..8].try_into().ok()?);
    let n = usize::from(u16::from_be_bytes(data[8..10].try_into().ok()?));
    if data.len() < 10 + 2 * n {
        return None;
    }
    let sizes = (0..n)
        .map(|i| usize::from(crate::bytes::be16(data, 10 + 2 * i)))
        .collect();
    Some((id, sizes))
}

/// Serializes a nonce-tagged report: the untagged layout with the
/// 8-byte nonce appended after the size list. [`parse_report`] tolerates
/// trailing bytes, so untagged receivers parse tagged reports unchanged.
pub fn report_payload_tagged(probe_id: u32, nonce: u64, sizes: &[usize]) -> Vec<u8> {
    let mut out = report_payload(probe_id, sizes);
    out.extend_from_slice(&nonce.to_be_bytes());
    out
}

/// Parses a report and its nonce tag. Untagged reports (no trailing
/// nonce) yield nonce 0, which tagged receivers reject as unattested.
pub fn parse_report_tagged(data: &[u8]) -> Option<(u32, u64, Vec<usize>)> {
    let (id, sizes) = parse_report(data)?;
    let tail = 10 + 2 * sizes.len();
    let nonce = if data.len() >= tail + 8 {
        u64::from_be_bytes(data[tail..tail + 8].try_into().ok()?)
    } else {
        0
    };
    Some((id, nonce, sizes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_roundtrip_and_size() {
        let p = probe_payload(77, 1500);
        assert_eq!(p.len(), 1500 - 28);
        assert_eq!(parse_probe(&p), Some(77));
        assert_eq!(parse_probe(&p[..7]), None);
        let mut bad = p.clone();
        bad[0] = b'X';
        assert_eq!(parse_probe(&bad), None);
    }

    #[test]
    fn report_roundtrip() {
        let sizes = vec![996, 996, 532];
        let r = report_payload(9, &sizes);
        assert_eq!(parse_report(&r), Some((9, sizes)));
        assert_eq!(parse_report(&r[..9]), None);
    }

    #[test]
    fn tiny_probe_still_carries_id() {
        let p = probe_payload(1, 10); // below headers: floor at 8 bytes
        assert_eq!(p.len(), 8);
        assert_eq!(parse_probe(&p), Some(1));
    }

    #[test]
    fn tagged_probe_is_backward_compatible() {
        let p = probe_payload_tagged(42, 0xDEAD_BEEF_CAFE_F00D, 1500);
        assert_eq!(p.len(), 1500 - 28);
        assert_eq!(parse_probe(&p), Some(42));
        assert_eq!(probe_nonce(&p), 0xDEAD_BEEF_CAFE_F00D);
        // Untagged probes read back as nonce 0.
        assert_eq!(probe_nonce(&probe_payload(42, 1500)), 0);
        // Tiny tagged probes still carry the full nonce.
        let tiny = probe_payload_tagged(1, 7, 10);
        assert_eq!(tiny.len(), 16);
        assert_eq!(probe_nonce(&tiny), 7);
    }

    #[test]
    fn tagged_report_is_backward_compatible() {
        let sizes = vec![996, 532];
        let r = report_payload_tagged(9, 0x1234_5678_9ABC_DEF0, &sizes);
        // Untagged parser ignores the trailing nonce.
        assert_eq!(parse_report(&r), Some((9, sizes.clone())));
        assert_eq!(
            parse_report_tagged(&r),
            Some((9, 0x1234_5678_9ABC_DEF0, sizes.clone()))
        );
        // Untagged reports parse with nonce 0.
        let plain = report_payload(9, &sizes);
        assert_eq!(parse_report_tagged(&plain), Some((9, 0, sizes)));
    }
}
