//! The F-PMTUD wire format (paper §4.2): probe and report payloads, plus
//! the protocol's well-known ports.
//!
//! This lives in `px-wire` because three independent components speak it:
//! the standalone prober/daemon nodes in `px-pmtud`, the PXGW (which must
//! recognise probes to exempt them from caravan bundling, and can itself
//! probe destinations to learn per-path split sizes), and hosts that run
//! the daemon alongside their regular stacks.

/// Well-known UDP port of the F-PMTUD daemon ("a dummy UDP packet … to
/// the destination node with a well-known port").
pub const FPMTUD_PORT: u16 = 3198;

/// UDP echo port served by daemons for DF-probe acknowledgments
/// (PLPMTUD and classic-PMTUD verification).
pub const ECHO_PORT: u16 = 3197;

/// Magic prefix of a probe payload.
pub const PROBE_MAGIC: [u8; 4] = *b"FPMP";
/// Magic prefix of a report payload.
pub const REPORT_MAGIC: [u8; 4] = *b"FPMR";
/// Magic prefix of an echo-ack payload (served on [`ECHO_PORT`]).
pub const ECHO_MAGIC: [u8; 4] = *b"FPME";

/// Builds a probe payload: magic + probe id + zero padding so the whole
/// IP packet is `probe_size` bytes (20 B IP + 8 B UDP + payload).
pub fn probe_payload(probe_id: u32, probe_size: usize) -> Vec<u8> {
    let udp_payload_len = probe_size.saturating_sub(20 + 8).max(8);
    let mut p = vec![0u8; udp_payload_len];
    p[0..4].copy_from_slice(&PROBE_MAGIC);
    p[4..8].copy_from_slice(&probe_id.to_be_bytes());
    p
}

/// Parses a probe payload, returning its id.
pub fn parse_probe(data: &[u8]) -> Option<u32> {
    if data.len() < 8 || data[0..4] != PROBE_MAGIC {
        return None;
    }
    Some(u32::from_be_bytes(data[4..8].try_into().ok()?))
}

/// Serializes a fragment-size report: magic + probe id + count + sizes.
pub fn report_payload(probe_id: u32, sizes: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + sizes.len() * 2);
    out.extend_from_slice(&REPORT_MAGIC);
    out.extend_from_slice(&probe_id.to_be_bytes());
    out.extend_from_slice(&(sizes.len() as u16).to_be_bytes());
    for &s in sizes {
        out.extend_from_slice(&(s.min(65535) as u16).to_be_bytes());
    }
    out
}

/// Parses a report payload into (probe id, fragment sizes).
pub fn parse_report(data: &[u8]) -> Option<(u32, Vec<usize>)> {
    if data.len() < 10 || data[0..4] != REPORT_MAGIC {
        return None;
    }
    let id = u32::from_be_bytes(data[4..8].try_into().ok()?);
    let n = usize::from(u16::from_be_bytes(data[8..10].try_into().ok()?));
    if data.len() < 10 + 2 * n {
        return None;
    }
    let sizes = (0..n)
        .map(|i| usize::from(crate::bytes::be16(data, 10 + 2 * i)))
        .collect();
    Some((id, sizes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_roundtrip_and_size() {
        let p = probe_payload(77, 1500);
        assert_eq!(p.len(), 1500 - 28);
        assert_eq!(parse_probe(&p), Some(77));
        assert_eq!(parse_probe(&p[..7]), None);
        let mut bad = p.clone();
        bad[0] = b'X';
        assert_eq!(parse_probe(&bad), None);
    }

    #[test]
    fn report_roundtrip() {
        let sizes = vec![996, 996, 532];
        let r = report_payload(9, &sizes);
        assert_eq!(parse_report(&r), Some((9, sizes)));
        assert_eq!(parse_report(&r[..9]), None);
    }

    #[test]
    fn tiny_probe_still_carries_id() {
        let p = probe_payload(1, 10); // below headers: floor at 8 bytes
        assert_eq!(p.len(), 8);
        assert_eq!(parse_probe(&p), Some(1));
    }
}
