//! PX-caravan: the paper's UDP tunnelling format (Fig. 3).
//!
//! UDP datagrams cannot be merged or split transparently — applications
//! (QUIC in particular) depend on datagram boundaries. PX-caravan instead
//! *bundles* multiple UDP datagrams of one flow into a single large outer
//! UDP packet:
//!
//! ```text
//! | outer IP (ToS = CARAVAN_TOS, len = whole bundle) | outer UDP |
//! |   inner UDP hdr #1 | payload #1                              |
//! |   inner UDP hdr #2 | payload #2                              |
//! |   ...                                                        |
//! ```
//!
//! The outer headers carry the entire length; each inner UDP header
//! carries its own datagram's length, so the receiver can walk the bundle
//! and recover every original datagram intact. The outer IP header's ToS
//! field is set to [`crate::ipv4::CARAVAN_TOS`] to mark the tunnelling.
//!
//! This module implements the *format*; the gateway-side merge policy
//! (same-flow detection, delayed merging, IP-ID-based UDP_GRO
//! compatibility) lives in `px-core::caravan_gw`, and the host-side
//! unbundling in `px-tcp`'s UDP stack.

use crate::error::{Error, Result};
use crate::udp::{self, UdpDatagram};

/// Maximum number of inner datagrams one caravan may carry. Matches the
/// Linux UDP_GRO segment cap so the modified-receiver path of the paper's
/// evaluation ("interpret the PX-caravan packets ... as UDP_GRO payload")
/// stays compatible.
pub const MAX_INNER: usize = 64;

/// Accumulates UDP datagrams into a caravan bundle under a size budget.
///
/// The builder accepts complete inner datagrams (UDP header + payload,
/// exactly as they arrived in the legacy network) and emits the
/// concatenated bundle that becomes the *payload of the outer UDP*.
#[derive(Debug, Clone)]
pub struct CaravanBuilder {
    buf: Vec<u8>,
    count: usize,
    budget: usize,
}

impl CaravanBuilder {
    /// Creates a builder whose bundle (inner datagrams only, outer headers
    /// excluded) must stay within `budget` bytes.
    pub fn new(budget: usize) -> Self {
        CaravanBuilder {
            buf: Vec::with_capacity(budget),
            count: 0,
            budget,
        }
    }

    /// Whether `datagram` (a complete UDP datagram) would still fit.
    pub fn fits(&self, datagram: &[u8]) -> bool {
        self.count < MAX_INNER && self.buf.len() + datagram.len() <= self.budget
    }

    /// Appends a complete inner UDP datagram. The datagram's own length
    /// field must match its byte length (validated).
    pub fn push(&mut self, datagram: &[u8]) -> Result<()> {
        let dg = UdpDatagram::new_checked(datagram)?;
        if dg.length() != datagram.len() {
            return Err(Error::Malformed);
        }
        if !self.fits(datagram) {
            return Err(Error::BufferTooSmall);
        }
        self.buf.extend_from_slice(datagram);
        self.count += 1;
        Ok(())
    }

    /// Number of inner datagrams bundled so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Bundled bytes so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been bundled yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finishes the bundle, returning the outer-UDP payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A non-allocating walk over a caravan bundle's inner datagrams.
///
/// Yields each inner datagram as a subslice, or one `Err` (and then
/// `None`) at the first structural problem — the same validation as
/// [`split_bundle`], without materialising a `Vec`. The PXGW outbound
/// hot path validates with one pass and rebuilds with a second, touching
/// the allocator for neither.
#[derive(Debug, Clone)]
pub struct BundleIter<'a> {
    rest: &'a [u8],
    count: usize,
}

impl<'a> Iterator for BundleIter<'a> {
    type Item = Result<&'a [u8]>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        if self.rest.len() < udp::HEADER_LEN {
            self.rest = &[];
            return Some(Err(Error::Truncated));
        }
        let len = usize::from(u16::from_be_bytes([self.rest[4], self.rest[5]]));
        if len < udp::HEADER_LEN || len > self.rest.len() {
            self.rest = &[];
            return Some(Err(Error::Malformed));
        }
        if self.count == MAX_INNER {
            self.rest = &[];
            return Some(Err(Error::FieldRange));
        }
        let (dg, rest) = self.rest.split_at(len);
        self.rest = rest;
        self.count += 1;
        Some(Ok(dg))
    }
}

/// Iterates over a bundle's inner datagrams without allocating.
pub fn iter_bundle(bundle: &[u8]) -> BundleIter<'_> {
    BundleIter {
        rest: bundle,
        count: 0,
    }
}

/// Walks a caravan bundle (the payload of the outer UDP) and returns each
/// inner datagram as a subslice. Fails if the bundle does not parse into
/// an exact sequence of well-formed UDP datagrams.
pub fn split_bundle(bundle: &[u8]) -> Result<Vec<&[u8]>> {
    iter_bundle(bundle).collect()
}

/// Strict single-pass bundle validation for attacker-facing unpackers.
///
/// On top of the structural walk ([`iter_bundle`]: truncated headers,
/// length fields that over-claim into or past the next record, the
/// [`MAX_INNER`] cap), every inner datagram must pass
/// [`UdpDatagram::new_checked`] and its length field must equal its byte
/// length exactly — an inner record can neither under-claim (leaving
/// unattributed bytes the walk would misparse as a following header) nor
/// over-claim (absorbing a neighbour's bytes). Returns the inner count.
pub fn validate_bundle(bundle: &[u8]) -> Result<usize> {
    let mut n = 0;
    for r in iter_bundle(bundle) {
        let dg = r?;
        let v = UdpDatagram::new_checked(dg)?;
        if v.length() != dg.len() {
            return Err(Error::Malformed);
        }
        n += 1;
    }
    Ok(n)
}

/// Validates that every inner datagram of a bundle shares the same UDP
/// ports (caravans bundle one flow, or at least one destination — the
/// strict same-flow variant is what PXGW produces by default).
pub fn bundle_is_single_flow(bundle: &[u8]) -> Result<bool> {
    let inner = split_bundle(bundle)?;
    let mut ports = None;
    for dg in inner {
        let v = UdpDatagram::new_checked(dg)?;
        let p = (v.src_port(), v.dst_port());
        match ports {
            None => ports = Some(p),
            Some(q) if q != p => return Ok(false),
            _ => {}
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udp::UdpRepr;
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(2, 2, 2, 2);

    fn dg(sp: u16, dp: u16, payload: &[u8]) -> Vec<u8> {
        UdpRepr {
            src_port: sp,
            dst_port: dp,
        }
        .build_datagram(SRC, DST, payload)
        .unwrap()
    }

    #[test]
    fn bundle_roundtrip_preserves_boundaries() {
        let d1 = dg(5000, 443, b"quic-datagram-one");
        let d2 = dg(5000, 443, b"two");
        let d3 = dg(5000, 443, &[0u8; 1200]);
        let mut b = CaravanBuilder::new(9000);
        b.push(&d1).unwrap();
        b.push(&d2).unwrap();
        b.push(&d3).unwrap();
        assert_eq!(b.count(), 3);
        let bundle = b.finish();
        let inner = split_bundle(&bundle).unwrap();
        assert_eq!(inner, vec![&d1[..], &d2[..], &d3[..]]);
        assert!(bundle_is_single_flow(&bundle).unwrap());
    }

    #[test]
    fn budget_enforced() {
        let d = dg(1, 2, &[0u8; 1000]);
        let mut b = CaravanBuilder::new(2100);
        assert!(b.fits(&d));
        b.push(&d).unwrap();
        b.push(&d).unwrap();
        assert!(!b.fits(&d));
        assert_eq!(b.push(&d).unwrap_err(), Error::BufferTooSmall);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn max_inner_enforced() {
        let d = dg(1, 2, b"");
        let mut b = CaravanBuilder::new(1 << 20);
        for _ in 0..MAX_INNER {
            b.push(&d).unwrap();
        }
        assert_eq!(b.push(&d).unwrap_err(), Error::BufferTooSmall);
    }

    #[test]
    fn inconsistent_length_field_rejected() {
        let mut d = dg(1, 2, b"abc");
        d.extend_from_slice(&[0; 4]); // trailing junk not covered by len
        let mut b = CaravanBuilder::new(9000);
        assert_eq!(b.push(&d).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn split_rejects_truncated_tail() {
        let d = dg(1, 2, b"abcdef");
        let mut bundle = d.clone();
        bundle.extend_from_slice(&d[..5]); // half a header
        assert_eq!(split_bundle(&bundle).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn split_rejects_bad_inner_length() {
        let mut d = dg(1, 2, b"abcdef");
        d[4..6].copy_from_slice(&3u16.to_be_bytes()); // shorter than header
        assert_eq!(split_bundle(&d).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn mixed_flows_detected() {
        let d1 = dg(5000, 443, b"a");
        let d2 = dg(5001, 443, b"b");
        let mut b = CaravanBuilder::new(9000);
        b.push(&d1).unwrap();
        b.push(&d2).unwrap();
        assert!(!bundle_is_single_flow(&b.finish()).unwrap());
    }

    #[test]
    fn iter_matches_split_and_stops_after_error() {
        let good = [dg(1, 2, b"aa"), dg(1, 2, b"bbbb"), dg(3, 4, b"")].concat();
        let from_iter: Result<Vec<&[u8]>> = iter_bundle(&good).collect();
        assert_eq!(from_iter.unwrap(), split_bundle(&good).unwrap());

        let mut bad = dg(1, 2, b"abcdef");
        bad.extend_from_slice(&[0u8; 3]); // truncated second header
        let mut it = iter_bundle(&bad);
        assert!(it.next().unwrap().is_ok());
        assert_eq!(it.next().unwrap().unwrap_err(), Error::Truncated);
        assert!(it.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn empty_bundle_splits_to_nothing() {
        assert!(split_bundle(&[]).unwrap().is_empty());
        let b = CaravanBuilder::new(100);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn validate_bundle_counts_and_rejects() {
        let good = [dg(1, 2, b"aa"), dg(1, 2, b"bbbb")].concat();
        assert_eq!(validate_bundle(&good), Ok(2));
        assert_eq!(validate_bundle(&[]), Ok(0));

        // Truncated tail header.
        let mut trunc = dg(1, 2, b"abcdef");
        trunc.extend_from_slice(&[0u8; 3]);
        assert_eq!(validate_bundle(&trunc), Err(Error::Truncated));

        // Length field over-claiming into the next record: the walk
        // absorbs the neighbour's header bytes, then the leftover tail
        // misparses. Either way the bundle as a whole is rejected.
        let mut overlap = [dg(1, 2, b"abcd"), dg(1, 2, b"efgh")].concat();
        overlap[4..6].copy_from_slice(&16u16.to_be_bytes()); // 12 real + 4 stolen
        assert!(validate_bundle(&overlap).is_err());

        // Length field shorter than the UDP header.
        let mut shorty = dg(1, 2, b"abcd");
        shorty[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert_eq!(validate_bundle(&shorty), Err(Error::Malformed));
    }
}
