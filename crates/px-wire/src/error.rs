//! Error types shared by every wire-format parser in this crate.

use core::fmt;

/// Errors produced while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the fixed header of the format.
    Truncated,
    /// A length field points outside the buffer, or header length fields
    /// are inconsistent with each other.
    Malformed,
    /// A checksum did not verify.
    Checksum,
    /// A version or type field identifies a format this crate does not
    /// implement (e.g. IPv6 where IPv4 was expected).
    Unsupported,
    /// The caller-provided buffer is too small to emit into.
    BufferTooSmall,
    /// A field value is out of the representable range (e.g. a payload
    /// larger than 65535 bytes for a UDP length field).
    FieldRange,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "buffer truncated"),
            Error::Malformed => write!(f, "malformed header"),
            Error::Checksum => write!(f, "checksum mismatch"),
            Error::Unsupported => write!(f, "unsupported format"),
            Error::BufferTooSmall => write!(f, "output buffer too small"),
            Error::FieldRange => write!(f, "field value out of range"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = core::result::Result<T, Error>;
