//! Ethernet II framing.
//!
//! PacketExpress operates at the network border, so frames matter mostly as
//! the unit the NIC model DMAs; we still implement real parsing/emission so
//! the simulator carries byte-accurate frames end to end.

use crate::bytes;
use crate::error::{Error, Result};
use core::fmt;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A convenience constructor from the last octet (lab-style addressing
    /// `02:00:00:00:00:xx`, locally administered).
    pub fn from_index(idx: u8) -> Self {
        MacAddr([0x02, 0, 0, 0, 0, idx])
    }

    /// Whether the multicast (group) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// EtherType values this crate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806) — parsed but not otherwise processed.
    Arp,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(e: EtherType) -> u16 {
        match e {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

/// Length of the Ethernet II header.
pub const HEADER_LEN: usize = 14;

/// A typed view over an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        EthernetFrame { buffer }
    }

    /// Wraps a buffer, checking it is long enough to hold the header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(EthernetFrame { buffer })
    }

    /// Destination MAC.
    pub fn dst(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        let mut m = [0u8; 6];
        bytes::put(&mut m, 0, bytes::range(b, 0, 6));
        MacAddr(m)
    }

    /// Source MAC.
    pub fn src(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        let mut m = [0u8; 6];
        bytes::put(&mut m, 0, bytes::range(b, 6, 12));
        MacAddr(m)
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[12], b[13]]).into()
    }

    /// The frame payload (everything after the header).
    pub fn payload(&self) -> &[u8] {
        bytes::range_from(self.buffer.as_ref(), HEADER_LEN)
    }

    /// Releases the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Sets the destination MAC.
    pub fn set_dst(&mut self, mac: MacAddr) {
        bytes::put(self.buffer.as_mut(), 0, &mac.0);
    }

    /// Sets the source MAC.
    pub fn set_src(&mut self, mac: MacAddr) {
        bytes::put(self.buffer.as_mut(), 6, &mac.0);
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&mut self, e: EtherType) {
        bytes::put_be16(self.buffer.as_mut(), 12, u16::from(e));
    }

    /// The payload, mutably.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        bytes::range_from_mut(self.buffer.as_mut(), HEADER_LEN)
    }
}

/// A parsed, plain-Rust representation of an Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    /// Source MAC address.
    pub src: MacAddr,
    /// Destination MAC address.
    pub dst: MacAddr,
    /// EtherType of the payload.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parses the header from a frame view.
    pub fn parse<T: AsRef<[u8]>>(frame: &EthernetFrame<T>) -> Result<Self> {
        Ok(EthernetRepr {
            src: frame.src(),
            dst: frame.dst(),
            ethertype: frame.ethertype(),
        })
    }

    /// Emits this header into the front of `frame`.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut EthernetFrame<T>) {
        frame.set_src(self.src);
        frame.set_dst(self.dst);
        frame.set_ethertype(self.ethertype);
    }

    /// Serializes the header as 14 bytes.
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..6].copy_from_slice(&self.dst.0);
        out[6..12].copy_from_slice(&self.src.0);
        out[12..14].copy_from_slice(&u16::from(self.ethertype).to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_emit_roundtrip() {
        let repr = EthernetRepr {
            src: MacAddr::from_index(1),
            dst: MacAddr::from_index(2),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = [0u8; HEADER_LEN + 4];
        let mut frame = EthernetFrame::new_checked(&mut buf[..]).unwrap();
        repr.emit(&mut frame);
        frame.payload_mut().copy_from_slice(b"data");

        let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(EthernetRepr::parse(&frame).unwrap(), repr);
        assert_eq!(frame.payload(), b"data");
    }

    #[test]
    fn truncated_frame_rejected() {
        assert_eq!(
            EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn to_bytes_layout() {
        let repr = EthernetRepr {
            src: MacAddr([1, 2, 3, 4, 5, 6]),
            dst: MacAddr([7, 8, 9, 10, 11, 12]),
            ethertype: EtherType::Other(0x88B5),
        };
        let b = repr.to_bytes();
        assert_eq!(&b[0..6], &[7, 8, 9, 10, 11, 12]); // dst first on the wire
        assert_eq!(&b[6..12], &[1, 2, 3, 4, 5, 6]);
        assert_eq!(&b[12..14], &[0x88, 0xB5]);
    }

    #[test]
    fn multicast_and_display() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::from_index(3).is_multicast());
        assert_eq!(MacAddr::from_index(3).to_string(), "02:00:00:00:00:03");
    }
}
