//! MSS rewriting — PXGW's handshake intervention (paper §4.1).
//!
//! "The MSS of a TCP connection is negotiated at handshake by the
//! endpoints, so the sender can be constrained to transmit only small
//! segments even if the internal path supports a larger MTU. To address
//! this, PXGW needs to intervene during the MSS negotiation, effectively
//! advertising a larger MSS on behalf of the downstream endpoint."
//!
//! Concretely: a SYN or SYN-ACK travelling *into* the b-network carries
//! the external host's MSS (e.g. 1460). PXGW raises it to `iMTU − 40` so
//! the internal host will emit jumbo segments — which the gateway later
//! splits back down for the external leg. Packets travelling *out* of the
//! b-network keep their MSS: the external host's own 1500 B interface
//! already limits its segments, and a large advertised MSS from the
//! internal host is harmless (senders use `min(own limit, peer MSS)`).

use px_wire::checksum;
use px_wire::ipv4::Ipv4Packet;
use px_wire::tcp::TcpSegment;
use px_wire::IpProtocol;

/// The result of an MSS rewrite attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MssRewrite {
    /// The packet was a SYN with an MSS option; it was rewritten from the
    /// contained old value to the new one.
    Rewritten {
        /// Value before rewriting.
        old: u16,
        /// Value after rewriting.
        new: u16,
    },
    /// The packet was a SYN with an MSS option already at least the
    /// target; left alone (never *lower* a peer's MSS on the inbound
    /// path — it would only cost performance).
    AlreadyLarge(u16),
    /// The packet is not a SYN, or carries no MSS option; untouched.
    NotApplicable,
}

/// Rewrites the MSS option of a SYN/SYN-ACK IPv4+TCP packet *in place*,
/// raising it to `target_mss` (never lowering). Both the TCP checksum and
/// (unchanged) IP header are kept valid; the TCP checksum is patched
/// incrementally (RFC 1624), exactly as a hardware datapath would.
pub fn raise_mss(packet: &mut [u8], target_mss: u16) -> MssRewrite {
    let Ok(ip) = Ipv4Packet::new_checked(&packet[..]) else {
        return MssRewrite::NotApplicable;
    };
    if ip.protocol() != IpProtocol::Tcp || ip.is_fragment() {
        return MssRewrite::NotApplicable;
    }
    let ip_hlen = ip.header_len();
    let Ok(tcp) = TcpSegment::new_checked(ip.payload()) else {
        return MssRewrite::NotApplicable;
    };
    if !tcp.flags().syn {
        return MssRewrite::NotApplicable;
    }
    let tcp_hlen = tcp.header_len();

    // Locate the MSS option (kind 2, len 4) within the options block.
    let opt_start = ip_hlen + 20;
    let opt_end = ip_hlen + tcp_hlen;
    let mut i = opt_start;
    while i < opt_end {
        match packet[i] {
            0 => break,
            1 => {
                i += 1;
                continue;
            }
            kind => {
                if i + 1 >= opt_end {
                    break;
                }
                let len = usize::from(packet[i + 1]);
                if len < 2 || i + len > opt_end {
                    break;
                }
                if kind == 2 && len == 4 {
                    let old = u16::from_be_bytes([packet[i + 2], packet[i + 3]]);
                    if old >= target_mss {
                        return MssRewrite::AlreadyLarge(old);
                    }
                    packet[i + 2..i + 4].copy_from_slice(&target_mss.to_be_bytes());
                    patch_tcp_checksum(packet, ip_hlen, i + 2, old, target_mss);
                    return MssRewrite::Rewritten {
                        old,
                        new: target_mss,
                    };
                }
                i += len;
            }
        }
    }
    MssRewrite::NotApplicable
}

/// Incrementally patches the TCP checksum after a 16-bit word at absolute
/// byte offset `word_off` (must be even relative to the TCP header start)
/// changed from `old` to `new`.
fn patch_tcp_checksum(packet: &mut [u8], ip_hlen: usize, word_off: usize, old: u16, new: u16) {
    let ck_off = ip_hlen + 16;
    if (word_off - ip_hlen).is_multiple_of(2) {
        // Aligned 16-bit word: RFC 1624 incremental update.
        let old_ck = u16::from_be_bytes([packet[ck_off], packet[ck_off + 1]]);
        let new_ck = checksum::incremental_update(old_ck, old, new);
        packet[ck_off..ck_off + 2].copy_from_slice(&new_ck.to_be_bytes());
    } else {
        // Odd alignment (NOP-shifted option): recompute from scratch.
        let ip = Ipv4Packet::new_unchecked(&packet[..]);
        let (src, dst) = (ip.src(), ip.dst());
        let seg_start = ip_hlen;
        let seg_end = ip.total_len();
        let mut tcp = TcpSegment::new_unchecked(&mut packet[seg_start..seg_end]);
        tcp.fill_checksum(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_wire::ipv4::Ipv4Repr;
    use px_wire::tcp::{SeqNum, TcpFlags, TcpOption, TcpRepr};
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 5);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 7);

    fn syn_packet(mss: Option<u16>, syn: bool) -> Vec<u8> {
        let mut options = vec![TcpOption::SackPermitted, TcpOption::WindowScale(7)];
        if let Some(m) = mss {
            options.insert(0, TcpOption::Mss(m));
        }
        let repr = TcpRepr {
            src_port: 443,
            dst_port: 55000,
            seq: SeqNum(0xAABBCCDD),
            ack: SeqNum(17),
            flags: if syn {
                TcpFlags::SYN_ACK
            } else {
                TcpFlags::ACK
            },
            window: 64000,
            options,
        };
        let seg = repr.build_segment(SRC, DST, b"");
        Ipv4Repr::new(SRC, DST, px_wire::IpProtocol::Tcp, seg.len())
            .build_packet(&seg)
            .unwrap()
    }

    fn checksums_ok(pkt: &[u8]) -> bool {
        let ip = Ipv4Packet::new_checked(pkt).unwrap();
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        ip.verify_checksum() && tcp.verify_checksum(ip.src(), ip.dst())
    }

    #[test]
    fn rewrites_and_keeps_checksums_valid() {
        let mut pkt = syn_packet(Some(1460), true);
        assert!(checksums_ok(&pkt));
        let r = raise_mss(&mut pkt, 8960);
        assert_eq!(
            r,
            MssRewrite::Rewritten {
                old: 1460,
                new: 8960
            }
        );
        assert!(checksums_ok(&pkt), "incremental checksum patch must hold");
        // The peer now sees the jumbo MSS.
        let ip = Ipv4Packet::new_checked(&pkt[..]).unwrap();
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        let parsed = px_wire::tcp::TcpRepr::parse(&tcp).unwrap();
        assert_eq!(parsed.mss(), Some(8960));
    }

    #[test]
    fn never_lowers() {
        let mut pkt = syn_packet(Some(9216), true);
        let r = raise_mss(&mut pkt, 8960);
        assert_eq!(r, MssRewrite::AlreadyLarge(9216));
        assert!(checksums_ok(&pkt));
    }

    #[test]
    fn ignores_non_syn_and_missing_option() {
        let mut pkt = syn_packet(Some(1460), false);
        assert_eq!(raise_mss(&mut pkt, 8960), MssRewrite::NotApplicable);
        let mut pkt = syn_packet(None, true);
        assert_eq!(raise_mss(&mut pkt, 8960), MssRewrite::NotApplicable);
        assert!(checksums_ok(&pkt));
    }

    #[test]
    fn ignores_udp_and_garbage() {
        let dg = px_wire::UdpRepr {
            src_port: 1,
            dst_port: 2,
        }
        .build_datagram(SRC, DST, b"x")
        .unwrap();
        let mut pkt = Ipv4Repr::new(SRC, DST, px_wire::IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap();
        assert_eq!(raise_mss(&mut pkt, 8960), MssRewrite::NotApplicable);
        let mut junk = vec![0u8; 10];
        assert_eq!(raise_mss(&mut junk, 8960), MssRewrite::NotApplicable);
    }

    /// Exhaustive-ish: rewriting must match a full checksum recomputation
    /// for many MSS values.
    #[test]
    fn incremental_patch_matches_recompute() {
        for old in [536u16, 1200, 1460, 4000, 8000] {
            for new in [1460u16, 8960, 9000, 65535] {
                if new <= old {
                    continue;
                }
                let mut pkt = syn_packet(Some(old), true);
                raise_mss(&mut pkt, new);
                assert!(checksums_ok(&pkt), "old={old} new={new}");
            }
        }
    }
}
