//! The PXGW flow table: bounded, LRU-evicting, per-flow state storage.
//!
//! §3 of the paper: "packet merging requires identifying flows and
//! determining whether incoming packets are contiguous and mergeable,
//! which inevitably introduces per-flow state … it is essential … to
//! adopt data structures that support fast lookup of adjacent packets
//! under a large number of flows."
//!
//! This table is a hash map with an intrusive LRU list over its entries.
//! Capacity is fixed at construction; inserting into a full table evicts
//! the least-recently-used flow (its state is returned to the caller so
//! pending merges can be flushed rather than dropped). Lookups are
//! counted so the cycle model can price them.

use px_wire::FlowKey;
use std::collections::HashMap;

/// A bounded per-flow state table with LRU eviction.
#[derive(Debug)]
pub struct FlowTable<V> {
    map: HashMap<FlowKey, Entry<V>>,
    /// Monotone use-counter implementing LRU ordering.
    clock: u64,
    capacity: usize,
    /// Total lookups performed (for cost accounting).
    pub lookups: u64,
    /// Evictions performed.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<V> FlowTable<V> {
    /// Creates a table holding at most `capacity` flows.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        FlowTable {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            clock: 0,
            capacity,
            lookups: 0,
            evictions: 0,
        }
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a flow, refreshing its LRU position.
    pub fn get_mut(&mut self, key: &FlowKey) -> Option<&mut V> {
        self.lookups += 1;
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|e| {
            e.last_used = clock;
            &mut e.value
        })
    }

    /// Looks up without refreshing (diagnostics).
    pub fn peek(&self, key: &FlowKey) -> Option<&V> {
        self.map.get(key).map(|e| &e.value)
    }

    /// Inserts (or replaces) a flow's state. If the table is full, the
    /// least-recently-used entry is evicted and returned as
    /// `(key, state)` so the caller can flush it.
    pub fn insert(&mut self, key: FlowKey, value: V) -> Option<(FlowKey, V)> {
        self.lookups += 1;
        self.clock += 1;
        let mut evicted = None;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            // Evict the LRU entry.
            if let Some((&victim, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) {
                let entry = self.map.remove(&victim).expect("victim exists");
                self.evictions += 1;
                evicted = Some((victim, entry.value));
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.clock,
            },
        );
        evicted
    }

    /// Removes a flow, returning its state.
    pub fn remove(&mut self, key: &FlowKey) -> Option<V> {
        self.map.remove(key).map(|e| e.value)
    }

    /// Iterates over `(key, &mut state)` pairs (e.g. to flush deadlines).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&FlowKey, &mut V)> {
        self.map.iter_mut().map(|(k, e)| (k, &mut e.value))
    }

    /// Drains the whole table (shutdown flush).
    pub fn drain(&mut self) -> Vec<(FlowKey, V)> {
        self.map.drain().map(|(k, e)| (k, e.value)).collect()
    }

    /// Removes every entry for which `pred` returns true, returning them.
    pub fn take_matching(
        &mut self,
        mut pred: impl FnMut(&FlowKey, &V) -> bool,
    ) -> Vec<(FlowKey, V)> {
        let keys: Vec<FlowKey> = self
            .map
            .iter()
            .filter(|(k, e)| pred(k, &e.value))
            .map(|(k, _)| *k)
            .collect();
        keys.into_iter()
            .map(|k| {
                let e = self.map.remove(&k).expect("key just seen");
                (k, e.value)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(i: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            1000 + i,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut t: FlowTable<u32> = FlowTable::new(4);
        assert!(t.insert(key(1), 11).is_none());
        assert_eq!(t.get_mut(&key(1)), Some(&mut 11));
        *t.get_mut(&key(1)).unwrap() = 12;
        assert_eq!(t.remove(&key(1)), Some(12));
        assert!(t.is_empty());
    }

    #[test]
    fn lru_eviction_returns_victim() {
        let mut t: FlowTable<u32> = FlowTable::new(3);
        t.insert(key(1), 1);
        t.insert(key(2), 2);
        t.insert(key(3), 3);
        // Touch 1 so 2 becomes LRU.
        t.get_mut(&key(1));
        let evicted = t.insert(key(4), 4).expect("table full");
        assert_eq!(evicted, (key(2), 2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.evictions, 1);
        assert!(t.peek(&key(2)).is_none());
        assert!(t.peek(&key(1)).is_some());
    }

    #[test]
    fn reinsert_existing_does_not_evict() {
        let mut t: FlowTable<u32> = FlowTable::new(2);
        t.insert(key(1), 1);
        t.insert(key(2), 2);
        assert!(t.insert(key(1), 10).is_none(), "replacement, not growth");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_counting() {
        let mut t: FlowTable<u32> = FlowTable::new(2);
        t.insert(key(1), 1);
        t.get_mut(&key(1));
        t.get_mut(&key(9)); // miss also counts
        assert_eq!(t.lookups, 3);
    }

    #[test]
    fn take_matching_and_drain() {
        let mut t: FlowTable<u32> = FlowTable::new(10);
        for i in 0..6 {
            t.insert(key(i), u32::from(i));
        }
        let evens = t.take_matching(|_, v| v % 2 == 0);
        assert_eq!(evens.len(), 3);
        assert_eq!(t.len(), 3);
        let rest = t.drain();
        assert_eq!(rest.len(), 3);
        assert!(t.is_empty());
    }

    /// Model-based test: the table behaves like a plain HashMap as long
    /// as capacity is never exceeded.
    #[test]
    fn model_equivalence_under_capacity() {
        use std::collections::HashMap;
        let mut t: FlowTable<u64> = FlowTable::new(1000);
        let mut model: HashMap<FlowKey, u64> = HashMap::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for step in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = key((x % 500) as u16);
            match x % 3 {
                0 => {
                    t.insert(k, step);
                    model.insert(k, step);
                }
                1 => {
                    assert_eq!(t.get_mut(&k).copied(), model.get(&k).copied());
                }
                _ => {
                    assert_eq!(t.remove(&k), model.remove(&k));
                }
            }
        }
        assert_eq!(t.len(), model.len());
    }
}
