//! The PXGW flow table: bounded, LRU-evicting, per-flow state storage.
//!
//! §3 of the paper: "packet merging requires identifying flows and
//! determining whether incoming packets are contiguous and mergeable,
//! which inevitably introduces per-flow state … it is essential … to
//! adopt data structures that support fast lookup of adjacent packets
//! under a large number of flows."
//!
//! Layout: entries live in a slab (`Vec<Slot>` plus a free list) and an
//! *intrusive doubly-linked LRU list* threads through them by slot
//! index, so a lookup refresh and an eviction are both O(1) pointer
//! splices — the previous implementation rescanned the whole map
//! (`iter().min_by_key`) to find the LRU victim on every full insert.
//! A `HashMap<FlowKey, slot>` keyed by a fast deterministic FxHash-style
//! hasher (the flow tuple is already uniformly mixed by Toeplitz RSS
//! upstream; SipHash's DoS hardening buys nothing here and costs ~3× per
//! lookup) provides the index. An optional per-entry deadline feeds a
//! binary heap so hold-timer expiry (`pop_expired`) is O(log n) pops of
//! actually-expired entries instead of an allocating full-table
//! `take_matching` scan per poll tick.
//!
//! Capacity is fixed at construction; inserting into a full table evicts
//! the least-recently-used flow (its state is returned to the caller so
//! pending merges can be flushed rather than dropped). Lookups are
//! counted so the cycle model can price them.
//!
//! LRU semantics are identical to the old clock-counter version —
//! `get_mut` and `insert` each count one lookup and refresh recency
//! (misses included in the count), eviction picks the least recently
//! touched entry — a property the model-equivalence test pins.

use px_wire::FlowKey;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Sentinel slot index terminating the LRU list.
const NIL: u32 = u32::MAX;

/// Deadline value meaning "never expires": such entries skip the heap.
pub const NO_DEADLINE: u64 = u64::MAX;

/// An FxHash-style deterministic hasher for flow keys.
///
/// The 5-tuple reaching this table was already spread across cores by
/// the Toeplitz RSS hash, so keys arriving at one table are naturally
/// diverse; a multiply-rotate mix is ample and, unlike the default
/// `RandomState`, is reproducible across runs — which the engine's
/// Deterministic mode requires of everything on the datapath.
#[derive(Default)]
pub struct FlowHasher(u64);

/// 2^64 / φ, the usual Fibonacci-hashing multiplier (same as rustc's
/// FxHash).
const FX_K: u64 = 0x517c_c1b7_2722_0a95;

impl FlowHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_K);
    }
}

impl Hasher for FlowHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(px_wire::bytes::le64(bytes, 0));
            bytes = px_wire::bytes::range_from(bytes, 8);
        }
        if !bytes.is_empty() {
            let mut w = [0u8; 8];
            px_wire::bytes::put(&mut w, 0, bytes);
            self.add(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// The hasher state every map in this module uses.
pub type FlowBuildHasher = BuildHasherDefault<FlowHasher>;

#[derive(Debug)]
struct Slot<V> {
    key: FlowKey,
    /// `None` while the slot is on the free list.
    value: Option<V>,
    deadline: u64,
    /// Bumped on every vacate/replace, so parked heap entries for a
    /// previous occupant of this slot are recognisably stale.
    gen: u32,
    lru_prev: u32,
    lru_next: u32,
    /// Which LRU segment the slot lives on: `false` = probation (idle /
    /// unclassified flows, evicted first), `true` = protected (flows the
    /// caller marked hot via [`FlowTable::protect`]).
    protected: bool,
}

/// Sizing policy for a [`FlowTable`]: an entry-count ceiling plus an
/// optional hard byte budget for the table's arenas (slab + index +
/// expiry heap). When both are given, the *effective* capacity is the
/// smaller of the entry ceiling and however many entries fit in the
/// budget — so a table configured for a million flows on a 64 MiB
/// budget silently clamps rather than overcommitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTableConfig {
    /// Maximum tracked flows (entry-count ceiling).
    pub capacity: usize,
    /// Hard byte budget for the table's preallocated arenas, or `None`
    /// for "entry count only". [`FlowTable::arena_bytes`] never exceeds
    /// a configured budget.
    pub memory_budget: Option<usize>,
}

impl FlowTableConfig {
    /// Entry-count-only sizing (the historical `FlowTable::new`).
    pub fn with_capacity(capacity: usize) -> Self {
        FlowTableConfig {
            capacity,
            memory_budget: None,
        }
    }
}

/// A bounded per-flow state table with O(1) LRU eviction and O(log n)
/// deadline expiry.
#[derive(Debug)]
pub struct FlowTable<V> {
    map: HashMap<FlowKey, u32, FlowBuildHasher>,
    slots: Vec<Slot<V>>,
    free_slots: Vec<u32>,
    /// Per-segment least-recently-used entries, indexed by
    /// `protected as usize`: `[0]` is the probation list (evicted
    /// first), `[1]` the protected list (evicted only under pressure).
    lru_head: [u32; 2],
    /// Per-segment most-recently-used entries, same indexing.
    lru_tail: [u32; 2],
    /// Min-heap of (deadline, slot, gen); stale entries are skipped
    /// lazily on pop.
    expiry: BinaryHeap<Reverse<(u64, u32, u32)>>,
    capacity: usize,
    /// Hash-index bytes, captured at build: the bucket array is sized
    /// once for the preallocated capacity and rehashes in place
    /// thereafter (the table never holds more than `capacity` entries),
    /// but the map's live `capacity()` accounting fluctuates with
    /// tombstones, so it is not a stable byte measure.
    map_bytes: usize,
    /// Total lookups performed (for cost accounting).
    pub lookups: u64,
    /// Evictions performed (`evicted_idle + evicted_pressure`).
    pub evictions: u64,
    /// Capacity evictions that found a probation (idle / unprotected)
    /// victim — the cheap case.
    pub evicted_idle: u64,
    /// Capacity evictions forced onto the protected segment because the
    /// probation list was empty — active flows lost to arrival pressure.
    pub evicted_pressure: u64,
}

impl<V> FlowTable<V> {
    /// Creates a table holding at most `capacity` flows.
    pub fn new(capacity: usize) -> Self {
        Self::with_config(FlowTableConfig::with_capacity(capacity))
    }

    /// Creates a table from a [`FlowTableConfig`], clamping the entry
    /// capacity to the byte budget when one is set. The arenas are
    /// preallocated to the effective capacity, so steady-state inserts
    /// never touch the allocator and [`arena_bytes`](Self::arena_bytes)
    /// is fixed at construction.
    pub fn with_config(cfg: FlowTableConfig) -> Self {
        assert!(cfg.capacity > 0);
        let mut capacity = match cfg.memory_budget {
            Some(budget) => cfg.capacity.min(budget / Self::entry_bytes()).max(1),
            None => cfg.capacity,
        };
        if let Some(budget) = cfg.memory_budget {
            // The hash index rounds its bucket array up to a power of
            // two, so the per-entry estimate can land over budget; back
            // off until the *realised* arenas fit. Construction-time
            // only — the hot path never resizes.
            loop {
                let t = Self::build(capacity);
                if t.arena_bytes() <= budget || capacity == 1 {
                    return t;
                }
                capacity = (capacity * 7 / 8).min(capacity - 1).max(1);
            }
        }
        Self::build(capacity)
    }

    /// Allocates the arenas for an already-clamped capacity.
    fn build(capacity: usize) -> Self {
        let prealloc = capacity.min(1 << 20);
        let map: HashMap<FlowKey, u32, FlowBuildHasher> =
            HashMap::with_capacity_and_hasher(prealloc, FlowBuildHasher::default());
        let map_bytes =
            map.capacity() * (std::mem::size_of::<FlowKey>() + std::mem::size_of::<u32>() + 1);
        FlowTable {
            map,
            slots: Vec::with_capacity(prealloc),
            free_slots: Vec::with_capacity(prealloc),
            lru_head: [NIL; 2],
            lru_tail: [NIL; 2],
            expiry: BinaryHeap::with_capacity(prealloc),
            capacity,
            map_bytes,
            lookups: 0,
            evictions: 0,
            evicted_idle: 0,
            evicted_pressure: 0,
        }
    }

    /// Worst-case resident bytes one entry costs across the three
    /// arenas: its slab slot, its hash-index entry (key, slot index, and
    /// one control byte), its free-list cell, and one expiry-heap node.
    pub fn entry_bytes() -> usize {
        std::mem::size_of::<Slot<V>>()
            + std::mem::size_of::<FlowKey>()
            + std::mem::size_of::<u32>()
            + 1
            + std::mem::size_of::<u32>()
            + std::mem::size_of::<Reverse<(u64, u32, u32)>>()
    }

    /// The effective entry capacity (after any budget clamp).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently reserved by the table's arenas (slab, hash
    /// index, free list, expiry heap), computed from live capacities.
    /// Under a `memory_budget` this never exceeds the budget: every
    /// arena is preallocated to the clamped capacity and reused.
    pub fn arena_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<V>>()
            + self.map_bytes
            + self.free_slots.capacity() * std::mem::size_of::<u32>()
            + self.expiry.capacity() * std::mem::size_of::<Reverse<(u64, u32, u32)>>()
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free_slots.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unlinks `idx` from its LRU segment.
    fn lru_unlink(&mut self, idx: u32) {
        let (prev, next, seg) = {
            let s = &self.slots[idx as usize];
            (s.lru_prev, s.lru_next, usize::from(s.protected))
        };
        match prev {
            NIL => self.lru_head[seg] = next,
            p => self.slots[p as usize].lru_next = next,
        }
        match next {
            NIL => self.lru_tail[seg] = prev,
            n => self.slots[n as usize].lru_prev = prev,
        }
    }

    /// Appends `idx` at the MRU end of its segment.
    fn lru_push_back(&mut self, idx: u32) {
        let seg = usize::from(self.slots[idx as usize].protected);
        let tail = self.lru_tail[seg];
        {
            let s = &mut self.slots[idx as usize];
            s.lru_prev = tail;
            s.lru_next = NIL;
        }
        match tail {
            NIL => self.lru_head[seg] = idx,
            t => self.slots[t as usize].lru_next = idx,
        }
        self.lru_tail[seg] = idx;
    }

    /// Moves `idx` to the MRU end of its segment (a "touch").
    fn lru_touch(&mut self, idx: u32) {
        let seg = usize::from(self.slots[idx as usize].protected);
        if self.lru_tail[seg] != idx {
            self.lru_unlink(idx);
            self.lru_push_back(idx);
        }
    }

    /// Moves a flow onto the protected LRU segment, shielding it from
    /// eviction while any probation (idle) entry remains. Returns
    /// whether the key was present. Idempotent; O(1). Intended for
    /// flows a classifier has promoted to elephant status, so arrival
    /// churn evicts idle mice first and conversion yield survives.
    pub fn protect(&mut self, key: &FlowKey) -> bool {
        let Some(&idx) = self.map.get(key) else {
            return false;
        };
        if !self.slots[idx as usize].protected {
            self.lru_unlink(idx);
            self.slots[idx as usize].protected = true;
            self.lru_push_back(idx);
        }
        true
    }

    /// Looks up a flow, refreshing its LRU position.
    pub fn get_mut(&mut self, key: &FlowKey) -> Option<&mut V> {
        self.lookups += 1;
        let idx = *self.map.get(key)?;
        self.lru_touch(idx);
        self.slots[idx as usize].value.as_mut()
    }

    /// Looks up without refreshing (diagnostics).
    pub fn peek(&self, key: &FlowKey) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.slots[idx as usize].value.as_ref()
    }

    /// Inserts (or replaces) a flow's state. If the table is full, the
    /// least-recently-used entry is evicted and returned as
    /// `(key, state)` so the caller can flush it.
    pub fn insert(&mut self, key: FlowKey, value: V) -> Option<(FlowKey, V)> {
        self.insert_with_deadline(key, value, NO_DEADLINE)
    }

    /// Like [`insert`](Self::insert), additionally arming `deadline` so
    /// the entry surfaces from [`pop_expired`](Self::pop_expired) once
    /// `now >= deadline`. Pass [`NO_DEADLINE`] for no expiry.
    pub fn insert_with_deadline(
        &mut self,
        key: FlowKey,
        value: V,
        deadline: u64,
    ) -> Option<(FlowKey, V)> {
        self.lookups += 1;
        // Fast path: the key is present — replace in place, one hash
        // probe total (the entry API; the old code probed twice via
        // contains_key + insert).
        if let std::collections::hash_map::Entry::Occupied(e) = self.map.entry(key) {
            let idx = *e.get();
            let slot = &mut self.slots[idx as usize];
            slot.value = Some(value);
            slot.deadline = deadline;
            slot.gen = slot.gen.wrapping_add(1);
            let gen = slot.gen;
            self.lru_touch(idx);
            if deadline != NO_DEADLINE {
                self.expiry.push(Reverse((deadline, idx, gen)));
            }
            return None;
        }
        // New key: evict first if at capacity — the probation (idle)
        // head when one exists, the protected head only under pressure.
        let evicted = if self.len() >= self.capacity {
            let victim = if self.lru_head[0] != NIL {
                self.evicted_idle += 1;
                self.lru_head[0]
            } else {
                self.evicted_pressure += 1;
                self.lru_head[1]
            };
            debug_assert_ne!(victim, NIL);
            self.evictions += 1;
            self.detach(victim)
        } else {
            None
        };
        let idx = match self.free_slots.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                slot.key = key;
                slot.value = Some(value);
                slot.deadline = deadline;
                slot.protected = false;
                idx
            }
            None => {
                // The slot count is bounded by the table capacity, far
                // below u32::MAX, so the narrowing cast cannot truncate.
                debug_assert!(self.slots.len() < u32::MAX as usize);
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    key,
                    value: Some(value),
                    deadline,
                    gen: 0,
                    lru_prev: NIL,
                    lru_next: NIL,
                    protected: false,
                });
                idx
            }
        };
        self.lru_push_back(idx);
        self.map.insert(key, idx);
        if deadline != NO_DEADLINE {
            let gen = self.slots[idx as usize].gen;
            self.expiry.push(Reverse((deadline, idx, gen)));
        }
        evicted
    }

    /// Vacates `idx`: unlinks it, frees the slot, removes the map entry,
    /// and returns the key and value. `None` if the slot was not
    /// occupied (a caller bug — every call site passes a live index, and
    /// the vacant case degrades to a no-op rather than a panic).
    fn detach(&mut self, idx: u32) -> Option<(FlowKey, V)> {
        self.lru_unlink(idx);
        let slot = self.slots.get_mut(idx as usize)?;
        let key = slot.key;
        let value = slot.value.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        slot.protected = false;
        self.free_slots.push(idx);
        self.map.remove(&key);
        Some((key, value))
    }

    /// Removes a flow, returning its state.
    pub fn remove(&mut self, key: &FlowKey) -> Option<V> {
        let idx = *self.map.get(key)?;
        self.detach(idx).map(|(_, v)| v)
    }

    /// Removes and returns the entry with the earliest armed deadline
    /// `<= now`, or `None` when nothing has expired. Amortised O(log n):
    /// stale heap entries (for since-removed or replaced occupants) are
    /// discarded as they surface.
    pub fn pop_expired(&mut self, now: u64) -> Option<(FlowKey, V)> {
        while let Some(&Reverse((deadline, idx, gen))) = self.expiry.peek() {
            if self.slots[idx as usize].gen != gen {
                self.expiry.pop();
                continue;
            }
            if deadline > now {
                return None;
            }
            self.expiry.pop();
            return self.detach(idx);
        }
        None
    }

    /// The earliest armed deadline among live entries, discarding stale
    /// heap entries along the way.
    pub fn next_deadline(&mut self) -> Option<u64> {
        while let Some(&Reverse((deadline, idx, gen))) = self.expiry.peek() {
            if self.slots[idx as usize].gen != gen {
                self.expiry.pop();
                continue;
            }
            return Some(deadline);
        }
        None
    }

    /// Iterates over `(key, &mut state)` pairs (e.g. to flush deadlines).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&FlowKey, &mut V)> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.value.as_mut().map(|v| (&s.key, v)))
    }

    /// Drains the whole table (shutdown flush), in slot (≈ insertion)
    /// order.
    pub fn drain(&mut self) -> Vec<(FlowKey, V)> {
        let out: Vec<(FlowKey, V)> = self
            .slots
            .iter_mut()
            .filter_map(|s| {
                s.value.take().map(|v| {
                    s.gen = s.gen.wrapping_add(1);
                    (s.key, v)
                })
            })
            .collect();
        self.map.clear();
        self.slots.clear();
        self.free_slots.clear();
        self.expiry.clear();
        self.lru_head = [NIL; 2];
        self.lru_tail = [NIL; 2];
        out
    }

    /// Removes every entry for which `pred` returns true, returning them.
    pub fn take_matching(
        &mut self,
        mut pred: impl FnMut(&FlowKey, &V) -> bool,
    ) -> Vec<(FlowKey, V)> {
        let matching: Vec<u32> = (0..self.slots.len() as u32)
            .filter(|&i| {
                let s = &self.slots[i as usize];
                s.value.as_ref().is_some_and(|v| pred(&s.key, v))
            })
            .collect();
        matching
            .into_iter()
            .filter_map(|i| self.detach(i))
            .collect()
    }

    /// The tracked keys in eviction order — the probation segment from
    /// least to most recently used, then the protected segment likewise.
    /// A test and diagnostics accessor (allocates; not for the hot
    /// path). With no [`protect`](Self::protect) calls this is exactly
    /// the historical global LRU order.
    pub fn lru_order(&self) -> Vec<FlowKey> {
        let mut out = Vec::with_capacity(self.len());
        for seg in 0..2 {
            let mut idx = self.lru_head[seg];
            while idx != NIL {
                let s = &self.slots[idx as usize];
                out.push(s.key);
                idx = s.lru_next;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(i: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            1000 + i,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut t: FlowTable<u32> = FlowTable::new(4);
        assert!(t.insert(key(1), 11).is_none());
        assert_eq!(t.get_mut(&key(1)), Some(&mut 11));
        *t.get_mut(&key(1)).unwrap() = 12;
        assert_eq!(t.remove(&key(1)), Some(12));
        assert!(t.is_empty());
    }

    #[test]
    fn lru_eviction_returns_victim() {
        let mut t: FlowTable<u32> = FlowTable::new(3);
        t.insert(key(1), 1);
        t.insert(key(2), 2);
        t.insert(key(3), 3);
        // Touch 1 so 2 becomes LRU.
        t.get_mut(&key(1));
        let evicted = t.insert(key(4), 4).expect("table full");
        assert_eq!(evicted, (key(2), 2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.evictions, 1);
        assert!(t.peek(&key(2)).is_none());
        assert!(t.peek(&key(1)).is_some());
    }

    #[test]
    fn reinsert_existing_does_not_evict() {
        let mut t: FlowTable<u32> = FlowTable::new(2);
        t.insert(key(1), 1);
        t.insert(key(2), 2);
        assert!(t.insert(key(1), 10).is_none(), "replacement, not growth");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_counting() {
        let mut t: FlowTable<u32> = FlowTable::new(2);
        t.insert(key(1), 1);
        t.get_mut(&key(1));
        t.get_mut(&key(9)); // miss also counts
        assert_eq!(t.lookups, 3);
    }

    #[test]
    fn take_matching_and_drain() {
        let mut t: FlowTable<u32> = FlowTable::new(10);
        for i in 0..6 {
            t.insert(key(i), u32::from(i));
        }
        let evens = t.take_matching(|_, v| v % 2 == 0);
        assert_eq!(evens.len(), 3);
        assert_eq!(t.len(), 3);
        let rest = t.drain();
        assert_eq!(rest.len(), 3);
        assert!(t.is_empty());
    }

    #[test]
    fn lru_order_tracks_touches() {
        let mut t: FlowTable<u32> = FlowTable::new(4);
        t.insert(key(1), 1);
        t.insert(key(2), 2);
        t.insert(key(3), 3);
        assert_eq!(t.lru_order(), vec![key(1), key(2), key(3)]);
        t.get_mut(&key(1));
        assert_eq!(t.lru_order(), vec![key(2), key(3), key(1)]);
        t.insert(key(2), 20); // replacement also refreshes
        assert_eq!(t.lru_order(), vec![key(3), key(1), key(2)]);
        t.remove(&key(1));
        assert_eq!(t.lru_order(), vec![key(3), key(2)]);
    }

    #[test]
    fn protected_entries_evict_only_under_pressure() {
        let mut t: FlowTable<u32> = FlowTable::new(3);
        t.insert(key(1), 1);
        t.insert(key(2), 2);
        t.insert(key(3), 3);
        assert!(t.protect(&key(1)), "present keys protect");
        assert!(!t.protect(&key(9)), "absent keys do not");
        // key(1) is older than 2 and 3 but protected: the probation
        // head (2) is the victim.
        let evicted = t.insert(key(4), 4).expect("full");
        assert_eq!(evicted.0, key(2));
        assert_eq!((t.evicted_idle, t.evicted_pressure), (1, 0));
        // Protect everything: the next eviction is forced onto the
        // protected segment, in its own LRU order.
        t.protect(&key(3));
        t.protect(&key(4));
        let evicted = t.insert(key(5), 5).expect("full");
        assert_eq!(evicted.0, key(1), "protected LRU head under pressure");
        assert_eq!((t.evicted_idle, t.evicted_pressure), (1, 1));
        assert_eq!(t.evictions, 2);
        // A reused slot must come back unprotected.
        let evicted = t.insert(key(6), 6).expect("full");
        assert_eq!(evicted.0, key(5), "new entries land on probation");
        assert_eq!((t.evicted_idle, t.evicted_pressure), (2, 1));
    }

    #[test]
    fn protect_is_idempotent_and_keeps_lru_order_sane() {
        let mut t: FlowTable<u32> = FlowTable::new(4);
        t.insert(key(1), 1);
        t.insert(key(2), 2);
        t.insert(key(3), 3);
        t.protect(&key(2));
        t.protect(&key(2));
        // Probation order first, then protected order.
        assert_eq!(t.lru_order(), vec![key(1), key(3), key(2)]);
        t.get_mut(&key(1));
        assert_eq!(t.lru_order(), vec![key(3), key(1), key(2)]);
        t.remove(&key(2));
        assert_eq!(t.lru_order(), vec![key(3), key(1)]);
    }

    #[test]
    fn memory_budget_clamps_capacity_and_bounds_arena() {
        let budget = 64 * 1024;
        let t: FlowTable<u64> = FlowTable::with_config(FlowTableConfig {
            capacity: 1 << 20,
            memory_budget: Some(budget),
        });
        assert!(t.capacity() < 1 << 20, "budget must clamp");
        assert!(t.capacity() >= 1, "never zero");
        assert!(
            t.arena_bytes() <= budget,
            "arena {} exceeds budget {budget}",
            t.arena_bytes()
        );
        // Fill past capacity: arena must not grow.
        let mut t = t;
        let before = t.arena_bytes();
        for i in 0..2 * t.capacity() {
            t.insert(key((i % 4096) as u16), i as u64);
        }
        assert!(t.len() <= t.capacity());
        assert_eq!(t.arena_bytes(), before, "arenas are fixed at build");
    }

    #[test]
    fn deadlines_pop_in_order_and_survive_removal() {
        let mut t: FlowTable<u32> = FlowTable::new(8);
        t.insert_with_deadline(key(1), 1, 300);
        t.insert_with_deadline(key(2), 2, 100);
        t.insert_with_deadline(key(3), 3, 200);
        t.insert(key(4), 4); // never expires
        assert_eq!(t.next_deadline(), Some(100));
        assert_eq!(t.pop_expired(99), None);
        assert_eq!(t.pop_expired(100), Some((key(2), 2)));
        // Removing an armed entry leaves only a stale heap node behind.
        assert_eq!(t.remove(&key(3)), Some(3));
        assert_eq!(t.next_deadline(), Some(300));
        assert_eq!(t.pop_expired(1000), Some((key(1), 1)));
        assert_eq!(t.pop_expired(u64::MAX - 1), None, "NO_DEADLINE never pops");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replacing_reargs_the_deadline() {
        let mut t: FlowTable<u32> = FlowTable::new(8);
        t.insert_with_deadline(key(1), 1, 100);
        t.insert_with_deadline(key(1), 2, 500); // re-arm later
        assert_eq!(t.pop_expired(100), None, "old deadline is stale");
        assert_eq!(t.pop_expired(500), Some((key(1), 2)));
    }

    /// Model-based test: the table behaves like a plain HashMap as long
    /// as capacity is never exceeded.
    #[test]
    fn model_equivalence_under_capacity() {
        use std::collections::HashMap;
        let mut t: FlowTable<u64> = FlowTable::new(1000);
        let mut model: HashMap<FlowKey, u64> = HashMap::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for step in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = key((x % 500) as u16);
            match x % 3 {
                0 => {
                    t.insert(k, step);
                    model.insert(k, step);
                }
                1 => {
                    assert_eq!(t.get_mut(&k).copied(), model.get(&k).copied());
                }
                _ => {
                    assert_eq!(t.remove(&k), model.remove(&k));
                }
            }
        }
        assert_eq!(t.len(), model.len());
    }

    /// A faithful reimplementation of the previous clock-counter table
    /// (`HashMap` + `iter().min_by_key(last_used)` eviction), used as
    /// the reference model below.
    struct ClockModel {
        map: std::collections::HashMap<FlowKey, (u64, u64)>, // value, last_used
        clock: u64,
        capacity: usize,
        lookups: u64,
        evictions: u64,
    }

    impl ClockModel {
        fn new(capacity: usize) -> Self {
            ClockModel {
                map: std::collections::HashMap::new(),
                clock: 0,
                capacity,
                lookups: 0,
                evictions: 0,
            }
        }

        fn get_mut(&mut self, key: &FlowKey) -> Option<u64> {
            self.lookups += 1;
            self.clock += 1;
            let clock = self.clock;
            self.map.get_mut(key).map(|e| {
                e.1 = clock;
                e.0
            })
        }

        fn insert(&mut self, key: FlowKey, value: u64) -> Option<(FlowKey, u64)> {
            self.lookups += 1;
            self.clock += 1;
            let mut evicted = None;
            if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
                let (&victim, _) = self.map.iter().min_by_key(|(_, e)| e.1).unwrap();
                let entry = self.map.remove(&victim).unwrap();
                self.evictions += 1;
                evicted = Some((victim, entry.0));
            }
            self.map.insert(key, (value, self.clock));
            evicted
        }

        fn remove(&mut self, key: &FlowKey) -> Option<u64> {
            self.map.remove(key).map(|e| e.0)
        }
    }

    /// Randomized equivalence against the old implementation under
    /// eviction pressure: same get results, same eviction victims, same
    /// lookup/eviction counters, at every step.
    #[test]
    fn lru_matches_clock_model_under_eviction() {
        const CAPACITY: usize = 16;
        const KEYSPACE: u64 = 48; // 3× capacity: constant eviction churn
        let mut t: FlowTable<u64> = FlowTable::new(CAPACITY);
        let mut model = ClockModel::new(CAPACITY);
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = key((x % KEYSPACE) as u16);
            match (x >> 32) % 5 {
                // Inserts dominate so the table stays at capacity.
                0..=2 => {
                    assert_eq!(
                        t.insert(k, step),
                        model.insert(k, step),
                        "eviction victim diverged at step {step}"
                    );
                }
                3 => {
                    assert_eq!(t.get_mut(&k).copied(), model.get_mut(&k), "step {step}");
                }
                _ => {
                    assert_eq!(t.remove(&k), model.remove(&k), "step {step}");
                }
            }
            assert_eq!(t.lookups, model.lookups);
            assert_eq!(t.evictions, model.evictions);
            assert_eq!(t.len(), model.map.len());
        }
        assert!(model.evictions > 1000, "the run must actually evict");
        // Final content identical too.
        let mut keys = t.lru_order();
        keys.sort();
        let mut model_keys: Vec<FlowKey> = model.map.keys().copied().collect();
        model_keys.sort();
        assert_eq!(keys, model_keys);
    }
}
