//! The PXGW-resident F-PMTUD client (§4.2's second mechanism).
//!
//! "Another approach is to find the path MTU directly over an end-to-end
//! path" — here the *gateway* is the prober: for each external
//! destination it forwards traffic to, it sends one iMTU-sized, DF-clear
//! probe. If the destination (or its gateway/host stack) runs the F-PMTUD
//! daemon, the report reveals the real path MTU:
//!
//! * **smaller than the configured eMTU** (a tunnel or legacy hop on the
//!   path): the split engine cuts to the discovered size, avoiding
//!   downstream fragmentation entirely;
//! * **larger than the eMTU** (the path is jumbo-capable end to end, e.g.
//!   an un-advertised b-network): jumbo segments leave *untranslated up
//!   to the discovered PMTU*, extending the large-MTU path segment with
//!   no explicit peering configuration.
//!
//! Destinations that never answer keep the static eMTU — the safe
//! default.

use px_wire::fpmtud::{parse_report, probe_payload, FPMTUD_PORT};
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr};
use px_wire::udp::UdpDatagram;
use px_wire::{IpProtocol, UdpRepr};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Floor for discovered PMTUs (RFC 791 minimum reassembly size region —
/// anything below this is treated as a bogus report).
pub const MIN_PLAUSIBLE_PMTU: usize = 576;

/// The gateway's per-destination PMTU learner.
#[derive(Debug)]
pub struct PmtudClient {
    /// The gateway's own address (probe source; reports come back here).
    pub addr: Ipv4Addr,
    /// Probe size — the iMTU, so jumbo-capable paths can be discovered.
    pub probe_size: usize,
    cache: HashMap<Ipv4Addr, usize>,
    pending: HashMap<u32, Ipv4Addr>,
    probed: HashMap<Ipv4Addr, ()>,
    next_id: u32,
    ident: u16,
    /// Probes emitted.
    pub probes_sent: u64,
    /// Reports consumed.
    pub reports_received: u64,
}

impl PmtudClient {
    /// Creates a client probing with `probe_size`-byte probes from `addr`.
    pub fn new(addr: Ipv4Addr, probe_size: usize) -> Self {
        PmtudClient {
            addr,
            probe_size,
            cache: HashMap::new(),
            pending: HashMap::new(),
            probed: HashMap::new(),
            next_id: 1,
            ident: 0x9d00,
            probes_sent: 0,
            reports_received: 0,
        }
    }

    /// The discovered PMTU towards `dst`, if known.
    pub fn pmtu_for(&self, dst: Ipv4Addr) -> Option<usize> {
        self.cache.get(&dst).copied()
    }

    /// Returns a probe packet for `dst` if it has not been probed yet.
    pub fn maybe_probe(&mut self, dst: Ipv4Addr) -> Option<Vec<u8>> {
        if self.probed.contains_key(&dst) {
            return None;
        }
        self.probed.insert(dst, ());
        let id = self.next_id;
        self.next_id += 1;
        let payload = probe_payload(id, self.probe_size);
        let dg = UdpRepr {
            src_port: FPMTUD_PORT,
            dst_port: FPMTUD_PORT,
        }
        .build_datagram(self.addr, dst, &payload)
        .ok()?;
        let mut ip = Ipv4Repr::new(self.addr, dst, IpProtocol::Udp, dg.len());
        ip.dont_frag = false;
        ip.ident = self.ident;
        self.ident = self.ident.wrapping_add(1);
        let pkt = ip.build_packet(&dg).ok()?;
        self.pending.insert(id, dst);
        self.probes_sent += 1;
        Some(pkt)
    }

    /// Consumes an inbound packet if it is a report addressed to us;
    /// returns whether it was consumed.
    pub fn try_ingest(&mut self, pkt: &[u8]) -> bool {
        let Ok(ip) = Ipv4Packet::new_checked(pkt) else {
            return false;
        };
        if ip.dst() != self.addr || ip.protocol() != IpProtocol::Udp {
            return false;
        }
        let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
            return false;
        };
        if udp.dst_port() != FPMTUD_PORT {
            return false;
        }
        let Some((id, sizes)) = parse_report(udp.payload()) else {
            return false;
        };
        let Some(dst) = self.pending.remove(&id) else {
            return true; // a report, but stale/unknown — still consume it
        };
        if let Some(&pmtu) = sizes.iter().max() {
            if pmtu >= MIN_PLAUSIBLE_PMTU {
                self.cache.insert(dst, pmtu);
                self.reports_received += 1;
            }
        }
        true
    }

    /// Number of destinations with a discovered PMTU.
    pub fn known(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_wire::fpmtud::report_payload;

    const GW: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 5);

    fn report_pkt(from: Ipv4Addr, to: Ipv4Addr, id: u32, sizes: &[usize]) -> Vec<u8> {
        let dg = UdpRepr {
            src_port: FPMTUD_PORT,
            dst_port: FPMTUD_PORT,
        }
        .build_datagram(from, to, &report_payload(id, sizes))
        .unwrap();
        Ipv4Repr::new(from, to, IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap()
    }

    #[test]
    fn probe_once_then_learn_from_report() {
        let mut c = PmtudClient::new(GW, 9000);
        let probe = c.maybe_probe(DST).expect("first sight probes");
        assert_eq!(probe.len(), 9000);
        assert!(c.maybe_probe(DST).is_none(), "probe once per destination");
        assert_eq!(c.pmtu_for(DST), None);
        // The daemon saw three fragments, largest 1400.
        let report = report_pkt(DST, GW, 1, &[1400, 1400, 720]);
        assert!(c.try_ingest(&report));
        assert_eq!(c.pmtu_for(DST), Some(1400));
        assert_eq!(c.known(), 1);
    }

    #[test]
    fn jumbo_path_discovered() {
        let mut c = PmtudClient::new(GW, 9000);
        c.maybe_probe(DST);
        let report = report_pkt(DST, GW, 1, &[9000]);
        c.try_ingest(&report);
        assert_eq!(c.pmtu_for(DST), Some(9000), "jumbo-capable path learned");
    }

    #[test]
    fn bogus_and_foreign_reports_handled() {
        let mut c = PmtudClient::new(GW, 9000);
        c.maybe_probe(DST);
        // Implausibly small sizes are ignored (attack/bug resilience).
        let tiny = report_pkt(DST, GW, 1, &[64]);
        assert!(c.try_ingest(&tiny));
        assert_eq!(c.pmtu_for(DST), None);
        // Unknown probe id: consumed but not cached.
        c.maybe_probe(Ipv4Addr::new(9, 9, 9, 9));
        let stale = report_pkt(DST, GW, 999, &[1500]);
        assert!(c.try_ingest(&stale));
        // Not addressed to us: not consumed.
        let other = report_pkt(DST, Ipv4Addr::new(1, 2, 3, 4), 2, &[1500]);
        assert!(!c.try_ingest(&other));
        // Ordinary traffic: not consumed.
        let dg = UdpRepr {
            src_port: 1,
            dst_port: 80,
        }
        .build_datagram(DST, GW, b"hello")
        .unwrap();
        let plain = Ipv4Repr::new(DST, GW, IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap();
        assert!(!c.try_ingest(&plain));
    }
}
