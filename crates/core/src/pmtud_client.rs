//! The PXGW-resident F-PMTUD client (§4.2's second mechanism).
//!
//! "Another approach is to find the path MTU directly over an end-to-end
//! path" — here the *gateway* is the prober: for each external
//! destination it forwards traffic to, it sends one iMTU-sized, DF-clear
//! probe. If the destination (or its gateway/host stack) runs the F-PMTUD
//! daemon, the report reveals the real path MTU:
//!
//! * **smaller than the configured eMTU** (a tunnel or legacy hop on the
//!   path): the split engine cuts to the discovered size, avoiding
//!   downstream fragmentation entirely;
//! * **larger than the eMTU** (the path is jumbo-capable end to end, e.g.
//!   an un-advertised b-network): jumbo segments leave *untranslated up
//!   to the discovered PMTU*, extending the large-MTU path segment with
//!   no explicit peering configuration.
//!
//! Destinations that never answer keep the static eMTU — the safe
//! default.

use px_faults::DetBackoff;
use px_wire::fpmtud::{parse_report, probe_payload, FPMTUD_PORT};
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr};
use px_wire::udp::UdpDatagram;
use px_wire::{IpProtocol, UdpRepr};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Floor for discovered PMTUs (RFC 791 minimum reassembly size region —
/// anything below this is treated as a bogus report).
pub const MIN_PLAUSIBLE_PMTU: usize = 576;

/// Retry/backoff policy for the resident client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmtudRetryConfig {
    /// Timeout before the first retry; each further retry doubles it
    /// (deterministic exponential backoff, no jitter).
    pub timeout_ns: u64,
    /// Cap for the doubling timeout.
    pub backoff_max_ns: u64,
    /// Probes per destination before giving up.
    pub max_tries: u32,
    /// PMTU cached for a destination whose probes all time out —
    /// blackhole detection clamping to the safe static eMTU. `0`
    /// disables the fallback (unknown stays unknown).
    pub fallback_pmtu: usize,
}

impl Default for PmtudRetryConfig {
    fn default() -> Self {
        PmtudRetryConfig {
            timeout_ns: 100_000_000, // 100 ms of simulated time
            backoff_max_ns: 800_000_000,
            max_tries: 3,
            fallback_pmtu: 0,
        }
    }
}

/// One in-flight probe awaiting its report.
#[derive(Debug)]
struct PendingProbe {
    dst: Ipv4Addr,
    /// Absolute (sim) time after which the probe counts as lost.
    deadline_ns: u64,
    /// Probes sent to this destination so far (this one included).
    tries: u32,
    backoff: DetBackoff,
}

/// The gateway's per-destination PMTU learner.
#[derive(Debug)]
pub struct PmtudClient {
    /// The gateway's own address (probe source; reports come back here).
    pub addr: Ipv4Addr,
    /// Probe size — the iMTU, so jumbo-capable paths can be discovered.
    pub probe_size: usize,
    /// Retry schedule and blackhole fallback.
    pub retry: PmtudRetryConfig,
    cache: HashMap<Ipv4Addr, usize>,
    // BTreeMap: `tick` walks this, and retry emission order must be
    // deterministic.
    pending: BTreeMap<u32, PendingProbe>,
    probed: HashMap<Ipv4Addr, ()>,
    next_id: u32,
    ident: u16,
    /// Probes emitted (first tries and retries).
    pub probes_sent: u64,
    /// Reports consumed.
    pub reports_received: u64,
    /// Retry probes among `probes_sent`.
    pub retries_sent: u64,
    /// Destinations clamped to the fallback PMTU after exhausting
    /// every retry.
    pub blackholes_detected: u64,
}

impl PmtudClient {
    /// Creates a client probing with `probe_size`-byte probes from
    /// `addr`, using the default retry schedule (no fallback).
    pub fn new(addr: Ipv4Addr, probe_size: usize) -> Self {
        Self::with_retry(addr, probe_size, PmtudRetryConfig::default())
    }

    /// [`new`](Self::new) with an explicit retry/backoff policy.
    pub fn with_retry(addr: Ipv4Addr, probe_size: usize, retry: PmtudRetryConfig) -> Self {
        PmtudClient {
            addr,
            probe_size,
            retry,
            cache: HashMap::new(),
            pending: BTreeMap::new(),
            probed: HashMap::new(),
            next_id: 1,
            ident: 0x9d00,
            probes_sent: 0,
            reports_received: 0,
            retries_sent: 0,
            blackholes_detected: 0,
        }
    }

    /// The discovered PMTU towards `dst`, if known.
    pub fn pmtu_for(&self, dst: Ipv4Addr) -> Option<usize> {
        self.cache.get(&dst).copied()
    }

    /// Builds one probe packet for `dst` and registers it as pending.
    fn build_probe(
        &mut self,
        now_ns: u64,
        dst: Ipv4Addr,
        mut backoff: DetBackoff,
        tries: u32,
    ) -> Option<Vec<u8>> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = probe_payload(id, self.probe_size);
        let dg = UdpRepr {
            src_port: FPMTUD_PORT,
            dst_port: FPMTUD_PORT,
        }
        .build_datagram(self.addr, dst, &payload)
        .ok()?;
        let mut ip = Ipv4Repr::new(self.addr, dst, IpProtocol::Udp, dg.len());
        ip.dont_frag = false;
        ip.ident = self.ident;
        self.ident = self.ident.wrapping_add(1);
        let pkt = ip.build_packet(&dg).ok()?;
        let deadline_ns = now_ns.saturating_add(backoff.next_delay());
        self.pending.insert(
            id,
            PendingProbe {
                dst,
                deadline_ns,
                tries,
                backoff,
            },
        );
        self.probes_sent += 1;
        Some(pkt)
    }

    /// Returns a probe packet for `dst` if it has not been probed yet.
    pub fn maybe_probe(&mut self, now_ns: u64, dst: Ipv4Addr) -> Option<Vec<u8>> {
        if self.probed.contains_key(&dst) {
            return None;
        }
        self.probed.insert(dst, ());
        let backoff = DetBackoff::new(
            self.retry.timeout_ns,
            self.retry.backoff_max_ns.max(self.retry.timeout_ns),
        );
        self.build_probe(now_ns, dst, backoff, 1)
    }

    /// Drives the retry clock: re-sends probes whose report deadline
    /// passed (with the doubled timeout), and — once a destination has
    /// exhausted `max_tries` — declares it an F-PMTUD blackhole,
    /// clamping its PMTU to the configured fallback. Returns the retry
    /// probes to put on the wire, in deterministic order. Call from the
    /// gateway's periodic poll timer — this is what lets a destination
    /// that went dark *between* packets resolve on a deadline instead
    /// of on traffic.
    pub fn tick(&mut self, now_ns: u64) -> Vec<Vec<u8>> {
        let due: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline_ns <= now_ns)
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::new();
        for id in due {
            let Some(p) = self.pending.remove(&id) else {
                continue;
            };
            if p.tries < self.retry.max_tries {
                if let Some(pkt) = self.build_probe(now_ns, p.dst, p.backoff, p.tries + 1) {
                    self.retries_sent += 1;
                    out.push(pkt);
                }
            } else if self.retry.fallback_pmtu > 0 {
                // Blackhole: every probe died. Clamp to the safe
                // static eMTU so the split engine has a firm answer.
                self.cache.insert(p.dst, self.retry.fallback_pmtu);
                self.blackholes_detected += 1;
            }
        }
        out
    }

    /// In-flight probes (tests and diagnostics).
    pub fn pending_probes(&self) -> usize {
        self.pending.len()
    }

    /// Consumes an inbound packet if it is a report addressed to us;
    /// returns whether it was consumed.
    pub fn try_ingest(&mut self, pkt: &[u8]) -> bool {
        let Ok(ip) = Ipv4Packet::new_checked(pkt) else {
            return false;
        };
        if ip.dst() != self.addr || ip.protocol() != IpProtocol::Udp {
            return false;
        }
        let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
            return false;
        };
        if udp.dst_port() != FPMTUD_PORT {
            return false;
        }
        let Some((id, sizes)) = parse_report(udp.payload()) else {
            return false;
        };
        let Some(p) = self.pending.remove(&id) else {
            return true; // a report, but stale/unknown — still consume it
        };
        if let Some(&pmtu) = sizes.iter().max() {
            if pmtu >= MIN_PLAUSIBLE_PMTU {
                self.cache.insert(p.dst, pmtu);
                self.reports_received += 1;
            }
        }
        true
    }

    /// Number of destinations with a discovered PMTU.
    pub fn known(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_wire::fpmtud::report_payload;

    const GW: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 5);

    fn report_pkt(from: Ipv4Addr, to: Ipv4Addr, id: u32, sizes: &[usize]) -> Vec<u8> {
        let dg = UdpRepr {
            src_port: FPMTUD_PORT,
            dst_port: FPMTUD_PORT,
        }
        .build_datagram(from, to, &report_payload(id, sizes))
        .unwrap();
        Ipv4Repr::new(from, to, IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap()
    }

    #[test]
    fn probe_once_then_learn_from_report() {
        let mut c = PmtudClient::new(GW, 9000);
        let probe = c.maybe_probe(0, DST).expect("first sight probes");
        assert_eq!(probe.len(), 9000);
        assert!(
            c.maybe_probe(0, DST).is_none(),
            "probe once per destination"
        );
        assert_eq!(c.pmtu_for(DST), None);
        // The daemon saw three fragments, largest 1400.
        let report = report_pkt(DST, GW, 1, &[1400, 1400, 720]);
        assert!(c.try_ingest(&report));
        assert_eq!(c.pmtu_for(DST), Some(1400));
        assert_eq!(c.known(), 1);
        assert_eq!(c.pending_probes(), 0);
    }

    #[test]
    fn jumbo_path_discovered() {
        let mut c = PmtudClient::new(GW, 9000);
        c.maybe_probe(0, DST);
        let report = report_pkt(DST, GW, 1, &[9000]);
        c.try_ingest(&report);
        assert_eq!(c.pmtu_for(DST), Some(9000), "jumbo-capable path learned");
    }

    #[test]
    fn retries_follow_deterministic_backoff_then_clamp_to_fallback() {
        let retry = PmtudRetryConfig {
            timeout_ns: 100,
            backoff_max_ns: 800,
            max_tries: 3,
            fallback_pmtu: 1500,
        };
        let mut c = PmtudClient::with_retry(GW, 9000, retry);
        assert!(c.maybe_probe(0, DST).is_some());
        // Deadline 100: nothing due before it.
        assert!(c.tick(99).is_empty());
        // First retry fires at 100; its own deadline doubles (200 ns
        // later, at 300).
        let r1 = c.tick(100);
        assert_eq!(r1.len(), 1);
        assert_eq!(c.retries_sent, 1);
        assert!(c.tick(299).is_empty(), "doubled timeout not yet expired");
        let r2 = c.tick(300);
        assert_eq!(r2.len(), 1);
        assert_eq!(c.probes_sent, 3);
        // Third (= max) try: deadline 300 + 400 = 700. When it dies the
        // destination is declared a blackhole and clamps to the eMTU.
        assert!(c.tick(699).is_empty());
        assert!(c.tick(700).is_empty(), "no fourth probe");
        assert_eq!(c.blackholes_detected, 1);
        assert_eq!(c.pmtu_for(DST), Some(1500), "clamped to fallback eMTU");
        assert_eq!(c.pending_probes(), 0);
        // A second client with the same schedule retries at the same
        // instants — the backoff carries no jitter.
        let mut d = PmtudClient::with_retry(GW, 9000, retry);
        d.maybe_probe(0, DST);
        assert_eq!(d.tick(100).len(), 1);
        assert_eq!(d.tick(300).len(), 1);
        d.tick(700);
        assert_eq!(d.blackholes_detected, 1);
    }

    #[test]
    fn late_report_beats_the_retry_schedule() {
        let retry = PmtudRetryConfig {
            timeout_ns: 100,
            backoff_max_ns: 800,
            max_tries: 3,
            fallback_pmtu: 1500,
        };
        let mut c = PmtudClient::with_retry(GW, 9000, retry);
        c.maybe_probe(0, DST);
        c.tick(100); // retry (probe id 2) in flight
        let report = report_pkt(DST, GW, 2, &[1400]);
        assert!(c.try_ingest(&report));
        assert_eq!(c.pmtu_for(DST), Some(1400));
        // The answered probe left the pending set: no further retries,
        // no blackhole verdict.
        assert!(c.tick(10_000).is_empty());
        assert_eq!(c.blackholes_detected, 0);
        assert_eq!(c.pmtu_for(DST), Some(1400));
    }

    #[test]
    fn no_fallback_means_unknown_stays_unknown() {
        let retry = PmtudRetryConfig {
            timeout_ns: 100,
            backoff_max_ns: 100,
            max_tries: 1,
            fallback_pmtu: 0,
        };
        let mut c = PmtudClient::with_retry(GW, 9000, retry);
        c.maybe_probe(0, DST);
        assert!(c.tick(100).is_empty());
        assert_eq!(c.blackholes_detected, 0);
        assert_eq!(c.pmtu_for(DST), None);
    }

    #[test]
    fn bogus_and_foreign_reports_handled() {
        let mut c = PmtudClient::new(GW, 9000);
        c.maybe_probe(0, DST);
        // Implausibly small sizes are ignored (attack/bug resilience).
        let tiny = report_pkt(DST, GW, 1, &[64]);
        assert!(c.try_ingest(&tiny));
        assert_eq!(c.pmtu_for(DST), None);
        // Unknown probe id: consumed but not cached.
        c.maybe_probe(0, Ipv4Addr::new(9, 9, 9, 9));
        let stale = report_pkt(DST, GW, 999, &[1500]);
        assert!(c.try_ingest(&stale));
        // Not addressed to us: not consumed.
        let other = report_pkt(DST, Ipv4Addr::new(1, 2, 3, 4), 2, &[1500]);
        assert!(!c.try_ingest(&other));
        // Ordinary traffic: not consumed.
        let dg = UdpRepr {
            src_port: 1,
            dst_port: 80,
        }
        .build_datagram(DST, GW, b"hello")
        .unwrap();
        let plain = Ipv4Repr::new(DST, GW, IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap();
        assert!(!c.try_ingest(&plain));
    }
}
