//! # px-core — PacketExpress: the PXGW MTU-translating gateway
//!
//! The paper's primary contribution. A *PXGW* sits at the border of a
//! "beneficiary network" (b-network) that runs a large internal MTU
//! (iMTU, e.g. 9 KB) while its neighbours stay at the legacy external MTU
//! (eMTU, 1500 B), and translates packet sizes in both directions so
//! neither side notices:
//!
//! * **TCP, inbound (eMTU → iMTU)** — [`merge::MergeEngine`] coalesces
//!   contiguous same-flow segments into jumbo segments (NIC-LRO-style),
//!   with *delayed merging* to maximise the fraction of full iMTU packets;
//! * **TCP, outbound (iMTU → eMTU)** — [`split::SplitEngine`] TSO-splits
//!   jumbo segments back to wire size;
//! * **MSS rewriting** — [`mss`] raises the MSS option in handshake
//!   segments entering the b-network, so inside hosts send jumbo segments
//!   even though the outside peer advertised 1460 B;
//! * **UDP** — [`caravan_gw::CaravanEngine`] bundles datagrams into
//!   PX-caravan packets (boundaries preserved; QUIC-safe) and unbundles
//!   them on the way out;
//! * **small-flow steering** — [`steer::FlowClassifier`] hairpins mice
//!   flows past the merge machinery (paper §3/§4.1);
//! * **multi-core scaling** — [`pipeline`] models the RSS-sharded,
//!   memory-bus-constrained datapath of Fig. 5a/5b, including the
//!   header-only-DMA variant, and [`engine`] *runs* it: one worker
//!   thread per core over bounded channels (or a deterministic
//!   single-threaded schedule with bit-identical output);
//! * **iMTU advertisement** — [`advert`] implements §4.2's explicit
//!   per-network iMTU exchange so adjacent b-networks skip translation.
//!
//! [`gateway::PxGateway`] packages the engines as a two-port
//! [`px_sim::Node`] for end-to-end simulations, and
//! [`baseline::BaselineGateway`] reimplements the paper's comparison
//! point (DPDK GRO library forwarding).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod advert;
pub mod baseline;
pub mod caravan_gw;
pub mod coalesce;
pub mod engine;
pub mod flowtable;
pub mod gateway;
pub mod merge;
pub mod mss;
pub mod pipeline;
pub mod pmtud_client;
pub mod split;
pub mod steer;

pub use flowtable::{FlowTable, FlowTableConfig};
pub use gateway::{GatewayConfig, PxGateway};
pub use merge::{MergeConfig, MergeEngine};
pub use split::SplitEngine;
pub use steer::{FlowClass, FlowClassifier, SteerConfig};
