//! The gateway side of PX-caravan: bundling UDP datagrams into jumbo
//! outer packets on entry to the b-network, unbundling on exit.
//!
//! UDP cannot be merged transparently (datagram boundaries are
//! application state — QUIC breaks otherwise, §3), so the gateway
//! *tunnels* instead: whole datagrams, headers included, are concatenated
//! into the payload of one outer UDP/IP packet whose ToS byte is set to
//! [`CARAVAN_TOS`] (§4.1, Fig. 3). Receivers in the b-network unbundle
//! (the UDP_GRO-style path in [`px_tcp::udp`]); if the packet leaves the
//! b-network first, the egress PXGW restores the original datagrams.
//!
//! §5's evaluation configures the gateway "to merge consecutive UDP
//! packets using the IP ID field to be compatible with UDP_GRO"; the
//! `require_consecutive_ip_id` knob reproduces that policy.
//!
//! F-PMTUD probes (recognisable by their well-known destination port)
//! are never bundled: the prober's packet must traverse routers as-is so
//! fragmentation reveals the path MTU (§4.2).

use crate::flowtable::FlowTable;
use px_faults::{cause, hash_bytes, FaultInjector, FaultSpec, PlannedFaults};
use px_obs::{flow_id, EventKind, ObsConfig, Recorder, SpanCat};
use px_sim::stats::SizeHistogram;
use px_wire::bytes;
use px_wire::caravan::{iter_bundle, MAX_INNER};
use px_wire::checksum;
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr, CARAVAN_TOS};
use px_wire::pool::{BufPool, PacketSink, PoolStats, VecSink};
use px_wire::udp::UdpDatagram;
use px_wire::{FlowKey, IpProtocol, PacketBuf};
use std::net::Ipv4Addr;

/// Caravan engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct CaravanConfig {
    /// Internal MTU: cap for the outer packet.
    pub imtu: usize,
    /// Hold time for partial bundles (delayed merging), nanoseconds.
    pub hold_ns: u64,
    /// Flow-table capacity.
    pub table_capacity: usize,
    /// Only bundle datagrams whose IP IDs are consecutive (UDP_GRO
    /// compatibility mode used in the paper's evaluation).
    pub require_consecutive_ip_id: bool,
    /// Destination port whose packets bypass bundling (F-PMTUD probes).
    pub probe_port: u16,
}

impl Default for CaravanConfig {
    fn default() -> Self {
        CaravanConfig {
            imtu: px_wire::JUMBO_MTU,
            hold_ns: 50_000,
            table_capacity: 65536,
            require_consecutive_ip_id: true,
            probe_port: crate::gateway::FPMTUD_PORT,
        }
    }
}

/// Counters for the caravan engine.
#[derive(Debug, Default, Clone)]
pub struct CaravanStats {
    /// Inbound UDP packets seen.
    pub pkts_in: u64,
    /// Datagrams bundled into caravans.
    pub bundled: u64,
    /// Caravan packets emitted.
    pub caravans_out: u64,
    /// Packets passed through unbundled (probes, singletons, non-UDP).
    pub passthrough: u64,
    /// Caravans unbundled on the outbound side.
    pub unbundled: u64,
    /// Inner datagrams restored on the outbound side.
    pub inner_out: u64,
    /// Packets dropped because validation failed (corrupt caravan
    /// bundles on the outbound side, or an inner datagram whose restored
    /// header could not be emitted). Every input that produces no output
    /// and leaves no pending state increments this counter.
    pub dropped_malformed: u64,
    /// Output size distribution (inbound direction).
    pub out_sizes: SizeHistogram,
    /// Packets forwarded unbundled because a pending bundle could not
    /// be created (pool dry or flow-table denial) — the degradation
    /// ladder's passthrough rung (DESIGN.md §12).
    pub degraded_pkts: u64,
    /// Bundle creations refused because the buffer pool was exhausted
    /// (real [`BufPool::try_get`] failures plus injected verdicts).
    pub pool_exhausted: u64,
    /// Degraded packets dropped outright because even the emergency
    /// spare buffer was unavailable.
    pub backpressure_drops: u64,
}

impl CaravanStats {
    /// Fraction of emitted (inbound-direction) packets that are
    /// iMTU-sized, by the same ≥ `imtu − (emtu − 28) + 1` rule as TCP.
    pub fn conversion_yield(&self, imtu: usize, emtu: usize) -> f64 {
        self.out_sizes.fraction_at_least(imtu - (emtu - 28) + 1)
    }
}

/// A per-flow pending bundle, held in one pooled buffer.
///
/// While `count == 1` the buffer holds the original packet verbatim (so
/// a singleton flush forwards it untouched, never pointlessly
/// tunnelled); the first append strips the IP header in place
/// ([`PacketBuf::advance`] — zero-copy) so the live bytes become the
/// bundle, and emission pushes the outer UDP+IP headers into the
/// buffer's headroom.
#[derive(Debug)]
struct PendingBundle {
    buf: PacketBuf,
    /// Inner datagrams accumulated.
    count: usize,
    /// Bundle bytes accumulated (sum of inner datagram lengths).
    bundle_len: usize,
    /// Running ones-complement partial sum of the bundle bytes, so the
    /// outer UDP checksum at emission never re-scans the payload.
    bundle_sum: u16,
    /// IP header length of the original first packet (stripped on the
    /// first append).
    ip_hlen: u8,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    next_ip_id: u16,
    /// Logical arrival time of the first datagram (dwell accounting).
    born: u64,
}

/// The PX-caravan gateway engine.
#[derive(Debug)]
pub struct CaravanEngine {
    /// Configuration.
    pub cfg: CaravanConfig,
    table: FlowTable<PendingBundle>,
    pool: BufPool,
    out_ident: u16,
    /// Counters.
    pub stats: CaravanStats,
    /// Flight recorder + histograms (disabled by default — zero cost).
    pub obs: Recorder,
    /// Logical time of the most recent inbound push/poll, used to stamp
    /// emission events deterministically.
    last_now: u64,
    /// Resource-fault injector ([`PlannedFaults::off`] in production).
    faults: PlannedFaults,
    /// Emergency buffer for degraded passthrough, owned outside the
    /// pool (see [`crate::merge::MergeEngine`] for the full rationale).
    spare: Option<PacketBuf>,
    /// Whether the engine is currently in degraded (passthrough) mode.
    degraded: bool,
    /// Monotone per-emission sequence: the low bits of every `Caravan`
    /// span's causal link id (see [`CaravanEngine::set_span_link_base`]).
    emit_seq: u64,
    /// High-bit offset OR-ed into link ids for cross-core uniqueness.
    link_base: u64,
}

impl CaravanEngine {
    /// Creates a caravan engine.
    pub fn new(cfg: CaravanConfig) -> Self {
        let pool = BufPool::for_mtu(cfg.imtu, 256);
        let spare = PacketBuf::with_capacity(pool.headroom(), pool.headroom() + cfg.imtu);
        CaravanEngine {
            cfg,
            table: FlowTable::new(cfg.table_capacity),
            pool,
            out_ident: 1,
            stats: CaravanStats::default(),
            obs: Recorder::off(),
            last_now: 0,
            faults: PlannedFaults::off(),
            spare: Some(spare),
            degraded: false,
            emit_seq: 0,
            link_base: 0,
        }
    }

    /// Arms (or disarms, with [`FaultSpec::off`]) resource-fault
    /// injection for this engine.
    pub fn set_faults(&mut self, spec: FaultSpec) {
        self.faults = PlannedFaults::new(spec);
    }

    /// Caps the buffer pool's live-buffer count (see
    /// [`BufPool::set_live_cap`]).
    pub fn set_pool_live_cap(&mut self, cap: Option<u64>) {
        self.pool.set_live_cap(cap);
    }

    /// Re-sizes the bundle flow table from a
    /// [`FlowTableConfig`](crate::flowtable::FlowTableConfig) (entry
    /// ceiling + optional byte budget). Must be called before any
    /// traffic: replacing a table with pending bundles would leak
    /// their pool buffers.
    pub fn configure_table(&mut self, cfg: crate::flowtable::FlowTableConfig) {
        debug_assert!(self.table.is_empty(), "reconfigure only while empty");
        self.table = FlowTable::with_config(cfg);
    }

    /// Re-sizes the buffer pool's parked-buffer cap. Must be called
    /// before any traffic.
    pub fn set_pool_bufs(&mut self, max_free: usize) {
        debug_assert_eq!(self.pool.outstanding(), 0, "resize only while idle");
        self.pool = BufPool::for_mtu(self.cfg.imtu, max_free);
        // Park the whole allowance up front: the first excursion to the
        // concurrent-bundle peak then recycles instead of allocating.
        self.pool.prewarm(max_free);
    }

    /// Bytes reserved by the bundle table's arenas.
    pub fn arena_bytes(&self) -> usize {
        self.table.arena_bytes()
    }

    /// Flows currently holding a pending bundle.
    pub fn flows_live(&self) -> usize {
        self.table.len()
    }

    /// Bundle-table evictions as `(idle, pressure)`. Every caravan
    /// eviction rescue-flushes a pending bundle, so they all count as
    /// pressure.
    pub fn eviction_counts(&self) -> (u64, u64) {
        (0, self.table.evictions)
    }

    /// Whether the engine is currently degraded to passthrough.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Sets the high bits OR-ed into every `Caravan` span's link id so
    /// links stay unique across cores (the engine driver passes
    /// `(core + 1) << 48`). Link ids tie each emitted caravan to the
    /// `Split` span that later unbundles it in the trace export.
    pub fn set_span_link_base(&mut self, base: u64) {
        self.link_base = base;
    }

    /// Emissions so far (the link sequence already consumed).
    pub fn emit_seq(&self) -> u64 {
        self.emit_seq
    }

    /// Switches the flight recorder + histograms on.
    pub fn enable_obs(&mut self, cfg: ObsConfig) {
        self.obs = Recorder::new(cfg);
    }

    /// Flow-table lookups (cost accounting).
    pub fn lookups(&self) -> u64 {
        self.table.lookups
    }

    /// Buffer-pool counters (allocation accounting).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats
    }

    /// Buffers held by pending bundles or not yet recycled by a sink.
    pub fn pool_outstanding(&self) -> u64 {
        self.pool.outstanding()
    }

    fn bundle_budget(&self) -> usize {
        self.cfg.imtu - 28 // outer IPv4 (20) + outer UDP (8)
    }

    /// Forwards a packet untouched, recording it in the inbound output
    /// size distribution.
    fn forward_recorded(&mut self, pkt: &[u8], sink: &mut impl PacketSink) {
        self.stats.passthrough += 1;
        self.stats.out_sizes.record(pkt.len());
        self.obs.observe_out_size(pkt.len() as u64);
        let mut buf = self.pool.get();
        buf.extend_from_slice(pkt);
        if let Some(b) = sink.accept(buf) {
            self.pool.put(b);
        }
    }

    /// Degraded passthrough: a pending bundle could not be created
    /// ([`cause::POOL`] = pool dry, [`cause::TABLE`] = table denial), so
    /// the datagram is forwarded unbundled through the pool-independent
    /// spare buffer. Never allocates and never panics (px-analyze R6);
    /// when even the spare is gone the packet is dropped and counted as
    /// backpressure.
    fn degrade_forward(
        &mut self,
        now: u64,
        pkt: &[u8],
        flow: u32,
        cause_code: u64,
        sink: &mut impl PacketSink,
    ) {
        if !self.degraded {
            self.degraded = true;
            self.obs.record(
                EventKind::DegradeEnter,
                now,
                pkt.len() as u32,
                0,
                cause_code,
            );
        }
        // One span per degraded packet: the conservation law pins
        // count(Degrade) == degraded_pkts + backpressure_drops.
        self.obs.record_span(
            SpanCat::Degrade,
            now,
            0,
            pkt.len() as u32,
            flow,
            cause_code,
            0,
        );
        if cause_code == cause::POOL {
            self.stats.pool_exhausted += 1;
        }
        match self.spare.take() {
            Some(mut buf) if pkt.len() <= self.cfg.imtu => {
                self.stats.degraded_pkts += 1;
                buf.extend_from_slice(pkt);
                if let Some(mut b) = sink.accept(buf) {
                    b.reset(self.pool.headroom());
                    self.spare = Some(b);
                }
            }
            kept => {
                self.spare = kept;
                self.stats.backpressure_drops += 1;
            }
        }
    }

    /// Leaves degraded mode on the first bundle creation that succeeds
    /// again.
    fn degrade_exit(&mut self, now: u64) {
        if self.degraded {
            self.degraded = false;
            self.obs.record(EventKind::DegradeExit, now, 0, 0, 0);
        }
    }

    fn emit_pending(&mut self, mut p: PendingBundle, sink: &mut impl PacketSink) {
        if p.count == 1 {
            // Single datagram: forward the original packet untouched.
            self.stats.passthrough += 1;
            self.stats.out_sizes.record(p.buf.len());
            if self.obs.is_enabled() {
                self.obs.observe_out_size(p.buf.len() as u64);
                let flow = flow_id(p.src_port, p.dst_port);
                let dwell = self.last_now.saturating_sub(p.born);
                self.emit_seq += 1;
                self.obs.record_span(
                    SpanCat::Caravan,
                    p.born,
                    dwell,
                    p.buf.len() as u32,
                    flow,
                    1,
                    self.link_base | self.emit_seq,
                );
                self.obs.observe_flow(flow, 1, p.buf.len() as u64, dwell);
            }
            if let Some(b) = sink.accept(p.buf) {
                self.pool.put(b);
            }
            return;
        }
        // Outer UDP header into the headroom; checksum from the cached
        // bundle sum (the bundle bytes are not re-read).
        let udp_len = (px_wire::UDP_HEADER_LEN + p.bundle_len) as u16;
        p.buf.push_front_zeroed(8);
        {
            let b = p.buf.as_mut_slice();
            bytes::put_be16(b, 0, p.src_port);
            bytes::put_be16(b, 2, p.dst_port);
            bytes::put_be16(b, 4, udp_len);
            let pseudo = checksum::pseudo_header_sum(p.src, p.dst, IpProtocol::Udp.into(), udp_len);
            let header_sum = checksum::ones_complement_sum(bytes::range_to(b, 8));
            let mut ck = !checksum::combine(pseudo, checksum::combine(header_sum, p.bundle_sum));
            if ck == 0 {
                ck = 0xFFFF; // RFC 768: computed 0 is transmitted as all-ones
            }
            bytes::put_be16(b, 6, ck);
        }
        // Outer IP header in front of that.
        p.buf.push_front_zeroed(20);
        let mut ip = Ipv4Repr::new(p.src, p.dst, IpProtocol::Udp, usize::from(udp_len));
        ip.tos = CARAVAN_TOS;
        ip.ident = self.out_ident;
        self.out_ident = self.out_ident.wrapping_add(1);
        let emit_ok = {
            let mut v = Ipv4Packet::new_unchecked(p.buf.as_mut_slice());
            ip.emit(&mut v).is_ok()
        };
        if !emit_ok {
            // A bundle the outer header cannot describe (cannot happen
            // for bundles within the iMTU budget): drop and account.
            self.stats.dropped_malformed += 1;
            self.obs.record(
                EventKind::DropMalformed,
                self.last_now,
                p.buf.len() as u32,
                flow_id(p.src_port, p.dst_port),
                0,
            );
            self.pool.put(p.buf);
            return;
        }
        self.stats.caravans_out += 1;
        self.stats.out_sizes.record(p.buf.len());
        if self.obs.is_enabled() {
            let flow = flow_id(p.src_port, p.dst_port);
            let dwell = self.last_now.saturating_sub(p.born);
            self.obs.record(
                EventKind::CaravanPack,
                self.last_now,
                p.buf.len() as u32,
                flow,
                p.count as u64,
            );
            self.obs.observe_dwell(dwell);
            self.obs.observe_out_size(p.buf.len() as u64);
            self.emit_seq += 1;
            self.obs.record_span(
                SpanCat::Caravan,
                p.born,
                dwell,
                p.buf.len() as u32,
                flow,
                p.count as u64,
                self.link_base | self.emit_seq,
            );
            self.obs
                .observe_flow(flow, p.count as u64, p.buf.len() as u64, dwell);
        }
        if let Some(b) = sink.accept(p.buf) {
            self.pool.put(b);
        }
    }

    /// Processes one packet entering the b-network, delivering packets to
    /// forward to `sink` (possibly none while a bundle is being held).
    pub fn push_inbound_into(&mut self, now: u64, pkt: &[u8], sink: &mut impl PacketSink) {
        self.stats.pkts_in += 1;
        self.last_now = now;

        let parsed = (|| {
            let ip = Ipv4Packet::new_checked(pkt).ok()?;
            if ip.protocol() != IpProtocol::Udp || ip.is_fragment() || ip.tos() == CARAVAN_TOS {
                return None;
            }
            let udp = UdpDatagram::new_checked(ip.payload()).ok()?;
            if udp.dst_port() == self.cfg.probe_port {
                return None; // F-PMTUD probes pass through untouched
            }
            let ip_hlen = ip.header_len();
            Some((
                FlowKey::udp(ip.src(), udp.src_port(), ip.dst(), udp.dst_port()),
                ip.ident(),
                ip.src(),
                ip.dst(),
                udp.src_port(),
                udp.dst_port(),
                ip_hlen,
                bytes::range(pkt, ip_hlen, ip_hlen + udp.length()),
            ))
        })();
        if self.obs.is_enabled() {
            // One Classify span per inbound packet: the conservation law
            // pins count(Classify) == pkts_in per core. aux 1 = the
            // packet classified as bundleable UDP.
            let (flow, keyed) = match &parsed {
                Some((_, _, _, _, sp, dp, _, _)) => (flow_id(*sp, *dp), 1),
                None => (0, 0),
            };
            self.obs
                .record_span(SpanCat::Classify, now, 0, pkt.len() as u32, flow, keyed, 0);
        }
        let Some((key, ip_id, src, dst, sport, dport, ip_hlen, dgram)) = parsed else {
            // aux 2 = passthrough (probe, non-UDP, fragment, caravan ToS).
            self.obs
                .record_span(SpanCat::Steer, now, 0, pkt.len() as u32, 0, 2, 0);
            self.forward_recorded(pkt, sink);
            return;
        };

        if dgram.len() > self.bundle_budget() {
            // Too large to bundle with anything.
            self.obs.record_span(
                SpanCat::Steer,
                now,
                0,
                pkt.len() as u32,
                flow_id(sport, dport),
                2,
                0,
            );
            self.forward_recorded(pkt, sink);
            return;
        }

        let budget = self.bundle_budget();
        let require_id = self.cfg.require_consecutive_ip_id;
        let mut extended = false;
        if let Some(p) = self.table.get_mut(&key) {
            let id_ok = !require_id || ip_id == p.next_ip_id;
            let fits = p.count < MAX_INNER && p.bundle_len + dgram.len() <= budget;
            let convert_ok = if id_ok && fits && p.count == 1 {
                // Convert the stored original packet into bundle bytes:
                // strip the IP header in place, drop anything past the
                // first datagram. A failed strip (header longer than the
                // stored packet — impossible for a validated packet)
                // leaves the original intact for the flush path below.
                let hlen = usize::from(p.ip_hlen);
                p.buf
                    .advance(hlen)
                    .map(|()| p.buf.truncate(p.bundle_len))
                    .is_ok()
            } else {
                true
            };
            if id_ok && fits && convert_ok {
                p.bundle_sum = checksum::combine_at_offset(
                    p.bundle_sum,
                    checksum::ones_complement_sum(dgram),
                    p.bundle_len % 2 == 1,
                );
                p.buf.extend_from_slice(dgram);
                p.bundle_len += dgram.len();
                p.count += 1;
                p.next_ip_id = ip_id.wrapping_add(1);
                self.stats.bundled += 1;
                extended = true;
                // Emit when no further same-sized datagram can fit.
                if p.bundle_len + dgram.len() <= budget {
                    return;
                }
            }
        }
        if extended {
            if let Some(p) = self.table.remove(&key) {
                self.emit_pending(p, sink);
            }
            return;
        }
        if let Some(p) = self.table.remove(&key) {
            // Can't extend: flush and start fresh below.
            self.emit_pending(p, sink);
        }

        // Bundle creation is the resource-pressure point (the only step
        // that pins a pool buffer and a table slot across calls):
        // injected verdicts and real pool exhaustion degrade to
        // unbundled passthrough here — never a drop.
        if self.faults.spec.enabled {
            let pkt_hash = hash_bytes(pkt);
            if self.faults.pool_dry(pkt_hash) {
                self.degrade_forward(now, pkt, flow_id(sport, dport), cause::POOL, sink);
                return;
            }
            if self.faults.table_deny(pkt_hash) {
                self.degrade_forward(now, pkt, flow_id(sport, dport), cause::TABLE, sink);
                return;
            }
        }
        let Some(mut buf) = self.pool.try_get() else {
            self.degrade_forward(now, pkt, flow_id(sport, dport), cause::POOL, sink);
            return;
        };
        self.degrade_exit(now);
        buf.extend_from_slice(pkt);
        self.stats.bundled += 1;
        let pending = PendingBundle {
            buf,
            count: 1,
            bundle_len: dgram.len(),
            bundle_sum: checksum::ones_complement_sum(dgram),
            ip_hlen: ip_hlen as u8,
            src,
            dst,
            src_port: sport,
            dst_port: dport,
            next_ip_id: ip_id.wrapping_add(1),
            born: now,
        };
        if let Some((victim_key, victim)) =
            self.table
                .insert_with_deadline(key, pending, now + self.cfg.hold_ns)
        {
            // aux 2 = pressure: the bundle held unflushed datagrams and
            // is rescue-flushed below.
            let vflow = flow_id(victim_key.src_port, victim_key.dst_port);
            self.obs
                .record(EventKind::FlowEvict, now, victim.buf.len() as u32, vflow, 2);
            self.obs
                .record_span(SpanCat::Evict, now, 0, victim.buf.len() as u32, vflow, 2, 0);
            self.emit_pending(victim, sink);
        }
    }

    /// Processes one packet leaving the b-network: caravans are restored
    /// to their original datagrams (delivered to `sink`); everything else
    /// passes through.
    pub fn push_outbound_into(&mut self, pkt: &[u8], sink: &mut impl PacketSink) {
        let parsed = (|| {
            let ip = Ipv4Packet::new_checked(pkt).ok()?;
            if ip.protocol() != IpProtocol::Udp || ip.tos() != CARAVAN_TOS || ip.is_fragment() {
                return None;
            }
            UdpDatagram::new_checked(ip.payload()).ok()?;
            let ip_hlen = ip.header_len();
            let bundle_at = ip_hlen + px_wire::UDP_HEADER_LEN;
            Some((
                ip.src(),
                ip.dst(),
                bytes::range(pkt, bundle_at, ip.total_len()),
            ))
        })();
        let Some((src, dst, bundle)) = parsed else {
            let mut buf = self.pool.get();
            buf.extend_from_slice(pkt);
            if let Some(b) = sink.accept(buf) {
                self.pool.put(b);
            }
            return;
        };
        // Validate the whole bundle first: a corrupt bundle is dropped in
        // full rather than partially forwarded as garbage. The strict
        // walk also rejects inner records whose length fields under- or
        // over-claim bytes (overlapping-claim smuggling).
        if px_wire::caravan::validate_bundle(bundle).is_err() {
            self.stats.dropped_malformed += 1;
            self.obs.record(
                EventKind::DropMalformed,
                self.last_now,
                pkt.len() as u32,
                0,
                0,
            );
            return;
        }
        self.stats.unbundled += 1;
        for dg in iter_bundle(bundle).filter_map(|r| r.ok()) {
            let mut ip = Ipv4Repr::new(src, dst, IpProtocol::Udp, dg.len());
            ip.ident = self.out_ident;
            self.out_ident = self.out_ident.wrapping_add(1);
            let mut buf = self.pool.get();
            buf.extend_from_slice(dg);
            buf.push_front_zeroed(20);
            let ok = {
                let mut v = Ipv4Packet::new_unchecked(buf.as_mut_slice());
                ip.emit(&mut v).is_ok()
            };
            if ok {
                self.stats.inner_out += 1;
                if let Some(b) = sink.accept(buf) {
                    self.pool.put(b);
                }
            } else {
                self.stats.dropped_malformed += 1;
                self.obs.record(
                    EventKind::DropMalformed,
                    self.last_now,
                    buf.len() as u32,
                    0,
                    0,
                );
                self.pool.put(buf);
            }
        }
    }

    /// Emits every bundle whose hold timer expired.
    pub fn poll_into(&mut self, now: u64, sink: &mut impl PacketSink) {
        // The end-of-run drain polls with a `u64::MAX` sentinel to
        // expire every hold timer; keep the last *real* timestamp for
        // dwell/event accounting so drained bundles don't report
        // astronomical dwells (which also overflow the profiler's
        // per-flow sums in debug builds).
        if now != u64::MAX {
            self.last_now = now;
        }
        while let Some((_, p)) = self.table.pop_expired(now) {
            self.emit_pending(p, sink);
        }
    }

    /// The earliest pending deadline, if any.
    pub fn next_deadline(&mut self) -> Option<u64> {
        self.table.next_deadline()
    }

    /// Drains everything, delivering to `sink`.
    pub fn flush_all_into(&mut self, sink: &mut impl PacketSink) {
        for (_, p) in self.table.drain() {
            self.emit_pending(p, sink);
        }
    }

    /// [`push_inbound_into`](Self::push_inbound_into) collected into a
    /// `Vec` (tests and non-hot callers).
    pub fn push_inbound(&mut self, now: u64, pkt: Vec<u8>) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        self.push_inbound_into(now, &pkt, &mut sink);
        sink.into_pkts()
    }

    /// [`push_outbound_into`](Self::push_outbound_into) collected into a
    /// `Vec`.
    pub fn push_outbound(&mut self, pkt: Vec<u8>) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        self.push_outbound_into(&pkt, &mut sink);
        sink.into_pkts()
    }

    /// [`poll_into`](Self::poll_into) collected into a `Vec`.
    pub fn poll(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        self.poll_into(now, &mut sink);
        sink.into_pkts()
    }

    /// [`flush_all_into`](Self::flush_all_into) collected into a `Vec`.
    pub fn flush_all(&mut self) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        self.flush_all_into(&mut sink);
        sink.into_pkts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_wire::caravan::split_bundle;
    use px_wire::UdpRepr;

    const SRC: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 9);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 3);

    fn udp_pkt(sport: u16, payload_len: usize, ip_id: u16) -> Vec<u8> {
        let dg = UdpRepr {
            src_port: sport,
            dst_port: 4433,
        }
        .build_datagram(SRC, DST, &vec![0xCD; payload_len])
        .unwrap();
        let mut ip = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, dg.len());
        ip.ident = ip_id;
        ip.build_packet(&dg).unwrap()
    }

    #[test]
    fn bundles_consecutive_datagrams_into_one_caravan() {
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        let mut out = Vec::new();
        for i in 0..7u16 {
            out.extend(eng.push_inbound(0, udp_pkt(5000, 1172, i)));
        }
        assert_eq!(out.len(), 1, "7×1200B datagrams fill one 9000B caravan");
        let caravan = &out[0];
        assert!(caravan.len() <= 9000);
        let ip = Ipv4Packet::new_checked(&caravan[..]).unwrap();
        assert_eq!(ip.tos(), CARAVAN_TOS);
        assert!(ip.verify_checksum());
        // Round-trip: unbundling restores 7 datagrams.
        let restored = eng.push_outbound(caravan.clone());
        assert_eq!(restored.len(), 7);
        for p in &restored {
            let ip = Ipv4Packet::new_checked(&p[..]).unwrap();
            assert_eq!(ip.tos(), 0);
            let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
            assert_eq!(udp.payload().len(), 1172);
            assert!(udp.verify_checksum(ip.src(), ip.dst()));
        }
    }

    #[test]
    fn hold_timer_flushes_partial_bundles() {
        let cfg = CaravanConfig {
            hold_ns: 1000,
            ..Default::default()
        };
        let mut eng = CaravanEngine::new(cfg);
        assert!(eng.push_inbound(0, udp_pkt(5000, 500, 0)).is_empty());
        assert!(eng.push_inbound(10, udp_pkt(5000, 500, 1)).is_empty());
        assert!(eng.poll(999).is_empty());
        let out = eng.poll(1001);
        assert_eq!(out.len(), 1);
        let ip = Ipv4Packet::new_checked(&out[0][..]).unwrap();
        assert_eq!(ip.tos(), CARAVAN_TOS);
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert_eq!(split_bundle(udp.payload()).unwrap().len(), 2);
    }

    #[test]
    fn singleton_flush_passes_original_packet() {
        let cfg = CaravanConfig {
            hold_ns: 100,
            ..Default::default()
        };
        let mut eng = CaravanEngine::new(cfg);
        let orig = udp_pkt(5000, 500, 0);
        assert!(eng.push_inbound(0, orig.clone()).is_empty());
        let out = eng.poll(u64::MAX);
        assert_eq!(out, vec![orig], "no pointless tunnelling of singletons");
    }

    #[test]
    fn nonconsecutive_ip_id_breaks_bundle_in_compat_mode() {
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        eng.push_inbound(0, udp_pkt(5000, 500, 0));
        // Jump in IP ID: previous bundle flushed (as original packet).
        let out = eng.push_inbound(1, udp_pkt(5000, 500, 7));
        assert_eq!(out.len(), 1);
        assert_eq!(eng.stats.passthrough, 1);
        // Without compat mode, the same pattern keeps bundling.
        let mut eng2 = CaravanEngine::new(CaravanConfig {
            require_consecutive_ip_id: false,
            ..Default::default()
        });
        eng2.push_inbound(0, udp_pkt(5000, 500, 0));
        assert!(eng2.push_inbound(1, udp_pkt(5000, 500, 7)).is_empty());
    }

    #[test]
    fn probe_port_bypasses_bundling() {
        let cfg = CaravanConfig::default();
        let mut eng = CaravanEngine::new(cfg);
        let dg = UdpRepr {
            src_port: 9,
            dst_port: cfg.probe_port,
        }
        .build_datagram(SRC, DST, &[0u8; 100])
        .unwrap();
        let pkt = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap();
        let out = eng.push_inbound(0, pkt.clone());
        assert_eq!(out, vec![pkt], "probes forwarded unmerged");
    }

    #[test]
    fn flows_do_not_mix() {
        let mut eng = CaravanEngine::new(CaravanConfig {
            require_consecutive_ip_id: false,
            ..Default::default()
        });
        for i in 0..3 {
            eng.push_inbound(0, udp_pkt(5000, 500, i));
            eng.push_inbound(0, udp_pkt(6000, 500, i));
        }
        let out = eng.flush_all();
        assert_eq!(out.len(), 2);
        for p in &out {
            let ip = Ipv4Packet::new_checked(&p[..]).unwrap();
            let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
            assert!(px_wire::caravan::bundle_is_single_flow(udp.payload()).unwrap());
        }
    }

    #[test]
    fn flight_recorder_captures_caravan_packing() {
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        eng.enable_obs(px_obs::ObsConfig::default());
        let mut out = Vec::new();
        for i in 0..7u16 {
            out.extend(eng.push_inbound(u64::from(i) * 100, udp_pkt(5000, 1172, i)));
        }
        assert_eq!(out.len(), 1);
        let events = eng.obs.recent(64);
        let pack = events
            .iter()
            .find(|e| e.kind == EventKind::CaravanPack)
            .expect("CaravanPack recorded");
        assert_eq!(pack.flow, flow_id(5000, 4433));
        assert_eq!(pack.aux, 7, "inner datagram count in aux");
        assert_eq!(pack.ts, 600, "stamped with the emitting push's time");
        assert_eq!(eng.obs.hists().dwell_ns.max(), 600);
    }

    #[test]
    fn oversize_datagram_passes_through() {
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        let big = udp_pkt(5000, 8980, 0); // > bundle budget
        let out = eng.push_inbound(0, big.clone());
        assert_eq!(out, vec![big]);
    }

    #[test]
    fn pool_exhaustion_degrades_to_unbundled_passthrough() {
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        eng.enable_obs(px_obs::ObsConfig::default());
        eng.set_pool_live_cap(Some(1));
        let got: std::cell::RefCell<Vec<Vec<u8>>> = std::cell::RefCell::new(Vec::new());
        let mut sink = |b: PacketBuf| {
            got.borrow_mut().push(b.as_slice().to_vec());
            Some(b)
        };
        // Flow A pins the pool's only live buffer.
        eng.push_inbound_into(0, &udp_pkt(5000, 500, 0), &mut sink);
        assert!(got.borrow().is_empty(), "held");
        // Flow B cannot get a buffer: forwarded unbundled, verbatim.
        let orig = udp_pkt(6000, 500, 0);
        eng.push_inbound_into(10, &orig, &mut sink);
        assert_eq!(*got.borrow(), vec![orig]);
        assert!(eng.is_degraded());
        assert_eq!(eng.stats.degraded_pkts, 1);
        assert_eq!(eng.stats.pool_exhausted, 1);
        // Flush A; the returned buffer lets B's next datagram bundle.
        eng.poll_into(u64::MAX, &mut sink);
        eng.push_inbound_into(20, &udp_pkt(6000, 500, 1), &mut sink);
        assert!(!eng.is_degraded(), "recovered on next successful creation");
        let kinds: Vec<EventKind> = eng.obs.recent(16).iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::DegradeEnter), "{kinds:?}");
        assert!(kinds.contains(&EventKind::DegradeExit), "{kinds:?}");
        eng.flush_all_into(&mut sink);
        assert_eq!(eng.pool.outstanding(), 0, "no leaked buffers");
    }

    #[test]
    fn injected_faults_degrade_the_caravan_engine_too() {
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        eng.set_faults(FaultSpec {
            enabled: true,
            seed: 3,
            table_deny_ppm: 1_000_000,
            ..FaultSpec::off()
        });
        let p0 = udp_pkt(5000, 500, 0);
        assert_eq!(eng.push_inbound(0, p0.clone()), vec![p0]);
        assert_eq!(eng.stats.degraded_pkts, 1);
        assert_eq!(eng.stats.pool_exhausted, 0);
        assert_eq!(eng.pool.outstanding(), 0);
    }

    #[test]
    fn outbound_noncaravan_passes_through() {
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        let plain = udp_pkt(5000, 500, 0);
        assert_eq!(eng.push_outbound(plain.clone()), vec![plain]);
    }
}
