//! The gateway side of PX-caravan: bundling UDP datagrams into jumbo
//! outer packets on entry to the b-network, unbundling on exit.
//!
//! UDP cannot be merged transparently (datagram boundaries are
//! application state — QUIC breaks otherwise, §3), so the gateway
//! *tunnels* instead: whole datagrams, headers included, are concatenated
//! into the payload of one outer UDP/IP packet whose ToS byte is set to
//! [`CARAVAN_TOS`] (§4.1, Fig. 3). Receivers in the b-network unbundle
//! (the UDP_GRO-style path in [`px_tcp::udp`]); if the packet leaves the
//! b-network first, the egress PXGW restores the original datagrams.
//!
//! §5's evaluation configures the gateway "to merge consecutive UDP
//! packets using the IP ID field to be compatible with UDP_GRO"; the
//! `require_consecutive_ip_id` knob reproduces that policy.
//!
//! F-PMTUD probes (recognisable by their well-known destination port)
//! are never bundled: the prober's packet must traverse routers as-is so
//! fragmentation reveals the path MTU (§4.2).

use crate::flowtable::FlowTable;
use px_sim::stats::SizeHistogram;
use px_wire::caravan::{split_bundle, CaravanBuilder};
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr, CARAVAN_TOS};
use px_wire::udp::UdpDatagram;
use px_wire::{FlowKey, IpProtocol, UdpRepr};
use std::net::Ipv4Addr;

/// Caravan engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct CaravanConfig {
    /// Internal MTU: cap for the outer packet.
    pub imtu: usize,
    /// Hold time for partial bundles (delayed merging), nanoseconds.
    pub hold_ns: u64,
    /// Flow-table capacity.
    pub table_capacity: usize,
    /// Only bundle datagrams whose IP IDs are consecutive (UDP_GRO
    /// compatibility mode used in the paper's evaluation).
    pub require_consecutive_ip_id: bool,
    /// Destination port whose packets bypass bundling (F-PMTUD probes).
    pub probe_port: u16,
}

impl Default for CaravanConfig {
    fn default() -> Self {
        CaravanConfig {
            imtu: px_wire::JUMBO_MTU,
            hold_ns: 50_000,
            table_capacity: 65536,
            require_consecutive_ip_id: true,
            probe_port: crate::gateway::FPMTUD_PORT,
        }
    }
}

/// Counters for the caravan engine.
#[derive(Debug, Default, Clone)]
pub struct CaravanStats {
    /// Inbound UDP packets seen.
    pub pkts_in: u64,
    /// Datagrams bundled into caravans.
    pub bundled: u64,
    /// Caravan packets emitted.
    pub caravans_out: u64,
    /// Packets passed through unbundled (probes, singletons, non-UDP).
    pub passthrough: u64,
    /// Caravans unbundled on the outbound side.
    pub unbundled: u64,
    /// Inner datagrams restored on the outbound side.
    pub inner_out: u64,
    /// Output size distribution (inbound direction).
    pub out_sizes: SizeHistogram,
}

impl CaravanStats {
    /// Fraction of emitted (inbound-direction) packets that are
    /// iMTU-sized, by the same ≥ `imtu − (emtu − 28) + 1` rule as TCP.
    pub fn conversion_yield(&self, imtu: usize, emtu: usize) -> f64 {
        self.out_sizes.fraction_at_least(imtu - (emtu - 28) + 1)
    }
}

#[derive(Debug)]
struct PendingBundle {
    builder: CaravanBuilder,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    deadline: u64,
    next_ip_id: u16,
    /// The original single packet, kept so a 1-datagram "bundle" can be
    /// emitted verbatim rather than pointlessly tunnelled.
    first_pkt: Option<Vec<u8>>,
}

/// The PX-caravan gateway engine.
#[derive(Debug)]
pub struct CaravanEngine {
    /// Configuration.
    pub cfg: CaravanConfig,
    table: FlowTable<PendingBundle>,
    out_ident: u16,
    /// Counters.
    pub stats: CaravanStats,
}

impl CaravanEngine {
    /// Creates a caravan engine.
    pub fn new(cfg: CaravanConfig) -> Self {
        CaravanEngine {
            cfg,
            table: FlowTable::new(cfg.table_capacity),
            out_ident: 1,
            stats: CaravanStats::default(),
        }
    }

    /// Flow-table lookups (cost accounting).
    pub fn lookups(&self) -> u64 {
        self.table.lookups
    }

    fn bundle_budget(&self) -> usize {
        self.cfg.imtu - 28 // outer IPv4 (20) + outer UDP (8)
    }

    fn emit_pending(&mut self, out: &mut Vec<Vec<u8>>, p: PendingBundle) {
        if p.builder.count() == 1 {
            // Single datagram: forward the original packet untouched.
            if let Some(orig) = p.first_pkt {
                self.stats.passthrough += 1;
                self.stats.out_sizes.record(orig.len());
                out.push(orig);
                return;
            }
        }
        let bundle = p.builder.finish();
        let dgram = UdpRepr {
            src_port: p.src_port,
            dst_port: p.dst_port,
        }
        .build_datagram(p.src, p.dst, &bundle)
        .expect("bundle within UDP limits");
        let mut ip = Ipv4Repr::new(p.src, p.dst, IpProtocol::Udp, dgram.len());
        ip.tos = CARAVAN_TOS;
        ip.ident = self.out_ident;
        self.out_ident = self.out_ident.wrapping_add(1);
        let pkt = ip.build_packet(&dgram).expect("within IP limits");
        self.stats.caravans_out += 1;
        self.stats.out_sizes.record(pkt.len());
        out.push(pkt);
    }

    /// Processes one packet entering the b-network. Returns packets to
    /// forward (possibly empty while a bundle is being held).
    pub fn push_inbound(&mut self, now: u64, pkt: Vec<u8>) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.stats.pkts_in += 1;

        let parsed = (|| {
            let ip = Ipv4Packet::new_checked(&pkt[..]).ok()?;
            if ip.protocol() != IpProtocol::Udp || ip.is_fragment() || ip.tos() == CARAVAN_TOS {
                return None;
            }
            let udp = UdpDatagram::new_checked(ip.payload()).ok()?;
            if udp.dst_port() == self.cfg.probe_port {
                return None; // F-PMTUD probes pass through untouched
            }
            Some((
                FlowKey::udp(ip.src(), udp.src_port(), ip.dst(), udp.dst_port()),
                ip.ident(),
                ip.src(),
                ip.dst(),
                udp.src_port(),
                udp.dst_port(),
                ip.payload()[..udp.length()].to_vec(),
            ))
        })();
        let Some((key, ip_id, src, dst, sport, dport, dgram)) = parsed else {
            self.stats.passthrough += 1;
            self.stats.out_sizes.record(pkt.len());
            out.push(pkt);
            return out;
        };

        if dgram.len() > self.bundle_budget() {
            // Too large to bundle with anything.
            self.stats.passthrough += 1;
            self.stats.out_sizes.record(pkt.len());
            out.push(pkt);
            return out;
        }

        if let Some(p) = self.table.get_mut(&key) {
            let id_ok = !self.cfg.require_consecutive_ip_id || ip_id == p.next_ip_id;
            if id_ok && p.builder.fits(&dgram) {
                p.builder.push(&dgram).expect("checked fits");
                p.next_ip_id = ip_id.wrapping_add(1);
                p.first_pkt = None;
                self.stats.bundled += 1;
                // Emit when no further eMTU-sized datagram can fit.
                if p.builder.len() + dgram.len() > self.bundle_budget() {
                    let p = self.table.remove(&key).expect("present");
                    self.emit_pending(&mut out, p);
                }
                return out;
            }
            // Can't extend: flush and start fresh below.
            let p = self.table.remove(&key).expect("present");
            self.emit_pending(&mut out, p);
        }

        let mut builder = CaravanBuilder::new(self.bundle_budget());
        builder.push(&dgram).expect("fits empty bundle");
        self.stats.bundled += 1;
        let pending = PendingBundle {
            builder,
            src,
            dst,
            src_port: sport,
            dst_port: dport,
            deadline: now + self.cfg.hold_ns,
            next_ip_id: ip_id.wrapping_add(1),
            first_pkt: Some(pkt),
        };
        if let Some((_, victim)) = self.table.insert(key, pending) {
            self.emit_pending(&mut out, victim);
        }
        out
    }

    /// Processes one packet leaving the b-network: caravans are restored
    /// to their original datagrams; everything else passes through.
    pub fn push_outbound(&mut self, pkt: Vec<u8>) -> Vec<Vec<u8>> {
        let parsed = (|| {
            let ip = Ipv4Packet::new_checked(&pkt[..]).ok()?;
            if ip.protocol() != IpProtocol::Udp || ip.tos() != CARAVAN_TOS || ip.is_fragment() {
                return None;
            }
            let udp = UdpDatagram::new_checked(ip.payload()).ok()?;
            Some((ip.src(), ip.dst(), udp.payload().to_vec()))
        })();
        let Some((src, dst, bundle)) = parsed else {
            return vec![pkt];
        };
        let Ok(inner) = split_bundle(&bundle) else {
            // Corrupt bundle: drop rather than forward garbage.
            return vec![];
        };
        self.stats.unbundled += 1;
        let mut out = Vec::with_capacity(inner.len());
        for dg in inner {
            let mut ip = Ipv4Repr::new(src, dst, IpProtocol::Udp, dg.len());
            ip.ident = self.out_ident;
            self.out_ident = self.out_ident.wrapping_add(1);
            if let Ok(p) = ip.build_packet(dg) {
                self.stats.inner_out += 1;
                out.push(p);
            }
        }
        out
    }

    /// Emits every bundle whose hold timer expired.
    pub fn poll(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let expired = self.table.take_matching(|_, p| p.deadline <= now);
        for (_, p) in expired {
            self.emit_pending(&mut out, p);
        }
        out
    }

    /// The earliest pending deadline, if any.
    pub fn next_deadline(&mut self) -> Option<u64> {
        self.table.iter_mut().map(|(_, p)| p.deadline).min()
    }

    /// Drains everything.
    pub fn flush_all(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for (_, p) in self.table.drain() {
            self.emit_pending(&mut out, p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 9);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 3);

    fn udp_pkt(sport: u16, payload_len: usize, ip_id: u16) -> Vec<u8> {
        let dg = UdpRepr {
            src_port: sport,
            dst_port: 4433,
        }
        .build_datagram(SRC, DST, &vec![0xCD; payload_len])
        .unwrap();
        let mut ip = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, dg.len());
        ip.ident = ip_id;
        ip.build_packet(&dg).unwrap()
    }

    #[test]
    fn bundles_consecutive_datagrams_into_one_caravan() {
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        let mut out = Vec::new();
        for i in 0..7u16 {
            out.extend(eng.push_inbound(0, udp_pkt(5000, 1172, i)));
        }
        assert_eq!(out.len(), 1, "7×1200B datagrams fill one 9000B caravan");
        let caravan = &out[0];
        assert!(caravan.len() <= 9000);
        let ip = Ipv4Packet::new_checked(&caravan[..]).unwrap();
        assert_eq!(ip.tos(), CARAVAN_TOS);
        assert!(ip.verify_checksum());
        // Round-trip: unbundling restores 7 datagrams.
        let restored = eng.push_outbound(caravan.clone());
        assert_eq!(restored.len(), 7);
        for p in &restored {
            let ip = Ipv4Packet::new_checked(&p[..]).unwrap();
            assert_eq!(ip.tos(), 0);
            let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
            assert_eq!(udp.payload().len(), 1172);
            assert!(udp.verify_checksum(ip.src(), ip.dst()));
        }
    }

    #[test]
    fn hold_timer_flushes_partial_bundles() {
        let cfg = CaravanConfig {
            hold_ns: 1000,
            ..Default::default()
        };
        let mut eng = CaravanEngine::new(cfg);
        assert!(eng.push_inbound(0, udp_pkt(5000, 500, 0)).is_empty());
        assert!(eng.push_inbound(10, udp_pkt(5000, 500, 1)).is_empty());
        assert!(eng.poll(999).is_empty());
        let out = eng.poll(1001);
        assert_eq!(out.len(), 1);
        let ip = Ipv4Packet::new_checked(&out[0][..]).unwrap();
        assert_eq!(ip.tos(), CARAVAN_TOS);
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert_eq!(split_bundle(udp.payload()).unwrap().len(), 2);
    }

    #[test]
    fn singleton_flush_passes_original_packet() {
        let cfg = CaravanConfig {
            hold_ns: 100,
            ..Default::default()
        };
        let mut eng = CaravanEngine::new(cfg);
        let orig = udp_pkt(5000, 500, 0);
        assert!(eng.push_inbound(0, orig.clone()).is_empty());
        let out = eng.poll(u64::MAX);
        assert_eq!(out, vec![orig], "no pointless tunnelling of singletons");
    }

    #[test]
    fn nonconsecutive_ip_id_breaks_bundle_in_compat_mode() {
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        eng.push_inbound(0, udp_pkt(5000, 500, 0));
        // Jump in IP ID: previous bundle flushed (as original packet).
        let out = eng.push_inbound(1, udp_pkt(5000, 500, 7));
        assert_eq!(out.len(), 1);
        assert_eq!(eng.stats.passthrough, 1);
        // Without compat mode, the same pattern keeps bundling.
        let mut eng2 = CaravanEngine::new(CaravanConfig {
            require_consecutive_ip_id: false,
            ..Default::default()
        });
        eng2.push_inbound(0, udp_pkt(5000, 500, 0));
        assert!(eng2.push_inbound(1, udp_pkt(5000, 500, 7)).is_empty());
    }

    #[test]
    fn probe_port_bypasses_bundling() {
        let cfg = CaravanConfig::default();
        let mut eng = CaravanEngine::new(cfg);
        let dg = UdpRepr {
            src_port: 9,
            dst_port: cfg.probe_port,
        }
        .build_datagram(SRC, DST, &[0u8; 100])
        .unwrap();
        let pkt = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap();
        let out = eng.push_inbound(0, pkt.clone());
        assert_eq!(out, vec![pkt], "probes forwarded unmerged");
    }

    #[test]
    fn flows_do_not_mix() {
        let mut eng = CaravanEngine::new(CaravanConfig {
            require_consecutive_ip_id: false,
            ..Default::default()
        });
        for i in 0..3 {
            eng.push_inbound(0, udp_pkt(5000, 500, i));
            eng.push_inbound(0, udp_pkt(6000, 500, i));
        }
        let out = eng.flush_all();
        assert_eq!(out.len(), 2);
        for p in &out {
            let ip = Ipv4Packet::new_checked(&p[..]).unwrap();
            let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
            assert!(px_wire::caravan::bundle_is_single_flow(udp.payload()).unwrap());
        }
    }

    #[test]
    fn oversize_datagram_passes_through() {
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        let big = udp_pkt(5000, 8980, 0); // > bundle budget
        let out = eng.push_inbound(0, big.clone());
        assert_eq!(out, vec![big]);
    }

    #[test]
    fn outbound_noncaravan_passes_through() {
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        let plain = udp_pkt(5000, 500, 0);
        assert_eq!(eng.push_outbound(plain.clone()), vec![plain]);
    }
}
