//! The multi-core PXGW datapath model — the machinery behind Fig. 5a/5b.
//!
//! A pipeline run combines three *real* components with two *modelled*
//! ones:
//!
//! real —
//! 1. a synthetic-but-byte-accurate packet trace (real TCP/UDP packets,
//!    per-flow sequence continuity, bursty run-length arrivals, as the
//!    800-flow iPerf workload of §5 produces after the ToR),
//! 2. RSS sharding of that trace across cores (real Toeplitz hashing, the
//!    symmetric key PXGW programs),
//! 3. the actual merge/caravan/baseline engines per core (conversion
//!    yield is *measured*, not assumed);
//!
//! modelled —
//! 4. per-core CPU cycles priced by [`px_sim::calib`],
//! 5. the shared memory bus ([`px_sim::calib::MEMBUS_BYTES_PER_SEC`]),
//!    which header-only DMA bypasses for payload bytes.
//!
//! Throughput = min(aggregate CPU rate, bus rate). Without header-only
//! DMA the 8-core PX configuration is bus-bound (the paper's 1.09 Tbps);
//! with it, CPU-bound (1.45 Tbps).

use crate::engine::CoreEngine;
use crate::flowtable::FlowTableConfig;
use crate::steer::SteerConfig;
use px_sim::calib;
use px_wire::ipv4::Ipv4Repr;
use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr};
use px_wire::{FlowKey, IpProtocol, RssHasher, UdpRepr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Which gateway implementation a pipeline run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemVariant {
    /// DPDK-GRO software merging, no NIC offloads (the paper's baseline).
    BaselineGro,
    /// PXGW with LRO/TSO/RSS and delayed merging.
    Px,
    /// PXGW plus header-only DMA into NIC memory.
    PxHeaderOnly,
}

/// Which §5 workload the trace reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// 800 bidirectional iPerf TCP flows (Fig. 5a).
    Tcp,
    /// 800 bidirectional iPerf UDP flows (Fig. 5b).
    Udp,
}

/// Pipeline run configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Gateway cores.
    pub cores: usize,
    /// System under test.
    pub variant: SystemVariant,
    /// Workload type.
    pub workload: WorkloadKind,
    /// b-network iMTU.
    pub imtu: usize,
    /// External MTU.
    pub emtu: usize,
    /// Concurrent flows.
    pub n_flows: usize,
    /// Mean contiguous run length (packets of one flow arriving
    /// back-to-back — the residue of sender-side TSO bursts after ToR
    /// multiplexing; §5's senders emit 64 KB bursts).
    pub mean_run: usize,
    /// Total input packets to trace.
    pub trace_pkts: usize,
    /// Offered load in packets/sec (drives inter-arrival timestamps and
    /// therefore how often delayed merges time out).
    pub offered_pps: f64,
    /// Delayed-merging hold (ns).
    pub hold_ns: u64,
    /// RNG seed.
    pub seed: u64,
    /// Small-flow steering (§3/§4.1). `None` — the Fig. 5 default —
    /// disables the classifier entirely: every flow takes the merge
    /// path, the historical (digest-pinned) behaviour.
    pub steer: Option<SteerConfig>,
    /// Per-core flow-table sizing override (entry ceiling + optional
    /// byte budget). `None` keeps the Fig. 5 default: 64 K entries,
    /// no budget.
    pub flow_table: Option<FlowTableConfig>,
    /// Parked-buffer cap for each core's output pool. 256 is the
    /// historical default; flow-scale runs raise it toward their
    /// concurrent-aggregate ceiling so recycling keeps the steady
    /// state allocation-free.
    pub pool_bufs: usize,
}

impl PipelineConfig {
    /// The paper's Fig. 5a setup for a given variant/core count.
    pub fn fig5(variant: SystemVariant, workload: WorkloadKind, cores: usize) -> Self {
        PipelineConfig {
            cores,
            variant,
            workload,
            imtu: px_wire::JUMBO_MTU,
            emtu: px_wire::LEGACY_MTU,
            n_flows: 800,
            mean_run: 24,
            trace_pkts: 120_000,
            // 800 flows × 2 Gbps at 1500 B ≈ 133 Mpps offered.
            offered_pps: 133e6,
            // Delayed merging must be comparable to the per-flow
            // inter-burst gap (≈145 µs at this load) for burst tails to
            // merge into the next burst instead of flushing as runts —
            // this is what buys PX its ≈93% conversion yield over the
            // baseline's ≈76% (sweep: 50 µs → 87%, 130 µs → 94%,
            // 250 µs → 98%).
            hold_ns: 130_000,
            seed: 0x000F_165A + cores as u64,
            steer: None,
            flow_table: None,
            pool_bufs: 256,
        }
    }
}

/// The outcome of a pipeline run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineReport {
    /// End-to-end forwarding throughput (bits/sec).
    pub throughput_bps: f64,
    /// What the CPU alone could sustain.
    pub cpu_bound_bps: f64,
    /// What the memory bus alone could sustain.
    pub membus_bound_bps: f64,
    /// Measured conversion yield (fraction of output packets that are
    /// iMTU-sized).
    pub conversion_yield: f64,
    /// Input packets traced.
    pub pkts_in: u64,
    /// Output packets after merging.
    pub pkts_out: u64,
}

/// One synthetic flow's packet-generation state.
struct FlowGen {
    key: FlowKey,
    next_seq: u32,
    next_ip_id: u16,
}

/// Generates the bursty, byte-accurate input trace: each step picks a
/// flow and emits a geometric-length run of contiguous eMTU packets.
pub struct TraceGen {
    flows: Vec<FlowGen>,
    rng: SmallRng,
    workload: WorkloadKind,
    emtu: usize,
    mean_run: usize,
}

impl TraceGen {
    /// Creates a trace generator over `n_flows` flows.
    pub fn new(
        workload: WorkloadKind,
        n_flows: usize,
        emtu: usize,
        mean_run: usize,
        seed: u64,
    ) -> Self {
        let flows = (0..n_flows)
            .map(|i| {
                let src = Ipv4Addr::new(198, 51, (i / 250) as u8, (i % 250) as u8 + 1);
                let dst = Ipv4Addr::new(10, 1, (i / 250) as u8, (i % 250) as u8 + 1);
                let sport = 33000 + (i % 16384) as u16;
                let key = match workload {
                    WorkloadKind::Tcp => FlowKey::tcp(src, sport, dst, 5201),
                    WorkloadKind::Udp => FlowKey::udp(src, sport, dst, 5201),
                };
                FlowGen {
                    key,
                    next_seq: (i as u32) * 1_000_003,
                    next_ip_id: i as u16,
                }
            })
            .collect();
        TraceGen {
            flows,
            rng: SmallRng::seed_from_u64(seed),
            workload,
            emtu,
            mean_run,
        }
    }

    // Workload generation, not datapath: payload sizes are computed from
    // the configured eMTU, so the builders cannot fail; a panic here is a
    // harness bug, not a gateway robustness issue.
    #[allow(clippy::expect_used)]
    fn build_pkt(&mut self, flow_idx: usize) -> Vec<u8> {
        let emtu = self.emtu;
        let f = &mut self.flows[flow_idx];
        match self.workload {
            WorkloadKind::Tcp => {
                let payload_len = emtu - 40;
                let mut payload = vec![0u8; payload_len];
                px_tcp::fill_pattern(u64::from(f.next_seq), &mut payload);
                let repr = TcpRepr {
                    src_port: f.key.src_port,
                    dst_port: f.key.dst_port,
                    seq: SeqNum(f.next_seq),
                    ack: SeqNum(1),
                    flags: TcpFlags::ACK,
                    window: 8192,
                    options: vec![],
                };
                let seg = repr.build_segment(f.key.src_ip, f.key.dst_ip, &payload);
                f.next_seq = f.next_seq.wrapping_add(payload_len as u32);
                let mut ip = Ipv4Repr::new(f.key.src_ip, f.key.dst_ip, IpProtocol::Tcp, seg.len());
                ip.ident = f.next_ip_id;
                f.next_ip_id = f.next_ip_id.wrapping_add(1);
                ip.build_packet(&seg).expect("fits")
            }
            WorkloadKind::Udp => {
                let payload_len = emtu - 28;
                let dg = UdpRepr {
                    src_port: f.key.src_port,
                    dst_port: f.key.dst_port,
                }
                .build_datagram(f.key.src_ip, f.key.dst_ip, &vec![0xEF; payload_len])
                .expect("fits");
                let mut ip = Ipv4Repr::new(f.key.src_ip, f.key.dst_ip, IpProtocol::Udp, dg.len());
                ip.ident = f.next_ip_id;
                f.next_ip_id = f.next_ip_id.wrapping_add(1);
                ip.build_packet(&dg).expect("fits")
            }
        }
    }

    /// Generates `total` packets as (flow_key, packet) pairs in arrival
    /// order.
    pub fn generate(&mut self, total: usize) -> Vec<(FlowKey, Vec<u8>)> {
        let mut out = Vec::with_capacity(total);
        while out.len() < total {
            let flow_idx = self.rng.gen_range(0..self.flows.len());
            // Geometric run length with the configured mean.
            let p = 1.0 / self.mean_run as f64;
            let mut run = 1;
            while self.rng.gen::<f64>() > p && run < 64 {
                run += 1;
            }
            for _ in 0..run {
                if out.len() >= total {
                    break;
                }
                let pkt = self.build_pkt(flow_idx);
                out.push((self.flows[flow_idx].key, pkt));
            }
        }
        out
    }
}

/// Runs the pipeline model and reports throughput + conversion yield.
pub fn run_pipeline(cfg: PipelineConfig) -> PipelineReport {
    assert!(cfg.cores > 0);
    let mut tracer = TraceGen::new(cfg.workload, cfg.n_flows, cfg.emtu, cfg.mean_run, cfg.seed);
    let trace = tracer.generate(cfg.trace_pkts);
    let rss = RssHasher::symmetric();

    // Per-core engines — the same construction the threaded engine uses.
    let mut engines: Vec<CoreEngine> = (0..cfg.cores).map(|_| CoreEngine::for_pipe(&cfg)).collect();

    let mut core_cycles = vec![0.0f64; cfg.cores];
    let mut core_bytes = vec![0u64; cfg.cores];
    let mut pkts_out = 0u64;
    let mut jumbo_out = 0u64;
    let inter_arrival_ns = 1e9 / cfg.offered_pps;
    let jumbo_at = cfg.imtu - (cfg.emtu - 40) + 1;

    let account = |core_cycles: &mut Vec<f64>,
                   core: usize,
                   unit: &[u8],
                   pkts_out: &mut u64,
                   jumbo_out: &mut u64,
                   count_yield: bool| {
        let len = unit.len();
        let segs = (len.saturating_sub(40)).div_ceil(cfg.emtu - 40).max(1);
        let cycles = match (cfg.variant, cfg.workload) {
            (SystemVariant::BaselineGro, _) => {
                // Baseline prices per input wire packet (done below);
                // output accounting is free.
                0.0
            }
            (_, WorkloadKind::Tcp) => calib::px_tcp_unit_cycles(len, segs),
            (_, WorkloadKind::Udp) => calib::px_udp_unit_cycles(len, segs),
        };
        core_cycles[core] += cycles;
        if count_yield {
            *pkts_out += 1;
            if len >= jumbo_at {
                *jumbo_out += 1;
            }
        }
    };

    for (i, (key, pkt)) in trace.into_iter().enumerate() {
        let core = rss.queue_for(&key, cfg.cores);
        let now = (i as f64 * inter_arrival_ns) as u64;
        if cfg.variant == SystemVariant::BaselineGro {
            // Software GRO cost is per *input* packet.
            core_cycles[core] += calib::baseline_gro_pkt_cycles(pkt.len());
        }
        core_bytes[core] += pkt.len() as u64;
        for unit in engines[core].push(now, pkt) {
            account(
                &mut core_cycles,
                core,
                &unit,
                &mut pkts_out,
                &mut jumbo_out,
                true,
            );
        }
    }
    // The final drain is a finite-trace artifact: its cycles count, but
    // its (necessarily partial) aggregates are excluded from the
    // steady-state conversion yield.
    for (core, eng) in engines.iter_mut().enumerate() {
        for unit in eng.finish() {
            account(
                &mut core_cycles,
                core,
                &unit,
                &mut pkts_out,
                &mut jumbo_out,
                false,
            );
        }
    }

    // CPU-bound throughput: each core forwards its bytes in the time its
    // cycles take; the aggregate is the sum of per-core rates.
    let cpu_bound_bps: f64 = core_bytes
        .iter()
        .zip(&core_cycles)
        .map(|(&b, &c)| {
            if c <= 0.0 {
                0.0
            } else {
                b as f64 * 8.0 * calib::FREQ_HZ / c
            }
        })
        .sum();

    // Memory-bus bound: payload crossings depend on the variant.
    let crossings = match (cfg.variant, cfg.workload) {
        (SystemVariant::PxHeaderOnly, _) => calib::BUS_CROSSINGS_HDR_ONLY,
        (SystemVariant::Px, WorkloadKind::Udp) => calib::BUS_CROSSINGS_UDP,
        (SystemVariant::Px, WorkloadKind::Tcp) => calib::BUS_CROSSINGS_DEFAULT,
        (SystemVariant::BaselineGro, _) => calib::BUS_CROSSINGS_UDP, // +1 copy
    };
    let membus_bound_bps = calib::MEMBUS_BYTES_PER_SEC / crossings * 8.0;

    let pkts_in: u64 = cfg.trace_pkts as u64;
    PipelineReport {
        throughput_bps: cpu_bound_bps.min(membus_bound_bps),
        cpu_bound_bps,
        membus_bound_bps,
        conversion_yield: if pkts_out == 0 {
            0.0
        } else {
            jumbo_out as f64 / pkts_out as f64
        },
        pkts_in,
        pkts_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(variant: SystemVariant, cores: usize) -> PipelineReport {
        let mut cfg = PipelineConfig::fig5(variant, WorkloadKind::Tcp, cores);
        cfg.trace_pkts = 30_000;
        cfg.n_flows = 200;
        run_pipeline(cfg)
    }

    #[test]
    fn px_beats_baseline_substantially() {
        let base = quick(SystemVariant::BaselineGro, 8);
        let px = quick(SystemVariant::Px, 8);
        assert!(
            px.throughput_bps > 4.0 * base.throughput_bps,
            "px {:.2e} vs base {:.2e}",
            px.throughput_bps,
            base.throughput_bps
        );
    }

    #[test]
    fn header_only_dma_lifts_the_bus_cap() {
        let px = quick(SystemVariant::Px, 8);
        let hdr = quick(SystemVariant::PxHeaderOnly, 8);
        assert!(px.throughput_bps <= px.membus_bound_bps + 1.0);
        assert!(
            hdr.throughput_bps > px.throughput_bps,
            "hdr {:.3e} vs px {:.3e}",
            hdr.throughput_bps,
            px.throughput_bps
        );
        // At 8 cores PX is bus-bound, PX+hdr CPU-bound.
        assert!(px.cpu_bound_bps > px.membus_bound_bps);
        assert!(hdr.membus_bound_bps > hdr.cpu_bound_bps);
    }

    #[test]
    fn scaling_with_cores_is_roughly_linear_until_the_bus() {
        let t1 = quick(SystemVariant::PxHeaderOnly, 1).throughput_bps;
        let t4 = quick(SystemVariant::PxHeaderOnly, 4).throughput_bps;
        let ratio = t4 / t1;
        assert!(ratio > 3.0 && ratio < 5.0, "4-core scaling ratio {ratio}");
    }

    #[test]
    fn px_yield_exceeds_baseline_yield() {
        let base = quick(SystemVariant::BaselineGro, 4);
        let px = quick(SystemVariant::Px, 4);
        assert!(
            px.conversion_yield > base.conversion_yield,
            "px {} vs base {}",
            px.conversion_yield,
            base.conversion_yield
        );
        assert!(
            px.conversion_yield > 0.8,
            "px yield {}",
            px.conversion_yield
        );
    }

    #[test]
    fn udp_caravan_peak_is_lower_than_tcp() {
        let mut tcp_cfg = PipelineConfig::fig5(SystemVariant::PxHeaderOnly, WorkloadKind::Tcp, 8);
        tcp_cfg.trace_pkts = 30_000;
        let mut udp_cfg = PipelineConfig::fig5(SystemVariant::PxHeaderOnly, WorkloadKind::Udp, 8);
        udp_cfg.trace_pkts = 30_000;
        let tcp = run_pipeline(tcp_cfg);
        let udp = run_pipeline(udp_cfg);
        assert!(
            udp.throughput_bps < tcp.throughput_bps,
            "udp {:.3e} tcp {:.3e}",
            udp.throughput_bps,
            tcp.throughput_bps
        );
        // "the conversion yield remains comparable to TCP"
        assert!(
            udp.conversion_yield > 0.75,
            "udp yield {}",
            udp.conversion_yield
        );
    }

    #[test]
    fn trace_is_byte_accurate() {
        let mut t = TraceGen::new(WorkloadKind::Tcp, 10, 1500, 8, 1);
        for (key, pkt) in t.generate(100) {
            let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
            assert!(ip.verify_checksum());
            assert_eq!(px_sim::nic::flow_key_of(&pkt).unwrap(), key);
            assert_eq!(pkt.len(), 1500);
        }
    }
}
