//! The PXGW TCP merge engine: eMTU → iMTU coalescing with *delayed
//! merging*.
//!
//! The engine keeps at most one pending aggregate per flow. Incoming data
//! segments coalesce onto it when they are exactly contiguous
//! ([`px_sim::nic::try_coalesce`] — the LRO conditions). A pending
//! aggregate is emitted when:
//!
//! * it is full: no further eMTU-sized segment fits under the iMTU;
//! * a non-mergeable packet of the same flow arrives (control flags,
//!   pure ACK, out-of-order data) — emitted *first* to preserve per-flow
//!   ordering;
//! * its **hold timer** expires (delayed merging, §4.1: "delayed packet
//!   merging to maximize the number of iMTU-bound packets"): instead of
//!   flushing at every RX batch boundary like the DPDK-GRO baseline, PXGW
//!   holds a partial aggregate for a few tens of microseconds so the next
//!   burst of the same flow can top it up — this is what lifts conversion
//!   yield from the baseline's ~76% to PX's ~93% (Fig. 5a);
//! * its flow is evicted from the bounded flow table.

use crate::flowtable::FlowTable;
use px_sim::nic::{flow_key_of, try_coalesce};
use px_sim::stats::SizeHistogram;
use px_wire::ipv4::Ipv4Packet;
use px_wire::tcp::TcpSegment;
use px_wire::IpProtocol;

/// Merge-engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct MergeConfig {
    /// Internal MTU: the output packet size cap.
    pub imtu: usize,
    /// External MTU: used to decide when an aggregate is "full" (no room
    /// for one more eMTU segment).
    pub emtu: usize,
    /// Delayed-merging hold time in nanoseconds (0 disables holding —
    /// the ablation case).
    pub hold_ns: u64,
    /// Flow-table capacity.
    pub table_capacity: usize,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            imtu: px_wire::JUMBO_MTU,
            emtu: px_wire::LEGACY_MTU,
            hold_ns: 50_000, // 50 µs
            table_capacity: 65536,
        }
    }
}

/// Counters and the output size distribution.
#[derive(Debug, Default, Clone)]
pub struct MergeStats {
    /// Input packets seen.
    pub pkts_in: u64,
    /// Input data segments that participated in merging.
    pub data_segs_in: u64,
    /// Output packet size distribution (conversion yield comes from here).
    pub out_sizes: SizeHistogram,
    /// Aggregates emitted because they were full.
    pub flush_full: u64,
    /// Aggregates emitted by the hold timer.
    pub flush_timeout: u64,
    /// Aggregates emitted because a non-mergeable packet followed.
    pub flush_order: u64,
    /// Aggregates emitted by flow-table eviction.
    pub flush_evict: u64,
    /// Packets passed through untouched (non-TCP, control, pure ACK).
    pub passthrough: u64,
    /// Data segments refused because their checksums did not verify —
    /// merging them would *launder* the corruption behind a freshly
    /// computed checksum (real LRO verifies before coalescing too).
    pub bad_checksum: u64,
}

impl MergeStats {
    /// The paper's conversion yield: fraction of emitted packets that are
    /// iMTU-sized. An aggregate counts as iMTU-sized when no further
    /// eMTU segment would have fit (≥ imtu − (emtu − 40)).
    pub fn conversion_yield(&self, cfg: &MergeConfig) -> f64 {
        self.out_sizes
            .fraction_at_least(cfg.imtu - (cfg.emtu - 40) + 1)
    }
}

#[derive(Debug)]
struct Pending {
    pkt: Vec<u8>,
    deadline: u64,
    segs: usize,
}

/// The merge engine. Feed packets with [`MergeEngine::push`], poll hold
/// timers with [`MergeEngine::poll`], and drain at shutdown with
/// [`MergeEngine::flush_all`].
#[derive(Debug)]
pub struct MergeEngine {
    /// Configuration.
    pub cfg: MergeConfig,
    table: FlowTable<Pending>,
    /// Counters.
    pub stats: MergeStats,
}

impl MergeEngine {
    /// Creates a merge engine.
    pub fn new(cfg: MergeConfig) -> Self {
        MergeEngine {
            cfg,
            table: FlowTable::new(cfg.table_capacity),
            stats: MergeStats::default(),
        }
    }

    /// Flow-table lookups performed so far (cost accounting).
    pub fn lookups(&self) -> u64 {
        self.table.lookups
    }

    fn full_threshold(&self) -> usize {
        self.cfg.imtu.saturating_sub(self.cfg.emtu - 40) + 1
    }

    fn emit(&mut self, out: &mut Vec<Vec<u8>>, pkt: Vec<u8>) {
        self.stats.out_sizes.record(pkt.len());
        out.push(pkt);
    }

    /// Whether a packet is a mergeable TCP data segment (plain ACK/PSH
    /// flags, non-empty payload, not a fragment, checksums verified).
    ///
    /// Checksum verification is load-bearing: merging recomputes the
    /// checksum over the concatenated payload, so coalescing a corrupted
    /// segment would hide the corruption from the receiver forever. Real
    /// NIC LRO engines verify for exactly this reason. Returns
    /// `(mergeable, checksum_ok)`.
    fn mergeable(pkt: &[u8]) -> (bool, bool) {
        let Ok(ip) = Ipv4Packet::new_checked(pkt) else {
            return (false, true);
        };
        if ip.protocol() != IpProtocol::Tcp || ip.is_fragment() {
            return (false, true);
        }
        let Ok(tcp) = TcpSegment::new_checked(ip.payload()) else {
            return (false, true);
        };
        let f = tcp.flags();
        let shape_ok = f.ack && !f.syn && !f.fin && !f.rst && !f.urg && !tcp.payload().is_empty();
        if !shape_ok {
            return (false, true);
        }
        if !ip.verify_checksum() || !tcp.verify_checksum(ip.src(), ip.dst()) {
            return (false, false);
        }
        (true, true)
    }

    /// Processes one packet arriving from the eMTU side. Returns packets
    /// ready to forward into the b-network (possibly empty while an
    /// aggregate is being held).
    pub fn push(&mut self, now: u64, pkt: Vec<u8>) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.stats.pkts_in += 1;

        let Ok(key) = flow_key_of(&pkt) else {
            self.stats.passthrough += 1;
            out.push(pkt);
            return out;
        };

        let (is_mergeable, checksum_ok) = Self::mergeable(&pkt);
        if !is_mergeable {
            // Control/pure-ACK/non-TCP/corrupt: flush any pending
            // aggregate first to preserve per-flow ordering, then pass
            // through — a corrupted segment keeps its broken checksum so
            // the receiver discards it and TCP retransmits.
            if !checksum_ok {
                self.stats.bad_checksum += 1;
            }
            if let Some(p) = self.table.remove(&key) {
                self.stats.flush_order += 1;
                self.emit(&mut out, p.pkt);
            }
            self.stats.passthrough += 1;
            out.push(pkt);
            return out;
        }

        self.stats.data_segs_in += 1;
        let full_at = self.full_threshold();

        if let Some(pending) = self.table.get_mut(&key) {
            if let Some(merged) = try_coalesce(&pending.pkt, &pkt, self.cfg.imtu) {
                let full = merged.len() >= full_at;
                if full {
                    let segs = pending.segs + 1;
                    let _ = segs;
                    self.table.remove(&key);
                    self.stats.flush_full += 1;
                    self.emit(&mut out, merged);
                } else {
                    pending.pkt = merged;
                    pending.segs += 1;
                }
                return out;
            }
            // Not contiguous (reorder/retransmit): flush, start anew.
            let p = self.table.remove(&key).expect("pending present");
            self.stats.flush_order += 1;
            self.emit(&mut out, p.pkt);
        }

        if pkt.len() >= full_at {
            // Already iMTU-sized (e.g. traffic from another b-network).
            self.stats.flush_full += 1;
            self.emit(&mut out, pkt);
            return out;
        }
        if self.cfg.hold_ns == 0 {
            // Delayed merging disabled: emit immediately (ablation).
            self.emit(&mut out, pkt);
            return out;
        }
        let evicted = self.table.insert(
            key,
            Pending {
                pkt,
                deadline: now + self.cfg.hold_ns,
                segs: 1,
            },
        );
        if let Some((_, p)) = evicted {
            self.stats.flush_evict += 1;
            self.emit(&mut out, p.pkt);
        }
        out
    }

    /// Emits every aggregate whose hold timer has expired.
    pub fn poll(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for (_, p) in self.table.take_matching(|_, p| p.deadline <= now) {
            self.stats.flush_timeout += 1;
            self.emit(&mut out, p.pkt);
        }
        out
    }

    /// The earliest pending hold deadline, if any (lets a gateway arm a
    /// precise timer instead of polling blindly).
    pub fn next_deadline(&mut self) -> Option<u64> {
        self.table.iter_mut().map(|(_, p)| p.deadline).min()
    }

    /// Drains everything (shutdown).
    pub fn flush_all(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for (_, p) in self.table.drain() {
            self.stats.flush_timeout += 1;
            self.emit(&mut out, p.pkt);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_wire::ipv4::Ipv4Repr;
    use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr};
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);

    fn data_pkt(port: u16, seq: u32, len: usize) -> Vec<u8> {
        let mut payload = vec![0u8; len];
        px_tcp::fill_pattern(u64::from(seq), &mut payload);
        let mut flags = TcpFlags::ACK;
        flags.psh = false;
        let repr = TcpRepr {
            src_port: port,
            dst_port: 80,
            seq: SeqNum(seq),
            ack: SeqNum(1),
            flags,
            window: 5000,
            options: vec![],
        };
        let seg = repr.build_segment(SRC, DST, &payload);
        Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
            .build_packet(&seg)
            .unwrap()
    }

    fn ack_pkt(port: u16, seq: u32) -> Vec<u8> {
        let repr = TcpRepr {
            src_port: port,
            dst_port: 80,
            seq: SeqNum(seq),
            ack: SeqNum(1),
            flags: TcpFlags::ACK,
            window: 5000,
            options: vec![],
        };
        let seg = repr.build_segment(SRC, DST, b"");
        Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
            .build_packet(&seg)
            .unwrap()
    }

    fn total_payload(pkts: &[Vec<u8>]) -> usize {
        pkts.iter()
            .map(|p| {
                let ip = Ipv4Packet::new_checked(&p[..]).unwrap();
                let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
                tcp.payload().len()
            })
            .sum()
    }

    #[test]
    fn six_segments_become_one_jumbo() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        let mut out = Vec::new();
        let seg_payload = 1460;
        for i in 0..6u32 {
            out.extend(eng.push(0, data_pkt(5000, i * seg_payload, seg_payload as usize)));
        }
        assert_eq!(
            out.len(),
            1,
            "one full aggregate (6×1460+40 = 8800 ≥ threshold)"
        );
        assert_eq!(out[0].len(), 40 + 6 * 1460);
        assert_eq!(total_payload(&out), 6 * 1460);
        // The merged packet has valid checksums and the pattern intact.
        let ip = Ipv4Packet::new_checked(&out[0][..]).unwrap();
        assert!(ip.verify_checksum());
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum(ip.src(), ip.dst()));
        assert_eq!(px_tcp::verify_pattern(0, tcp.payload()), None);
        assert_eq!(eng.stats.flush_full, 1);
    }

    #[test]
    fn hold_timer_flushes_partial_aggregates() {
        let mut eng = MergeEngine::new(MergeConfig {
            hold_ns: 1000,
            ..Default::default()
        });
        let mut out = eng.push(0, data_pkt(5000, 0, 1000));
        out.extend(eng.push(10, data_pkt(5000, 1000, 1000)));
        assert!(out.is_empty(), "held");
        assert!(eng.poll(999).is_empty(), "not yet due");
        let flushed = eng.poll(1001);
        assert_eq!(flushed.len(), 1);
        assert_eq!(total_payload(&flushed), 2000);
        assert_eq!(eng.stats.flush_timeout, 1);
    }

    #[test]
    fn control_packets_flush_and_preserve_order() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        let mut out = eng.push(0, data_pkt(5000, 0, 1000));
        assert!(out.is_empty());
        out.extend(eng.push(1, ack_pkt(5000, 1000)));
        assert_eq!(out.len(), 2, "aggregate flushed before the ACK");
        assert_eq!(total_payload(&out[..1]), 1000);
        assert_eq!(eng.stats.flush_order, 1);
        assert_eq!(eng.stats.passthrough, 1);
    }

    #[test]
    fn out_of_order_data_flushes() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        eng.push(0, data_pkt(5000, 0, 1000));
        // Gap: next segment is not contiguous.
        let out = eng.push(1, data_pkt(5000, 5000, 1000));
        assert_eq!(out.len(), 1, "old aggregate flushed");
        assert_eq!(eng.table.len(), 1, "new segment becomes pending");
    }

    #[test]
    fn flows_merge_independently() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        let mut out = Vec::new();
        for i in 0..6u32 {
            out.extend(eng.push(0, data_pkt(5000, i * 1460, 1460)));
            out.extend(eng.push(0, data_pkt(5001, i * 1460, 1460)));
        }
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|p| p.len() == 8800));
    }

    #[test]
    fn disabled_hold_emits_immediately() {
        let mut eng = MergeEngine::new(MergeConfig {
            hold_ns: 0,
            ..Default::default()
        });
        let out = eng.push(0, data_pkt(5000, 0, 1000));
        assert_eq!(out.len(), 1, "no delayed merging: passthrough");
    }

    #[test]
    fn eviction_flushes_victim() {
        let mut eng = MergeEngine::new(MergeConfig {
            table_capacity: 2,
            ..Default::default()
        });
        eng.push(0, data_pkt(5000, 0, 500));
        eng.push(0, data_pkt(5001, 0, 500));
        let out = eng.push(0, data_pkt(5002, 0, 500));
        assert_eq!(out.len(), 1, "LRU victim flushed");
        assert_eq!(eng.stats.flush_evict, 1);
    }

    #[test]
    fn conversion_yield_accounting() {
        let cfg = MergeConfig::default();
        let mut eng = MergeEngine::new(cfg);
        let mut out = Vec::new();
        // One full jumbo + one timed-out runt.
        for i in 0..6u32 {
            out.extend(eng.push(0, data_pkt(5000, i * 1460, 1460)));
        }
        eng.push(0, data_pkt(6000, 0, 1460));
        out.extend(eng.poll(u64::MAX));
        assert_eq!(out.len(), 2);
        let y = eng.stats.conversion_yield(&cfg);
        assert!(
            (y - 0.5).abs() < 1e-9,
            "1 of 2 output packets is jumbo: {y}"
        );
    }

    #[test]
    fn flush_all_drains() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        eng.push(0, data_pkt(5000, 0, 500));
        eng.push(0, data_pkt(5001, 0, 500));
        assert_eq!(eng.flush_all().len(), 2);
        assert_eq!(eng.table.len(), 0);
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut eng = MergeEngine::new(MergeConfig {
            hold_ns: 100,
            ..Default::default()
        });
        assert_eq!(eng.next_deadline(), None);
        eng.push(50, data_pkt(5000, 0, 500));
        eng.push(10, data_pkt(5001, 0, 500));
        assert_eq!(eng.next_deadline(), Some(110));
    }
}
