//! The PXGW TCP merge engine: eMTU → iMTU coalescing with *delayed
//! merging*.
//!
//! The engine keeps at most one pending aggregate per flow. Incoming data
//! segments coalesce onto it under the LRO header gates (same as
//! [`px_sim::nic::try_coalesce`]) with *ordered coalescing* placement
//! ([`crate::coalesce`]): exactly contiguous segments append in place,
//! mildly out-of-order segments park in a small fixed stash until their
//! gap fills, straddling retransmissions append their new tail, and
//! bit-identical duplicates drop silently. Overlaps whose bytes conflict
//! with what the aggregate already holds are *injection attempts* — typed,
//! counted drops (`dropped_inconsistent_overlap`, `dropped_overlap_evasion`);
//! the engine never emits a merged byte that was not consistently attested
//! by every segment claiming its range. A pending aggregate is emitted
//! when:
//!
//! * it is full: no further eMTU-sized segment fits under the iMTU;
//! * a non-mergeable packet of the same flow arrives (control flags,
//!   pure ACK, header-incompatible data) — emitted *first* to preserve
//!   per-flow ordering;
//! * its **hold timer** expires (delayed merging, §4.1: "delayed packet
//!   merging to maximize the number of iMTU-bound packets"): instead of
//!   flushing at every RX batch boundary like the DPDK-GRO baseline, PXGW
//!   holds a partial aggregate for a few tens of microseconds so the next
//!   burst of the same flow can top it up — this is what lifts conversion
//!   yield from the baseline's ~76% to PX's ~93% (Fig. 5a);
//! * its flow is evicted from the bounded flow table.
//!
//! ## Hot-path engineering
//!
//! The steady-state loop performs **zero heap allocations and zero
//! payload re-scans**:
//!
//! * Aggregates live in pooled [`PacketBuf`]s ([`BufPool`]); appending a
//!   contiguous segment is a single payload `memcpy` into the
//!   already-sized buffer, and emitted buffers are recycled through the
//!   [`PacketSink`] protocol.
//! * Each aggregate carries the running ones-complement partial sum of
//!   its payload. A segment's payload sum is captured for free during
//!   checksum *verification* (one scan), folded in with
//!   [`checksum::combine_at_offset`] on append, and the final TCP
//!   checksum at emission combines pseudo-header + header sum + cached
//!   payload sum — the merged payload is never read again.
//! * Hold-timer expiry pops the flow table's deadline heap
//!   ([`FlowTable::pop_expired`]) instead of scanning every pending
//!   aggregate per poll tick.
//!
//! The `Vec`-returning [`MergeEngine::push`]/[`MergeEngine::poll`] are
//! thin wrappers over the sink API for tests and non-hot callers.

use crate::coalesce::{self, OverlapVerdict, SegStash, StashedSeg};
use crate::flowtable::{FlowTable, FlowTableConfig};
use crate::steer::{FlowClass, FlowClassifier, SteerConfig};
use px_wire::FlowKey;
use px_faults::{cause, hash_bytes, FaultInjector, FaultSpec, PlannedFaults};
use px_obs::{flow_id, EventKind, ObsConfig, Recorder, SpanCat};
use px_sim::stats::SizeHistogram;
use px_wire::batchparse::{self, ParsedMeta, SegFacts, Verdict};
use px_wire::bytes;
use px_wire::checksum;
use px_wire::ipv4::Ipv4Packet;
use px_wire::pool::{BufPool, PacketSink, PoolStats, VecSink};
use px_wire::tcp::options_layout_compatible;
use px_wire::{IpProtocol, PacketBuf};

/// Merge-engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct MergeConfig {
    /// Internal MTU: the output packet size cap.
    pub imtu: usize,
    /// External MTU: used to decide when an aggregate is "full" (no room
    /// for one more eMTU segment).
    pub emtu: usize,
    /// Delayed-merging hold time in nanoseconds (0 disables holding —
    /// the ablation case).
    pub hold_ns: u64,
    /// Flow-table capacity.
    pub table_capacity: usize,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            imtu: px_wire::JUMBO_MTU,
            emtu: px_wire::LEGACY_MTU,
            hold_ns: 50_000, // 50 µs
            table_capacity: 65536,
        }
    }
}

/// Counters and the output size distribution.
#[derive(Debug, Default, Clone)]
pub struct MergeStats {
    /// Input packets seen.
    pub pkts_in: u64,
    /// Input data segments that participated in merging.
    pub data_segs_in: u64,
    /// Output packet size distribution (conversion yield comes from here).
    pub out_sizes: SizeHistogram,
    /// Aggregates emitted because they were full.
    pub flush_full: u64,
    /// Aggregates emitted by the hold timer.
    pub flush_timeout: u64,
    /// Aggregates emitted because a non-mergeable packet followed.
    pub flush_order: u64,
    /// Aggregates emitted by flow-table eviction.
    pub flush_evict: u64,
    /// Packets passed through untouched (non-TCP, control, pure ACK).
    pub passthrough: u64,
    /// Data segments refused because their checksums did not verify —
    /// merging them would *launder* the corruption behind a freshly
    /// computed checksum (real LRO verifies before coalescing too).
    pub bad_checksum: u64,
    /// Packets forwarded unmerged because an aggregate could not be
    /// created (pool dry or flow-table denial) — the degradation
    /// ladder's passthrough rung (DESIGN.md §12).
    pub degraded_pkts: u64,
    /// Aggregate creations refused because the buffer pool was
    /// exhausted (real [`BufPool::try_get`] failures plus injected
    /// pool-dry verdicts).
    pub pool_exhausted: u64,
    /// Degraded packets dropped outright because even the emergency
    /// spare buffer was unavailable — the ladder's last rung.
    pub backpressure_drops: u64,
    /// Packets the small-flow classifier hairpinned past the merge
    /// machinery (§3/§4.1 steering): forwarded verbatim, no flow-table
    /// slot, no pool buffer, no merge state touched.
    pub steered_mice_pkts: u64,
    /// Data segments dropped because they claimed a sequence range the
    /// flow's aggregate already holds *with different bytes* — an
    /// injection attempt (or corruption that survived checksums). The
    /// conflicting bytes are never merged and never forwarded.
    pub dropped_inconsistent_overlap: u64,
    /// Data segments dropped because they straddled the aggregate's
    /// lower edge: part of the claimed range can no longer be attested,
    /// the overlapping-fragment evasion pattern.
    pub dropped_overlap_evasion: u64,
    /// Bit-identical retransmissions of bytes already held, dropped
    /// silently (the receiver-side byte stream is unchanged).
    pub dropped_duplicate_segs: u64,
    /// Data segments entirely below the aggregate's base (old data),
    /// forwarded verbatim with their original end-to-end checksums.
    pub below_window_forwarded: u64,
    /// Out-of-order segments parked in the reorder stash.
    pub stashed_segs: u64,
    /// Stashed segments that coalesced onto their aggregate once the
    /// gap filled — reordering the old engine would have flushed on.
    pub stash_appends: u64,
    /// Stashed segments forwarded verbatim when their flow's aggregate
    /// was finalized with the gap still open.
    pub stash_leftovers: u64,
    /// Out-of-order segments that could not be parked (stash or pool
    /// full) and fell back to the historical flush-and-restart path.
    pub stash_fallback_flushes: u64,
}

impl MergeStats {
    /// The paper's conversion yield: fraction of emitted packets that are
    /// iMTU-sized. An aggregate counts as iMTU-sized when no further
    /// eMTU segment would have fit (≥ imtu − (emtu − 40)).
    pub fn conversion_yield(&self, cfg: &MergeConfig) -> f64 {
        self.out_sizes
            .fraction_at_least(cfg.imtu - (cfg.emtu - 40) + 1)
    }
}

/// A per-flow pending aggregate: the packet bytes plus the cached facts
/// the append fast path needs, so coalescing never re-parses or re-scans
/// what it already holds.
#[derive(Debug)]
struct Pending {
    /// The aggregate packet. For a single-segment aggregate this is the
    /// original packet verbatim (possibly longer than its IP
    /// `total_len`, e.g. link-layer padding); the first append trims it.
    buf: PacketBuf,
    ip_hlen: u8,
    tcp_hlen: u8,
    /// TCP payload bytes accumulated so far.
    payload_len: u32,
    /// Sequence number of the next contiguous byte.
    next_seq: u32,
    /// Running ones-complement partial sum of the accumulated payload.
    payload_sum: u16,
    segs: u32,
    /// Logical arrival time of the first segment — emission minus this
    /// is the aggregate's dwell time (flight-recorder / histograms).
    born: u64,
}

impl Pending {
    /// The live packet length per its IP header (`buf` may be longer
    /// only while `segs == 1`).
    fn total_len(&self) -> usize {
        usize::from(self.ip_hlen) + usize::from(self.tcp_hlen) + self.payload_len as usize
    }
}

/// The merge engine. Feed packets with [`MergeEngine::push_into`], poll
/// hold timers with [`MergeEngine::poll_into`], and drain at shutdown
/// with [`MergeEngine::flush_all_into`] (or the `Vec`-returning
/// wrappers).
#[derive(Debug)]
pub struct MergeEngine {
    /// Configuration.
    pub cfg: MergeConfig,
    table: FlowTable<Pending>,
    pool: BufPool,
    /// Counters.
    pub stats: MergeStats,
    /// Flight recorder + histograms (disabled by default — zero cost).
    pub obs: Recorder,
    /// Logical time of the most recent `push_into`/`poll_into` call,
    /// used to stamp emission events deterministically.
    last_now: u64,
    /// Resource-fault injector ([`PlannedFaults::off`] in production:
    /// one predicted branch per aggregate creation).
    faults: PlannedFaults,
    /// Emergency buffer for degraded passthrough, owned outside the
    /// pool so it exists precisely when the pool is dry. Restored when
    /// the sink recycles it; a sink that keeps it leaves subsequent
    /// degraded packets to the backpressure counter.
    spare: Option<PacketBuf>,
    /// Whether the engine is currently in degraded (passthrough) mode —
    /// drives the `DegradeEnter`/`DegradeExit` edge events.
    degraded: bool,
    /// Small-flow classifier (§3/§4.1). `None` disables steering: every
    /// flow takes the merge path, exactly the historical behaviour.
    steer: Option<FlowClassifier>,
    /// Monotone per-emission sequence, the low bits of every `Merge`
    /// span's causal link id. Deterministic: driven purely by emission
    /// order, never by wall clock.
    emit_seq: u64,
    /// High-bit offset OR-ed into link ids so links stay globally
    /// unique when one engine runs per core (see
    /// [`MergeEngine::set_span_link_base`]).
    link_base: u64,
    /// Fixed-capacity parking lot for out-of-order segments (empty on
    /// the in-order hot path: one predicted branch).
    stash: SegStash,
}

impl MergeEngine {
    /// Creates a merge engine.
    pub fn new(cfg: MergeConfig) -> Self {
        let pool = BufPool::for_mtu(cfg.imtu, 256);
        let spare = PacketBuf::with_capacity(pool.headroom(), pool.headroom() + cfg.imtu);
        MergeEngine {
            cfg,
            table: FlowTable::new(cfg.table_capacity),
            pool,
            stats: MergeStats::default(),
            obs: Recorder::off(),
            last_now: 0,
            faults: PlannedFaults::off(),
            spare: Some(spare),
            degraded: false,
            steer: None,
            emit_seq: 0,
            link_base: 0,
            stash: SegStash::new(coalesce::STASH_CAP, coalesce::STASH_PER_FLOW),
        }
    }

    /// Sets the high-bit offset OR-ed into this engine's span link ids.
    /// The parallel engine passes `(core + 1) << 48` so merge→split
    /// causal links from different cores never collide; link ids stay
    /// nonzero (0 means "unlinked" in the trace export).
    pub fn set_span_link_base(&mut self, base: u64) {
        self.link_base = base;
    }

    /// Merge emissions so far — the low bits of the most recent span
    /// link (`link = base | seq`, `seq` counting emissions from 1).
    /// The trace harness replays emission order to stamp consuming
    /// split spans with the producing merge span's link.
    pub fn emit_seq(&self) -> u64 {
        self.emit_seq
    }

    /// Arms (or disarms, with [`FaultSpec::off`]) resource-fault
    /// injection for this engine.
    pub fn set_faults(&mut self, spec: FaultSpec) {
        self.faults = PlannedFaults::new(spec);
    }

    /// Switches small-flow steering on: mice hairpin past the merge
    /// machinery, only elephants earn per-flow merge state. Call before
    /// feeding traffic (the classifier starts empty).
    pub fn enable_steer(&mut self, cfg: SteerConfig) {
        self.steer = Some(FlowClassifier::new(cfg));
    }

    /// The classifier, when steering is enabled (counters, tracked-flow
    /// gauge).
    pub fn steer(&self) -> Option<&FlowClassifier> {
        self.steer.as_ref()
    }

    /// Re-sizes the merge flow table from a [`FlowTableConfig`] (entry
    /// ceiling + optional byte budget). Must be called before any
    /// traffic: replacing a table with pending aggregates would leak
    /// their pool buffers.
    pub fn configure_table(&mut self, cfg: FlowTableConfig) {
        debug_assert!(self.table.is_empty(), "reconfigure only while empty");
        self.table = FlowTable::with_config(cfg);
    }

    /// Re-sizes the buffer pool's parked-buffer cap (how many recycled
    /// buffers are kept for reuse). Large live-flow counts want this
    /// raised to the concurrent-aggregate ceiling so the steady state
    /// stays allocation-free. Must be called before any traffic.
    pub fn set_pool_bufs(&mut self, max_free: usize) {
        debug_assert_eq!(self.pool.outstanding(), 0, "resize only while idle");
        self.pool = BufPool::for_mtu(self.cfg.imtu, max_free);
        // Park the whole allowance up front: the first excursion to the
        // concurrent-aggregate peak then recycles instead of allocating.
        self.pool.prewarm(max_free);
    }

    /// Bytes reserved by this engine's flow-state arenas: the merge
    /// table plus the classifier table when steering is on.
    pub fn arena_bytes(&self) -> usize {
        self.table.arena_bytes() + self.steer.as_ref().map_or(0, FlowClassifier::arena_bytes)
    }

    /// Flows currently occupying state: pending merge aggregates plus
    /// classifier-tracked flows.
    pub fn flows_live(&self) -> usize {
        self.table.len() + self.steer.as_ref().map_or(0, FlowClassifier::tracked)
    }

    /// Merge-table evictions (always rescue-flushed: pressure) plus
    /// classifier evictions split by segment.
    pub fn eviction_counts(&self) -> (u64, u64) {
        let idle = self.steer.as_ref().map_or(0, |s| s.evicted_idle());
        let pressure =
            self.table.evictions + self.steer.as_ref().map_or(0, |s| s.evicted_pressure());
        (idle, pressure)
    }

    /// Caps the buffer pool's live-buffer count (see
    /// [`BufPool::set_live_cap`]) — how tests model a finite mempool.
    pub fn set_pool_live_cap(&mut self, cap: Option<u64>) {
        self.pool.set_live_cap(cap);
    }

    /// Whether the engine is currently degraded to passthrough.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Switches the flight recorder + histograms on (preallocates the
    /// event ring; recording itself never allocates).
    pub fn enable_obs(&mut self, cfg: ObsConfig) {
        self.obs = Recorder::new(cfg);
    }

    /// Flow-table lookups performed so far (cost accounting).
    pub fn lookups(&self) -> u64 {
        self.table.lookups
    }

    /// Buffer-pool counters (allocation accounting).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats
    }

    /// Buffers held by pending aggregates or not yet recycled by a sink.
    pub fn pool_outstanding(&self) -> u64 {
        self.pool.outstanding()
    }

    fn full_threshold(&self) -> usize {
        self.cfg.imtu.saturating_sub(self.cfg.emtu - 40) + 1
    }

    /// Emits a finished aggregate: records its size, hands it to the
    /// sink, and recycles the buffer if the sink returns it.
    fn emit(&mut self, buf: PacketBuf, sink: &mut impl PacketSink) {
        self.stats.out_sizes.record(buf.len());
        self.obs.observe_out_size(buf.len() as u64);
        if let Some(b) = sink.accept(buf) {
            self.pool.put(b);
        }
    }

    /// Forwards an input packet untouched (passthrough — deliberately
    /// not recorded in `out_sizes`, which tracks merge output only).
    fn forward(&mut self, pkt: &[u8], sink: &mut impl PacketSink) {
        let mut buf = self.pool.get();
        buf.extend_from_slice(pkt);
        if let Some(b) = sink.accept(buf) {
            self.pool.put(b);
        }
    }

    /// Records the span + flow profile for a single-packet merge
    /// emission (already-iMTU input or the hold-disabled ablation), so
    /// every merge output carries a `Merge` span and a causal link.
    fn record_single_emit(&mut self, now: u64, len: usize, flow: u32) {
        if self.obs.is_enabled() {
            self.emit_seq += 1;
            self.obs.record_span(
                SpanCat::Merge,
                now,
                0,
                len as u32,
                flow,
                1,
                self.link_base | self.emit_seq,
            );
            self.obs.observe_flow(flow, 1, len as u64, 0);
        }
    }

    /// Degraded passthrough: an aggregate could not be created
    /// ([`cause::POOL`] = pool dry, [`cause::TABLE`] = table denial),
    /// so the packet is forwarded unmerged through the pool-independent
    /// spare buffer — the byte stream stays correct, only the merge
    /// benefit is lost. Never allocates and never panics (px-analyze
    /// R6); when even the spare is gone the packet is dropped and
    /// counted as backpressure.
    fn degrade_forward(
        &mut self,
        now: u64,
        pkt: &[u8],
        flow: u32,
        cause_code: u64,
        sink: &mut impl PacketSink,
    ) {
        if !self.degraded {
            self.degraded = true;
            self.obs.record(
                EventKind::DegradeEnter,
                now,
                pkt.len() as u32,
                0,
                cause_code,
            );
        }
        // One Degrade span per degraded packet: the conservation test
        // pins `count(Degrade) == degraded_pkts + backpressure_drops`.
        self.obs.record_span(
            SpanCat::Degrade,
            now,
            0,
            pkt.len() as u32,
            flow,
            cause_code,
            0,
        );
        if cause_code == cause::POOL {
            self.stats.pool_exhausted += 1;
        }
        match self.spare.take() {
            Some(mut buf) if pkt.len() <= self.cfg.imtu => {
                self.stats.degraded_pkts += 1;
                buf.extend_from_slice(pkt);
                if let Some(mut b) = sink.accept(buf) {
                    b.reset(self.pool.headroom());
                    self.spare = Some(b);
                }
            }
            kept => {
                self.spare = kept;
                self.stats.backpressure_drops += 1;
            }
        }
    }

    /// Leaves degraded mode on the first aggregate creation that
    /// succeeds again (per-attempt hysteresis: pressure is over exactly
    /// when the resource that was denied is granted).
    fn degrade_exit(&mut self, now: u64) {
        if self.degraded {
            self.degraded = false;
            self.obs.record(EventKind::DegradeExit, now, 0, 0, 0);
        }
    }

    /// Whether `meta`'s packet shares enough header state with `pending`
    /// to coalesce at all — the non-positional LRO gates, same as
    /// [`px_sim::nic::try_coalesce`], answered from cached state and
    /// fixed-offset header reads instead of re-parsing. The flow key
    /// already guarantees equal addresses, ports, and protocol; the
    /// aggregate's flags are plain by construction. *Where* the segment
    /// lands (contiguous / overlapping / future) is [`coalesce::classify`]'s
    /// job, not this gate's.
    fn headers_compatible(pending: &Pending, meta: &SegFacts, pkt: &[u8]) -> bool {
        let a = pending.buf.as_slice();
        let a_ip = usize::from(pending.ip_hlen);
        let b_ip = usize::from(meta.ip_hlen);
        // Same ToS, ACK number, and window (pure in-order continuation).
        if a[1] != pkt[1]
            || bytes::range(a, a_ip + 8, a_ip + 12) != bytes::range(pkt, b_ip + 8, b_ip + 12)
            || bytes::range(a, a_ip + 14, a_ip + 16) != bytes::range(pkt, b_ip + 14, b_ip + 16)
        {
            return false;
        }
        // Identical TCP option layout (kinds and lengths; values may
        // differ — the aggregate keeps its own options, as Linux GRO
        // does).
        let a_opts = bytes::range(a, a_ip + 20, a_ip + usize::from(pending.tcp_hlen));
        let b_opts = bytes::range(pkt, b_ip + 20, b_ip + usize::from(meta.tcp_hlen));
        options_layout_compatible(a_opts, b_opts)
    }

    /// The aggregate's accumulated TCP payload (`buf` may carry trailing
    /// link padding only while `segs == 1`; the range excludes it).
    fn held_payload(pending: &Pending) -> &[u8] {
        let hdrs = usize::from(pending.ip_hlen) + usize::from(pending.tcp_hlen);
        bytes::range(pending.buf.as_slice(), hdrs, pending.total_len())
    }

    /// Sequence number of the aggregate's first payload byte.
    fn base_seq(pending: &Pending) -> u32 {
        pending.next_seq.wrapping_sub(pending.payload_len)
    }

    /// Appends a payload tail onto `pending` in place: one `memcpy` plus
    /// a partial-sum fold. `trim` skips leading bytes the aggregate
    /// already holds (verified identical by [`coalesce::classify`]);
    /// the trimmed tail's partial sum is rescanned, the `trim == 0` fast
    /// path folds the cached segment sum. Checksums and length fields
    /// are patched once, at emission.
    fn append_tail(pending: &mut Pending, payload: &[u8], sum: u16, psh: bool) {
        if pending.segs == 1 {
            // Drop any bytes beyond the IP total length (e.g. link-layer
            // padding) before growing the aggregate.
            pending.buf.truncate(pending.total_len());
        }
        pending.payload_sum =
            checksum::combine_at_offset(pending.payload_sum, sum, pending.payload_len % 2 == 1);
        pending.buf.extend_from_slice(payload);
        if psh {
            let flags_at = usize::from(pending.ip_hlen) + 13;
            pending.buf.as_mut_slice()[flags_at] |= 0x08;
        }
        pending.payload_len += payload.len() as u32;
        pending.next_seq = pending.next_seq.wrapping_add(payload.len() as u32);
        pending.segs += 1;
    }

    /// Finishes an aggregate and emits it. Single-segment aggregates go
    /// out verbatim (the original packet was never modified); merged ones
    /// get their length and checksums patched from the cached partial
    /// sums — no payload re-scan.
    fn finalize_emit(&mut self, mut p: Pending, sink: &mut impl PacketSink) {
        if p.segs > 1 {
            let total = p.total_len();
            debug_assert_eq!(p.buf.len(), total);
            let ip_hlen = usize::from(p.ip_hlen);
            let (src, dst);
            {
                let mut ip = Ipv4Packet::new_unchecked(p.buf.as_mut_slice());
                ip.set_total_len(total as u16);
                ip.fill_checksum();
                (src, dst) = (ip.src(), ip.dst());
            }
            let seg_len = (total - ip_hlen) as u16;
            let seg = bytes::range_from_mut(p.buf.as_mut_slice(), ip_hlen);
            bytes::put_be16(seg, 16, 0);
            let header_sum =
                checksum::ones_complement_sum(bytes::range_to(seg, usize::from(p.tcp_hlen)));
            let pseudo = checksum::pseudo_header_sum(src, dst, IpProtocol::Tcp.into(), seg_len);
            let ck = !checksum::combine(pseudo, checksum::combine(header_sum, p.payload_sum));
            bytes::put_be16(seg, 16, ck);
        }
        if self.obs.is_enabled() {
            let ip_hlen = usize::from(p.ip_hlen);
            let src_port = bytes::be16(p.buf.as_slice(), ip_hlen);
            let dst_port = bytes::be16(p.buf.as_slice(), ip_hlen + 2);
            let dwell = self.last_now.saturating_sub(p.born);
            let flow = flow_id(src_port, dst_port);
            self.obs.record(
                EventKind::MergeEmit,
                self.last_now,
                p.buf.len() as u32,
                flow,
                dwell,
            );
            self.obs.observe_dwell(dwell);
            // The aggregate's lifecycle span: born → emitted, aux = how
            // many segments it swallowed, link = the causal id the
            // consuming split span will carry.
            self.emit_seq += 1;
            self.obs.record_span(
                SpanCat::Merge,
                p.born,
                dwell,
                p.buf.len() as u32,
                flow,
                u64::from(p.segs),
                self.link_base | self.emit_seq,
            );
            self.obs
                .observe_flow(flow, u64::from(p.segs), p.buf.len() as u64, dwell);
        }
        self.emit(p.buf, sink);
    }

    /// Finishes a flow: emits its aggregate, then forwards — verbatim,
    /// in sequence order — any segments still parked in the reorder
    /// stash for it (their gaps never filled before the flush). Every
    /// site that removes a pending aggregate goes through here, which is
    /// what maintains the stash invariant: parked segments only ever
    /// belong to flows with live aggregates.
    fn finalize_flow(&mut self, key: &FlowKey, p: Pending, sink: &mut impl PacketSink) {
        let base = Self::base_seq(&p);
        self.finalize_emit(p, sink);
        if self.stash.is_empty() {
            return;
        }
        self.forward_stash_leftovers(key, base, sink);
    }

    /// Forwards every stashed segment of `key` in sequence order (their
    /// end-to-end checksums are intact — they were never modified).
    fn forward_stash_leftovers(&mut self, key: &FlowKey, base: u32, sink: &mut impl PacketSink) {
        while let Some(seg) = self.stash.take_min(key, base) {
            self.stats.stash_leftovers += 1;
            let len = seg.buf.len();
            let flow = flow_id(key.src_port, key.dst_port);
            self.record_single_emit(self.last_now, len, flow);
            self.emit(seg.buf, sink);
        }
    }

    /// Parks an out-of-order segment (trimmed to its IP total length)
    /// in the reorder stash. `false` when the stash allowance or the
    /// pool has no room — the caller falls back to the historical
    /// flush-and-restart path.
    fn try_stash(&mut self, key: &FlowKey, facts: &SegFacts, pkt: &[u8]) -> bool {
        let Some(mut buf) = self.pool.try_get() else {
            return false;
        };
        buf.extend_from_slice(bytes::range(pkt, 0, usize::from(facts.total_len)));
        let seg = StashedSeg {
            key: *key,
            seq: facts.seq,
            psh: facts.psh,
            ip_hlen: facts.ip_hlen,
            tcp_hlen: facts.tcp_hlen,
            payload_sum: facts.payload_sum,
            buf,
        };
        match self.stash.insert(seg) {
            Ok(()) => true,
            Err(seg) => {
                self.pool.put(seg.buf);
                false
            }
        }
    }

    /// After an append advanced the contiguous edge, repeatedly pulls
    /// newly actionable stashed segments of `key` onto its aggregate
    /// until only future gaps (or nothing) remain. Stashed segments get
    /// the same overlap scrutiny as arriving ones: inconsistent bytes
    /// are typed, counted drops, never merged. May flush the aggregate
    /// full.
    fn drain_stash(&mut self, now: u64, key: &FlowKey, sink: &mut impl PacketSink) {
        if self.stash.is_empty() {
            return;
        }
        let full_at = self.full_threshold();
        let imtu = self.cfg.imtu;
        enum Act {
            Recycle,
            Inconsistent,
            Unreachable,
            Overflow,
        }
        loop {
            let (base, next) = {
                let Some(p) = self.table.get_mut(key) else {
                    return;
                };
                (Self::base_seq(p), p.next_seq)
            };
            let Some(seg) = self.stash.take_actionable(key, base, next) else {
                return;
            };
            let mut became_full = false;
            let act = {
                let Some(p) = self.table.get_mut(key) else {
                    // Defensive: the flow vanished between the two
                    // lookups (cannot happen single-threaded).
                    self.pool.put(seg.buf);
                    return;
                };
                let verdict =
                    coalesce::classify(Self::held_payload(p), base, seg.seq, seg.payload());
                match verdict {
                    OverlapVerdict::Append { trim } => {
                        let payload = bytes::range_from(seg.payload(), trim);
                        let merged = p.total_len() + payload.len();
                        if merged <= imtu && merged <= px_wire::ipv4::MAX_TOTAL_LEN {
                            let sum = if trim == 0 {
                                seg.payload_sum
                            } else {
                                checksum::ones_complement_sum(payload)
                            };
                            Self::append_tail(p, payload, sum, seg.psh);
                            became_full = p.total_len() >= full_at;
                            Act::Recycle
                        } else {
                            Act::Overflow
                        }
                    }
                    OverlapVerdict::Duplicate => {
                        self.stats.dropped_duplicate_segs += 1;
                        Act::Recycle
                    }
                    OverlapVerdict::Inconsistent => Act::Inconsistent,
                    // A stashed segment was `Future` (strictly above the
                    // edge) when parked and the base never moves down,
                    // so these are unreachable; drop defensively.
                    OverlapVerdict::Evasion
                    | OverlapVerdict::Below
                    | OverlapVerdict::Future => Act::Unreachable,
                }
            };
            match act {
                Act::Recycle => {
                    if became_full {
                        self.stats.stash_appends += 1;
                        if let Some(p) = self.table.remove(key) {
                            self.stats.flush_full += 1;
                            self.finalize_flow(key, p, sink);
                        }
                        self.pool.put(seg.buf);
                        return;
                    }
                    self.stats.stash_appends += 1;
                    self.pool.put(seg.buf);
                }
                Act::Inconsistent => {
                    self.stats.dropped_inconsistent_overlap += 1;
                    self.obs.record(
                        EventKind::DropInconsistentOverlap,
                        now,
                        seg.buf.len() as u32,
                        flow_id(key.src_port, key.dst_port),
                        0,
                    );
                    self.pool.put(seg.buf);
                }
                Act::Unreachable => {
                    self.stats.dropped_overlap_evasion += 1;
                    self.pool.put(seg.buf);
                }
                Act::Overflow => {
                    // The aggregate cannot grow further: flush it full,
                    // then forward this segment and the flow's remaining
                    // stash verbatim, in order.
                    if let Some(p) = self.table.remove(key) {
                        self.stats.flush_full += 1;
                        self.finalize_emit(p, sink);
                    }
                    self.stats.stash_leftovers += 1;
                    let len = seg.buf.len();
                    self.record_single_emit(now, len, flow_id(key.src_port, key.dst_port));
                    self.emit(seg.buf, sink);
                    self.forward_stash_leftovers(key, base, sink);
                    return;
                }
            }
        }
    }

    /// Processes one packet arriving from the eMTU side, delivering any
    /// packets ready to forward into the b-network to `sink` (possibly
    /// none while an aggregate is being held).
    ///
    /// Parses the packet itself; batch callers that already ran
    /// [`batchparse::parse_batch_with`] should use
    /// [`push_parsed_into`](Self::push_parsed_into) to skip the repeat
    /// header walk.
    pub fn push_into(&mut self, now: u64, pkt: &[u8], sink: &mut impl PacketSink) {
        let meta = batchparse::parse_packet(pkt);
        self.push_parsed_into(now, pkt, &meta, sink);
    }

    /// [`push_into`](Self::push_into) with the parse already done: the
    /// engine hot loop classifies a whole RX batch up front
    /// ([`batchparse::parse_batch_with`]) and feeds the cached
    /// [`ParsedMeta`] here, so the per-packet path never re-reads header
    /// bytes. `meta` must describe `pkt` — the single-packet wrapper and
    /// the property suite keep the two parsers bit-identical.
    pub fn push_parsed_into(
        &mut self,
        now: u64,
        pkt: &[u8],
        meta: &ParsedMeta,
        sink: &mut impl PacketSink,
    ) {
        self.stats.pkts_in += 1;
        self.last_now = now;

        // One Classify span per input packet (aux 1 = flow-keyed, 0 =
        // not): the span-conservation property test pins
        // `count(Classify) == pkts_in` per core.
        if self.obs.is_enabled() {
            let flow = meta
                .key
                .as_ref()
                .map_or(0, |k| flow_id(k.src_port, k.dst_port));
            self.obs.record_span(
                SpanCat::Classify,
                now,
                0,
                pkt.len() as u32,
                flow,
                u64::from(meta.key.is_some()),
                0,
            );
        }

        let Some(key) = meta.key else {
            self.stats.passthrough += 1;
            // aux 2 = passthrough (vs 1 = steered mouse).
            self.obs
                .record_span(SpanCat::Steer, now, 0, pkt.len() as u32, 0, 2, 0);
            self.forward(pkt, sink);
            return;
        };

        // Small-flow steering (§3/§4.1): mice hairpin NIC-to-NIC,
        // forwarded verbatim without touching any merge state — no
        // flow-table slot, no pool aggregate, no merge counters. Only
        // elephants proceed to the merge path below.
        if let Some(classifier) = self.steer.as_mut() {
            let (class, evicted) = classifier.classify_with_evict(now, &key);
            if let Some(victim) = evicted {
                // A classifier slot was churned out (aux 1 = idle).
                let vflow = flow_id(victim.src_port, victim.dst_port);
                self.obs.record(EventKind::FlowEvict, now, 0, vflow, 1);
                self.obs.record_span(SpanCat::Evict, now, 0, 0, vflow, 1, 0);
            }
            if class == FlowClass::Mouse {
                // A demoted flow may still hold an aggregate from its
                // elephant days: rescue-flush it first so the flow's
                // packets never reorder across the two paths.
                if let Some(p) = self.table.remove(&key) {
                    self.stats.flush_order += 1;
                    self.finalize_flow(&key, p, sink);
                }
                self.stats.steered_mice_pkts += 1;
                if self.obs.is_enabled() {
                    let flow = flow_id(key.src_port, key.dst_port);
                    self.obs
                        .record_span(SpanCat::Steer, now, 0, pkt.len() as u32, flow, 1, 0);
                    self.obs.observe_flow(flow, 1, pkt.len() as u64, 0);
                }
                self.forward(pkt, sink);
                return;
            }
        }

        let facts = match meta.verdict {
            Verdict::Mergeable(facts) => facts,
            Verdict::NotMergeable { checksum_ok } => {
                // Control/pure-ACK/non-TCP/corrupt: flush any pending
                // aggregate first to preserve per-flow ordering, then pass
                // through — a corrupted segment keeps its broken checksum
                // so the receiver discards it and TCP retransmits.
                if !checksum_ok {
                    self.stats.bad_checksum += 1;
                }
                if let Some(p) = self.table.remove(&key) {
                    self.stats.flush_order += 1;
                    self.finalize_flow(&key, p, sink);
                }
                self.stats.passthrough += 1;
                self.obs.record_span(
                    SpanCat::Steer,
                    now,
                    0,
                    pkt.len() as u32,
                    flow_id(key.src_port, key.dst_port),
                    2,
                    0,
                );
                self.forward(pkt, sink);
                return;
            }
        };

        self.stats.data_segs_in += 1;
        let full_at = self.full_threshold();
        let imtu = self.cfg.imtu;
        let flow = flow_id(key.src_port, key.dst_port);

        enum PendingAct {
            Appended { full: bool },
            FlushRestart,
            DropDuplicate,
            DropInconsistent,
            DropEvasion,
            ForwardBelow,
            Stash,
            None,
        }
        let hdrs = usize::from(facts.ip_hlen) + usize::from(facts.tcp_hlen);
        let act = match self.table.get_mut(&key) {
            Some(pending) => {
                if !Self::headers_compatible(pending, &facts, pkt) {
                    // Different ACK/window/ToS/options: flush, restart —
                    // the historical incompatibility path.
                    PendingAct::FlushRestart
                } else {
                    let base = Self::base_seq(pending);
                    let seg_payload = bytes::range(pkt, hdrs, usize::from(facts.total_len));
                    let verdict = coalesce::classify(
                        Self::held_payload(pending),
                        base,
                        facts.seq,
                        seg_payload,
                    );
                    match verdict {
                        OverlapVerdict::Append { trim } => {
                            let payload = bytes::range_from(seg_payload, trim);
                            let merged = pending.total_len() + payload.len();
                            if merged <= imtu && merged <= px_wire::ipv4::MAX_TOTAL_LEN {
                                let sum = if trim == 0 {
                                    facts.payload_sum
                                } else {
                                    checksum::ones_complement_sum(payload)
                                };
                                Self::append_tail(pending, payload, sum, facts.psh);
                                PendingAct::Appended {
                                    full: pending.total_len() >= full_at,
                                }
                            } else {
                                PendingAct::FlushRestart
                            }
                        }
                        OverlapVerdict::Duplicate => PendingAct::DropDuplicate,
                        OverlapVerdict::Inconsistent => PendingAct::DropInconsistent,
                        OverlapVerdict::Evasion => PendingAct::DropEvasion,
                        OverlapVerdict::Below => PendingAct::ForwardBelow,
                        OverlapVerdict::Future => PendingAct::Stash,
                    }
                }
            }
            None => PendingAct::None,
        };
        match act {
            PendingAct::Appended { full: true } => {
                if let Some(p) = self.table.remove(&key) {
                    self.stats.flush_full += 1;
                    self.finalize_flow(&key, p, sink);
                }
                return;
            }
            PendingAct::Appended { full: false } => {
                // The contiguous edge moved: parked segments may now
                // coalesce (no-op while the stash is empty).
                self.drain_stash(now, &key, sink);
                return;
            }
            PendingAct::DropDuplicate => {
                // Bit-identical retransmission of held bytes: dropping
                // it leaves the receiver-side byte stream unchanged.
                self.stats.dropped_duplicate_segs += 1;
                return;
            }
            PendingAct::DropInconsistent => {
                self.stats.dropped_inconsistent_overlap += 1;
                self.obs.record(
                    EventKind::DropInconsistentOverlap,
                    now,
                    pkt.len() as u32,
                    flow,
                    0,
                );
                return;
            }
            PendingAct::DropEvasion => {
                self.stats.dropped_overlap_evasion += 1;
                self.obs.record(
                    EventKind::DropInconsistentOverlap,
                    now,
                    pkt.len() as u32,
                    flow,
                    1,
                );
                return;
            }
            PendingAct::ForwardBelow => {
                // Old data from before this aggregate existed: not
                // mergeable, not suspicious — forward verbatim with its
                // original end-to-end checksum.
                self.stats.below_window_forwarded += 1;
                self.forward(pkt, sink);
                return;
            }
            PendingAct::Stash => {
                if self.try_stash(&key, &facts, pkt) {
                    self.stats.stashed_segs += 1;
                    return;
                }
                // No stash or pool room: the historical flush-and-restart.
                self.stats.stash_fallback_flushes += 1;
                if let Some(p) = self.table.remove(&key) {
                    self.stats.flush_order += 1;
                    self.finalize_flow(&key, p, sink);
                }
            }
            PendingAct::FlushRestart => {
                if let Some(p) = self.table.remove(&key) {
                    self.stats.flush_order += 1;
                    self.finalize_flow(&key, p, sink);
                }
            }
            PendingAct::None => {}
        }

        if pkt.len() >= full_at {
            // Already iMTU-sized (e.g. traffic from another b-network).
            self.stats.flush_full += 1;
            self.record_single_emit(now, pkt.len(), flow);
            let mut buf = self.pool.get();
            buf.extend_from_slice(pkt);
            self.emit(buf, sink);
            return;
        }
        if self.cfg.hold_ns == 0 {
            // Delayed merging disabled: emit immediately (ablation).
            self.record_single_emit(now, pkt.len(), flow);
            let mut buf = self.pool.get();
            buf.extend_from_slice(pkt);
            self.emit(buf, sink);
            return;
        }
        // Aggregate creation is the resource-pressure point: it is the
        // only step that pins a pool buffer and a flow-table slot for
        // longer than one call. Injected verdicts and real pool
        // exhaustion both degrade to passthrough here — never a drop.
        if self.faults.spec.enabled {
            let pkt_hash = hash_bytes(pkt);
            if self.faults.pool_dry(pkt_hash) {
                self.degrade_forward(now, pkt, flow, cause::POOL, sink);
                return;
            }
            if self.faults.table_deny(pkt_hash) {
                self.degrade_forward(now, pkt, flow, cause::TABLE, sink);
                return;
            }
        }
        let Some(mut buf) = self.pool.try_get() else {
            self.degrade_forward(now, pkt, flow, cause::POOL, sink);
            return;
        };
        self.degrade_exit(now);
        buf.extend_from_slice(pkt);
        let payload_len = facts.payload_len() as u32;
        let pending = Pending {
            buf,
            ip_hlen: facts.ip_hlen,
            tcp_hlen: facts.tcp_hlen,
            payload_len,
            next_seq: facts.seq.wrapping_add(payload_len),
            payload_sum: facts.payload_sum,
            segs: 1,
            born: now,
        };
        let evicted = self
            .table
            .insert_with_deadline(key, pending, now + self.cfg.hold_ns);
        if let Some((victim, p)) = evicted {
            self.stats.flush_evict += 1;
            // aux 2 = pressure: the victim held unflushed merge bytes
            // and was rescue-flushed below, never dropped.
            let vflow = flow_id(victim.src_port, victim.dst_port);
            self.obs
                .record(EventKind::FlowEvict, now, p.buf.len() as u32, vflow, 2);
            self.obs
                .record_span(SpanCat::Evict, now, 0, p.buf.len() as u32, vflow, 2, 0);
            self.finalize_flow(&victim, p, sink);
        }
    }

    /// Emits every aggregate whose hold timer has expired.
    pub fn poll_into(&mut self, now: u64, sink: &mut impl PacketSink) {
        // The end-of-run drain polls with a `u64::MAX` sentinel to
        // expire every hold timer; keep the last *real* timestamp for
        // dwell/event accounting so drained aggregates don't report
        // astronomical dwells (which also overflow the profiler's
        // per-flow sums in debug builds).
        if now != u64::MAX {
            self.last_now = now;
        }
        while let Some((key, p)) = self.table.pop_expired(now) {
            self.stats.flush_timeout += 1;
            self.finalize_flow(&key, p, sink);
        }
    }

    /// The earliest pending hold deadline, if any (lets a gateway arm a
    /// precise timer instead of polling blindly).
    pub fn next_deadline(&mut self) -> Option<u64> {
        self.table.next_deadline()
    }

    /// Drains everything (shutdown), delivering to `sink`.
    pub fn flush_all_into(&mut self, sink: &mut impl PacketSink) {
        for (key, p) in self.table.drain() {
            self.stats.flush_timeout += 1;
            self.finalize_flow(&key, p, sink);
        }
        // The stash invariant (parked segments belong to live pending
        // flows only) guarantees the per-flow drains above emptied it.
        debug_assert!(self.stash.is_empty(), "stash drained with the table");
    }

    /// [`push_into`](Self::push_into) collected into a `Vec` (tests and
    /// non-hot callers).
    pub fn push(&mut self, now: u64, pkt: Vec<u8>) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        self.push_into(now, &pkt, &mut sink);
        sink.into_pkts()
    }

    /// [`poll_into`](Self::poll_into) collected into a `Vec`.
    pub fn poll(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        self.poll_into(now, &mut sink);
        sink.into_pkts()
    }

    /// [`flush_all_into`](Self::flush_all_into) collected into a `Vec`.
    pub fn flush_all(&mut self) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        self.flush_all_into(&mut sink);
        sink.into_pkts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_wire::ipv4::Ipv4Repr;
    use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr, TcpSegment};
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);

    fn data_pkt(port: u16, seq: u32, len: usize) -> Vec<u8> {
        let mut payload = vec![0u8; len];
        px_tcp::fill_pattern(u64::from(seq), &mut payload);
        let mut flags = TcpFlags::ACK;
        flags.psh = false;
        let repr = TcpRepr {
            src_port: port,
            dst_port: 80,
            seq: SeqNum(seq),
            ack: SeqNum(1),
            flags,
            window: 5000,
            options: vec![],
        };
        let seg = repr.build_segment(SRC, DST, &payload);
        Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
            .build_packet(&seg)
            .unwrap()
    }

    fn ack_pkt(port: u16, seq: u32) -> Vec<u8> {
        let repr = TcpRepr {
            src_port: port,
            dst_port: 80,
            seq: SeqNum(seq),
            ack: SeqNum(1),
            flags: TcpFlags::ACK,
            window: 5000,
            options: vec![],
        };
        let seg = repr.build_segment(SRC, DST, b"");
        Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
            .build_packet(&seg)
            .unwrap()
    }

    fn total_payload(pkts: &[Vec<u8>]) -> usize {
        pkts.iter()
            .map(|p| {
                let ip = Ipv4Packet::new_checked(&p[..]).unwrap();
                let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
                tcp.payload().len()
            })
            .sum()
    }

    #[test]
    fn six_segments_become_one_jumbo() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        let mut out = Vec::new();
        let seg_payload = 1460;
        for i in 0..6u32 {
            out.extend(eng.push(0, data_pkt(5000, i * seg_payload, seg_payload as usize)));
        }
        assert_eq!(
            out.len(),
            1,
            "one full aggregate (6×1460+40 = 8800 ≥ threshold)"
        );
        assert_eq!(out[0].len(), 40 + 6 * 1460);
        assert_eq!(total_payload(&out), 6 * 1460);
        // The merged packet has valid checksums and the pattern intact.
        let ip = Ipv4Packet::new_checked(&out[0][..]).unwrap();
        assert!(ip.verify_checksum());
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum(ip.src(), ip.dst()));
        assert_eq!(px_tcp::verify_pattern(0, tcp.payload()), None);
        assert_eq!(eng.stats.flush_full, 1);
    }

    /// The in-place append + cached-partial-sum emission must produce the
    /// same bytes as the rebuild-from-scratch `try_coalesce` oracle.
    #[test]
    fn merged_bytes_match_try_coalesce_oracle() {
        use px_sim::nic::try_coalesce;
        let cfg = MergeConfig::default();
        // Odd payload lengths force the odd-offset partial-sum fold.
        let lens = [999usize, 1, 1460, 7, 512];
        let mut eng = MergeEngine::new(cfg);
        let mut oracle: Option<Vec<u8>> = None;
        let mut seq = 0u32;
        for len in lens {
            let pkt = data_pkt(7000, seq, len);
            oracle = Some(match oracle {
                None => pkt.clone(),
                Some(agg) => try_coalesce(&agg, &pkt, cfg.imtu).expect("oracle coalesces"),
            });
            assert!(eng.push(0, pkt).is_empty(), "held");
            seq += len as u32;
        }
        let out = eng.flush_all();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], oracle.unwrap(), "byte-for-byte identical");
    }

    #[test]
    fn hold_timer_flushes_partial_aggregates() {
        let mut eng = MergeEngine::new(MergeConfig {
            hold_ns: 1000,
            ..Default::default()
        });
        let mut out = eng.push(0, data_pkt(5000, 0, 1000));
        out.extend(eng.push(10, data_pkt(5000, 1000, 1000)));
        assert!(out.is_empty(), "held");
        assert!(eng.poll(999).is_empty(), "not yet due");
        let flushed = eng.poll(1001);
        assert_eq!(flushed.len(), 1);
        assert_eq!(total_payload(&flushed), 2000);
        assert_eq!(eng.stats.flush_timeout, 1);
    }

    #[test]
    fn control_packets_flush_and_preserve_order() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        let mut out = eng.push(0, data_pkt(5000, 0, 1000));
        assert!(out.is_empty());
        out.extend(eng.push(1, ack_pkt(5000, 1000)));
        assert_eq!(out.len(), 2, "aggregate flushed before the ACK");
        assert_eq!(total_payload(&out[..1]), 1000);
        assert_eq!(eng.stats.flush_order, 1);
        assert_eq!(eng.stats.passthrough, 1);
    }

    #[test]
    fn out_of_order_data_parks_in_the_stash() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        eng.push(0, data_pkt(5000, 0, 1000));
        // Gap: the future segment parks instead of forcing a flush.
        let out = eng.push(1, data_pkt(5000, 5000, 1000));
        assert!(out.is_empty(), "nothing emitted");
        assert_eq!(eng.table.len(), 1, "aggregate still pending");
        assert_eq!(eng.stats.stashed_segs, 1);
        assert_eq!(eng.stats.flush_order, 0, "no flush on mild reordering");
        // The gap never fills: the flush forwards the aggregate first,
        // then the parked segment, in sequence order.
        let drained = eng.flush_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(total_payload(&drained), 2000);
        assert_eq!(eng.stats.stash_leftovers, 1);
        assert!(eng.stash.is_empty(), "stash drained with the flush");
    }

    /// Satellite regression: a single reordered segment used to flush
    /// the aggregate (`can_append`'s `seq != next_seq` branch), cratering
    /// conversion yield. With the ordered coalescer, a swapped pair
    /// still merges into one full jumbo.
    #[test]
    fn mild_reordering_preserves_merge_yield() {
        let cfg = MergeConfig::default();
        let mut eng = MergeEngine::new(cfg);
        let mut out = Vec::new();
        // Segments 0..6, with the middle pair swapped: 0 1 3 2 4 5.
        for &i in &[0u32, 1, 3, 2, 4, 5] {
            out.extend(eng.push(0, data_pkt(5000, i * 1460, 1460)));
        }
        assert_eq!(out.len(), 1, "one full aggregate despite the swap");
        assert_eq!(out[0].len(), 40 + 6 * 1460);
        assert_eq!(total_payload(&out), 6 * 1460);
        let ip = Ipv4Packet::new_checked(&out[0][..]).unwrap();
        assert!(ip.verify_checksum());
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum(ip.src(), ip.dst()));
        assert_eq!(px_tcp::verify_pattern(0, tcp.payload()), None);
        assert_eq!(eng.stats.stashed_segs, 1, "segment 3 parked");
        assert_eq!(eng.stats.stash_appends, 1, "and coalesced when 2 arrived");
        assert_eq!(eng.stats.flush_order, 0, "no reorder flush");
        assert_eq!(
            eng.stats.conversion_yield(&cfg),
            1.0,
            "full yield under mild reordering"
        );
        assert!(eng.stash.is_empty(), "parked segment consumed");
    }

    #[test]
    fn injected_overlap_is_a_typed_drop() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        eng.enable_obs(px_obs::ObsConfig::default());
        assert!(eng.push(0, data_pkt(5000, 0, 1000)).is_empty());
        // Same range as held bytes 200..500, but a different fill
        // pattern (seeded differently) — an injection attempt.
        let mut attack = data_pkt(5000, 200, 300);
        {
            // Flip payload bytes and refresh the checksum so the packet
            // is wire-valid (an on-path attacker can do this).
            let ip = Ipv4Packet::new_checked(&attack[..]).unwrap();
            let (ihl, src, dst) = (ip.header_len(), ip.src(), ip.dst());
            for b in &mut attack[ihl + 20..] {
                *b = !*b;
            }
            let seg_len = (attack.len() - ihl) as u16;
            attack[ihl + 16..ihl + 18].copy_from_slice(&[0, 0]);
            let sum = checksum::combine(
                checksum::pseudo_header_sum(src, dst, IpProtocol::Tcp.into(), seg_len),
                checksum::ones_complement_sum(&attack[ihl..]),
            );
            let ck = !sum;
            attack[ihl + 16..ihl + 18].copy_from_slice(&ck.to_be_bytes());
        }
        let out = eng.push(1, attack);
        assert!(out.is_empty(), "attacker segment never forwarded");
        assert_eq!(eng.stats.dropped_inconsistent_overlap, 1);
        let kinds: Vec<EventKind> = eng.obs.recent(8).iter().map(|e| e.kind).collect();
        assert!(
            kinds.contains(&EventKind::DropInconsistentOverlap),
            "{kinds:?}"
        );
        // The legit aggregate is intact and still merges.
        let out = eng.push(2, data_pkt(5000, 1000, 1000));
        assert!(out.is_empty());
        let drained = eng.flush_all();
        assert_eq!(drained.len(), 1);
        assert_eq!(total_payload(&drained), 2000);
        let ip = Ipv4Packet::new_checked(&drained[0][..]).unwrap();
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert_eq!(
            px_tcp::verify_pattern(0, tcp.payload()),
            None,
            "no attacker byte in the emitted stream"
        );
    }

    #[test]
    fn duplicate_retransmission_drops_silently() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        let pkt = data_pkt(5000, 0, 1000);
        assert!(eng.push(0, pkt.clone()).is_empty());
        assert!(eng.push(1, pkt).is_empty(), "exact duplicate absorbed");
        assert_eq!(eng.stats.dropped_duplicate_segs, 1);
        let out = eng.flush_all();
        assert_eq!(total_payload(&out), 1000, "bytes counted once");
    }

    #[test]
    fn straddling_retransmit_appends_only_the_new_tail() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        assert!(eng.push(0, data_pkt(5000, 0, 1000)).is_empty());
        // Retransmit covering 500..1500: bytes 500..1000 match what is
        // held (same deterministic fill), 1000..1500 are new.
        assert!(eng.push(1, data_pkt(5000, 500, 1000)).is_empty());
        let out = eng.flush_all();
        assert_eq!(out.len(), 1);
        assert_eq!(total_payload(&out), 1500, "tail merged once");
        let ip = Ipv4Packet::new_checked(&out[0][..]).unwrap();
        assert!(ip.verify_checksum());
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(
            tcp.verify_checksum(ip.src(), ip.dst()),
            "checksum covers the trimmed append"
        );
    }

    #[test]
    fn below_window_old_data_forwards_verbatim() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        assert!(eng.push(0, data_pkt(5000, 10_000, 1000)).is_empty());
        let old = data_pkt(5000, 2000, 500);
        let out = eng.push(1, old.clone());
        assert_eq!(out, vec![old], "old retransmission passes through");
        assert_eq!(eng.stats.below_window_forwarded, 1);
        assert_eq!(eng.table.len(), 1, "aggregate undisturbed");
    }

    #[test]
    fn flows_merge_independently() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        let mut out = Vec::new();
        for i in 0..6u32 {
            out.extend(eng.push(0, data_pkt(5000, i * 1460, 1460)));
            out.extend(eng.push(0, data_pkt(5001, i * 1460, 1460)));
        }
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|p| p.len() == 8800));
    }

    #[test]
    fn disabled_hold_emits_immediately() {
        let mut eng = MergeEngine::new(MergeConfig {
            hold_ns: 0,
            ..Default::default()
        });
        let out = eng.push(0, data_pkt(5000, 0, 1000));
        assert_eq!(out.len(), 1, "no delayed merging: passthrough");
    }

    #[test]
    fn eviction_flushes_victim() {
        let mut eng = MergeEngine::new(MergeConfig {
            table_capacity: 2,
            ..Default::default()
        });
        eng.push(0, data_pkt(5000, 0, 500));
        eng.push(0, data_pkt(5001, 0, 500));
        let out = eng.push(0, data_pkt(5002, 0, 500));
        assert_eq!(out.len(), 1, "LRU victim flushed");
        assert_eq!(eng.stats.flush_evict, 1);
    }

    #[test]
    fn conversion_yield_accounting() {
        let cfg = MergeConfig::default();
        let mut eng = MergeEngine::new(cfg);
        let mut out = Vec::new();
        // One full jumbo + one timed-out runt.
        for i in 0..6u32 {
            out.extend(eng.push(0, data_pkt(5000, i * 1460, 1460)));
        }
        eng.push(0, data_pkt(6000, 0, 1460));
        out.extend(eng.poll(u64::MAX));
        assert_eq!(out.len(), 2);
        let y = eng.stats.conversion_yield(&cfg);
        assert!(
            (y - 0.5).abs() < 1e-9,
            "1 of 2 output packets is jumbo: {y}"
        );
    }

    #[test]
    fn flush_all_drains() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        eng.push(0, data_pkt(5000, 0, 500));
        eng.push(0, data_pkt(5001, 0, 500));
        assert_eq!(eng.flush_all().len(), 2);
        assert_eq!(eng.table.len(), 0);
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut eng = MergeEngine::new(MergeConfig {
            hold_ns: 100,
            ..Default::default()
        });
        assert_eq!(eng.next_deadline(), None);
        eng.push(50, data_pkt(5000, 0, 500));
        eng.push(10, data_pkt(5001, 0, 500));
        assert_eq!(eng.next_deadline(), Some(110));
    }

    #[test]
    fn flight_recorder_captures_merge_emissions() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        eng.enable_obs(px_obs::ObsConfig::default());
        for i in 0..6u32 {
            eng.push(i as u64 * 10, data_pkt(5000, i * 1460, 1460));
        }
        let events = eng.obs.recent(64);
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::MergeEmit && e.flow == flow_id(5000, 80)),
            "{events:?}"
        );
        // Dwell = emission time (t=50) − first segment time (t=0).
        assert_eq!(eng.obs.hists().dwell_ns.max(), 50);
        assert_eq!(eng.obs.hists().out_bytes.count(), 1);
        let timeline = eng.obs.render_recent(8);
        assert!(timeline.contains("MergeEmit"), "{timeline}");
    }

    #[test]
    fn pool_exhaustion_degrades_to_passthrough_then_recovers() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        eng.enable_obs(px_obs::ObsConfig::default());
        eng.set_pool_live_cap(Some(1));
        let got: std::cell::RefCell<Vec<Vec<u8>>> = std::cell::RefCell::new(Vec::new());
        // Flow A pins the pool's only live buffer.
        let mut sink = |b: PacketBuf| {
            got.borrow_mut().push(b.as_slice().to_vec());
            Some(b)
        };
        eng.push_into(0, &data_pkt(5000, 0, 1000), &mut sink);
        assert!(got.borrow().is_empty(), "held");
        // Flow B cannot get a buffer: degraded passthrough, verbatim.
        let orig = data_pkt(6000, 0, 1000);
        eng.push_into(10, &orig, &mut sink);
        assert_eq!(*got.borrow(), vec![orig.clone()], "forwarded unmerged");
        assert!(eng.is_degraded());
        assert_eq!(eng.stats.degraded_pkts, 1);
        assert_eq!(eng.stats.pool_exhausted, 1);
        assert_eq!(eng.stats.backpressure_drops, 0);
        // The forwarded packet is still protocol-conformant.
        {
            let got = got.borrow();
            let ip = Ipv4Packet::new_checked(&got[0][..]).unwrap();
            assert!(ip.verify_checksum());
            let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
            assert!(tcp.verify_checksum(ip.src(), ip.dst()));
        }
        // Flushing flow A returns its buffer; merging resumes.
        eng.poll_into(u64::MAX, &mut sink);
        assert_eq!(got.borrow().len(), 2);
        eng.push_into(20, &data_pkt(6000, 1000, 1000), &mut sink);
        assert!(!eng.is_degraded(), "recovered on next successful creation");
        let kinds: Vec<EventKind> = eng.obs.recent(16).iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::DegradeEnter), "{kinds:?}");
        assert!(kinds.contains(&EventKind::DegradeExit), "{kinds:?}");
        eng.flush_all_into(&mut sink);
        assert_eq!(eng.pool_outstanding(), 0, "no leaked buffers");
    }

    #[test]
    fn injected_pool_dry_walks_the_full_degradation_ladder() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        eng.set_faults(FaultSpec {
            enabled: true,
            seed: 1,
            pool_dry_ppm: 1_000_000,
            ..FaultSpec::off()
        });
        // Every creation is denied; the spare buffer carries the first
        // packet out. The VecSink behind `push` keeps the buffer, so the
        // second degraded packet hits the last rung: backpressure.
        let p0 = data_pkt(5000, 0, 1000);
        assert_eq!(eng.push(0, p0.clone()), vec![p0]);
        assert!(eng.push(1, data_pkt(5000, 1000, 1000)).is_empty());
        assert_eq!(eng.stats.degraded_pkts, 1);
        assert_eq!(eng.stats.backpressure_drops, 1);
        assert_eq!(eng.stats.pool_exhausted, 2);
        assert_eq!(eng.pool_outstanding(), 0, "the pool was never touched");
    }

    #[test]
    fn injected_table_deny_degrades_with_its_own_cause() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        eng.enable_obs(px_obs::ObsConfig::default());
        eng.set_faults(FaultSpec {
            enabled: true,
            seed: 2,
            table_deny_ppm: 1_000_000,
            ..FaultSpec::off()
        });
        let p0 = data_pkt(5000, 0, 1000);
        assert_eq!(eng.push(0, p0.clone()), vec![p0]);
        assert_eq!(eng.stats.degraded_pkts, 1);
        assert_eq!(
            eng.stats.pool_exhausted, 0,
            "denied by the table, not the pool"
        );
        let enter = eng
            .obs
            .recent(4)
            .iter()
            .find(|e| e.kind == EventKind::DegradeEnter)
            .copied()
            .expect("DegradeEnter recorded");
        assert_eq!(enter.aux, 2, "cause = table denial");
    }

    /// Steering on, a sparse flow: every packet hairpins byte-for-byte
    /// and no merge state is touched — no flow-table slot, no pool
    /// aggregate, no merge counters.
    #[test]
    fn steering_hairpins_mice_byte_for_byte() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        eng.enable_steer(SteerConfig::default());
        let got: std::cell::RefCell<Vec<Vec<u8>>> = std::cell::RefCell::new(Vec::new());
        let mut sink = |b: PacketBuf| {
            got.borrow_mut().push(b.as_slice().to_vec());
            Some(b)
        };
        let pkts: Vec<Vec<u8>> = (0..5u32).map(|i| data_pkt(5000, i * 100, 100)).collect();
        for p in &pkts {
            eng.push_into(0, p, &mut sink);
        }
        assert_eq!(*got.borrow(), pkts, "hairpin is verbatim, in order");
        assert_eq!(eng.stats.steered_mice_pkts, 5);
        assert_eq!(eng.stats.pkts_in, 5);
        assert_eq!(eng.stats.data_segs_in, 0, "merge path untouched");
        assert_eq!(eng.stats.passthrough, 0, "steering is its own counter");
        assert_eq!(eng.stats.flush_full + eng.stats.flush_timeout, 0);
        assert_eq!(eng.table.len(), 0, "no merge state for mice");
        assert_eq!(eng.pool_outstanding(), 0);
        assert_eq!(eng.flows_live(), 1, "classifier tracks the mouse");
    }

    /// Steering on, a bulk flow: the pre-threshold packets hairpin, the
    /// rest merge — and the byte stream is conserved across both paths.
    #[test]
    fn steering_promotes_elephants_into_the_merge_path() {
        let cfg = MergeConfig::default();
        let mut eng = MergeEngine::new(cfg);
        eng.enable_steer(SteerConfig::default()); // elephant_pkts = 8
        let got: std::cell::RefCell<Vec<Vec<u8>>> = std::cell::RefCell::new(Vec::new());
        let mut sink = |b: PacketBuf| {
            got.borrow_mut().push(b.as_slice().to_vec());
            Some(b)
        };
        for i in 0..12u32 {
            eng.push_into(
                u64::from(i) * 10,
                &data_pkt(5000, i * 1460, 1460),
                &mut sink,
            );
        }
        eng.flush_all_into(&mut sink);
        assert_eq!(eng.stats.steered_mice_pkts, 7, "packets 1..7 hairpinned");
        assert_eq!(eng.stats.data_segs_in, 5, "packets 8..12 merged");
        assert_eq!(eng.steer().unwrap().promotions, 1);
        // Conservation across both paths: every payload byte came out.
        let total_out: usize = total_payload(&got.borrow());
        assert_eq!(total_out, 12 * 1460);
        // The merged tail is one aggregate of the 5 post-promotion
        // segments, contiguous from where the hairpin left off.
        let got = got.borrow();
        assert_eq!(got.len(), 8);
        assert_eq!(got[7].len(), 40 + 5 * 1460);
        let ip = Ipv4Packet::new_checked(&got[7][..]).unwrap();
        assert!(ip.verify_checksum());
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum(ip.src(), ip.dst()));
        assert_eq!(tcp.seq().0, 7 * 1460);
        assert_eq!(eng.pool_outstanding(), 0);
    }

    /// Recycling sink: after a full drain nothing may be leaked from the
    /// pool, and the steady-state loop reuses buffers instead of
    /// allocating.
    #[test]
    fn pool_buffers_are_recycled_not_leaked() {
        let mut eng = MergeEngine::new(MergeConfig::default());
        let mut sink = |b: PacketBuf| Some(b); // recycle everything
        for round in 0..50u32 {
            for i in 0..6u32 {
                eng.push_into(0, &data_pkt(5000, round * 8760 + i * 1460, 1460), &mut sink);
            }
        }
        eng.flush_all_into(&mut sink);
        assert_eq!(eng.pool_outstanding(), 0, "no leaked buffers");
        // One buffer per concurrent aggregate, not per packet.
        assert!(
            eng.pool_stats().allocated <= 4,
            "steady state allocates nothing: {:?}",
            eng.pool_stats()
        );
    }
}
