//! The PXGW split engine: iMTU → eMTU segmentation.
//!
//! Splitting is stateless and "inherently scalable" (§3): every jumbo
//! packet can be cut independently. TCP packets are TSO-split (sequence
//! numbers advance, checksums recomputed, FIN/PSH only on the last
//! piece); non-TCP packets that exceed the eMTU fall back to IPv4
//! fragmentation when DF allows (UDP caravans never reach this engine —
//! [`crate::caravan_gw`] unbundles them first).

use px_obs::{flow_id, EventKind, ObsConfig, Recorder, SpanCat};
use px_sim::nic::{tso_split_into, tso_split_sg_into};
use px_sim::stats::SizeHistogram;
use px_wire::bytes;
use px_wire::frag::fragment_into;
use px_wire::ipv4::Ipv4Packet;
use px_wire::pool::{BufPool, PacketSink, PoolStats, SgPacket, SgRc};
use px_wire::{IpProtocol, PacketBuf};

/// A sink adapter that records every emitted packet's size into a
/// [`SizeHistogram`] (and, when observability is on, a [`SplitEmit`]
/// flight-recorder event) before forwarding it — how the engines keep
/// their `out_sizes` accounting on the sink-based hot path.
///
/// [`SplitEmit`]: EventKind::SplitEmit
pub(crate) struct RecordingSink<'a, S> {
    pub sizes: &'a mut SizeHistogram,
    pub obs: &'a mut Recorder,
    /// Logical timestamp for emitted events: the split engine has no
    /// clock, so this is its input-packet counter (deterministic).
    pub ts: u64,
    /// Flow id of the packet being split (all emissions share it).
    pub flow: u32,
    /// Causal link id tying every emitted `Split` span back to the
    /// producing `Merge`/`Caravan` span (0 = unlinked).
    pub link: u64,
    pub inner: &'a mut S,
}

impl<S: PacketSink> RecordingSink<'_, S> {
    fn note_emit(&mut self, len: usize) {
        self.sizes.record(len);
        self.obs
            .record(EventKind::SplitEmit, self.ts, len as u32, self.flow, 0);
        self.obs.record_span(
            SpanCat::Split,
            self.ts,
            0,
            len as u32,
            self.flow,
            0,
            self.link,
        );
        self.obs.observe_out_size(len as u64);
    }
}

impl<S: PacketSink> PacketSink for RecordingSink<'_, S> {
    fn accept(&mut self, buf: PacketBuf) -> Option<PacketBuf> {
        self.note_emit(buf.len());
        self.inner.accept(buf)
    }

    /// Scatter-gather emissions are accounted from the view's lengths —
    /// no flattening — then forwarded as views so the inner sink keeps
    /// its zero-copy opportunity.
    fn push_sg(&mut self, pkt: SgPacket<'_>) -> Option<PacketBuf> {
        let len = pkt.total_len();
        self.note_emit(len);
        self.inner.push_sg(pkt)
    }
}

/// Split-engine counters.
#[derive(Debug, Default, Clone)]
pub struct SplitStats {
    /// Input packets.
    pub pkts_in: u64,
    /// Packets that required splitting.
    pub split: u64,
    /// TCP wire segments produced by splitting.
    pub segments_out: u64,
    /// Non-TCP packets IPv4-fragmented.
    pub fragmented: u64,
    /// Oversize packets with DF set that had to be dropped (the gateway
    /// counts these; a correctly configured b-network produces none for
    /// TCP because MSS rewriting bounds segment sizes).
    pub dropped_df: u64,
    /// Oversize packets dropped because they could not be parsed or
    /// re-segmented (malformed headers). Every input that produces no
    /// output increments exactly one of the dropped counters.
    pub dropped_malformed: u64,
    /// Output size distribution.
    pub out_sizes: SizeHistogram,
}

/// The split engine.
#[derive(Debug)]
pub struct SplitEngine {
    /// External MTU to split down to.
    pub emtu: usize,
    pool: BufPool,
    /// Counters.
    pub stats: SplitStats,
    /// Flight recorder + histograms (disabled by default — zero cost).
    pub obs: Recorder,
    /// Emit TCP splits as scatter-gather views (default). Off = the
    /// legacy flat-copy splitter, kept for A/B benchmarking.
    sg: bool,
    /// Live-view counter for the jumbo currently being split. Emission
    /// is synchronous, so the count is back to zero by the time
    /// `push_to_into` returns — the debug assertion that proves the
    /// caller may reuse the input buffer immediately.
    view_rc: SgRc,
    /// Causal link id stamped on the `Split` spans of the *next* pushed
    /// packet (0 = unlinked). Set by the trace harness, which knows
    /// which producing `Merge`/`Caravan` span the packet came from.
    span_link: u64,
}

impl SplitEngine {
    /// Creates a split engine targeting `emtu`.
    pub fn new(emtu: usize) -> Self {
        SplitEngine {
            emtu,
            pool: BufPool::for_mtu(emtu, 256),
            stats: SplitStats::default(),
            obs: Recorder::off(),
            sg: true,
            view_rc: SgRc::new(),
            span_link: 0,
        }
    }

    /// Stamps the `Split` spans of subsequently pushed packets with a
    /// causal link id (0 clears it). The trace exporter draws a flow
    /// arrow from the producing `Merge`/`Caravan` span to every `Split`
    /// span sharing its link id.
    pub fn set_span_link(&mut self, link: u64) {
        self.span_link = link;
    }

    /// Selects scatter-gather (true, default) or flat-copy (false)
    /// emission for TCP splits. Output bytes are identical either way.
    pub fn set_sg(&mut self, on: bool) {
        self.sg = on;
    }

    /// Switches the flight recorder + histograms on.
    pub fn enable_obs(&mut self, cfg: ObsConfig) {
        self.obs = Recorder::new(cfg);
    }

    /// Buffer-pool counters (allocation accounting).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats
    }

    /// Processes one packet leaving the b-network, delivering wire
    /// packets that all fit within the eMTU to `sink`.
    pub fn push_into(&mut self, pkt: &[u8], sink: &mut impl PacketSink) {
        let mtu = self.emtu;
        self.push_to_into(pkt, mtu, sink);
    }

    /// Like [`Self::push_into`] but with a per-destination target MTU
    /// (the PMTUD-aware path: split only as far down as the discovered
    /// path MTU requires).
    pub fn push_to_into(&mut self, pkt: &[u8], mtu: usize, sink: &mut impl PacketSink) {
        self.stats.pkts_in += 1;
        // Logical event timestamp: this engine has no clock, so events
        // are stamped with the input-packet index (deterministic).
        let ts = self.stats.pkts_in;
        if pkt.len() <= mtu {
            self.stats.out_sizes.record(pkt.len());
            self.obs.observe_out_size(pkt.len() as u64);
            // Pass-through as an all-payload view: sinks that understand
            // scatter-gather forward it copy-free; the rest materialise
            // into the (empty) pooled header segment — the old single
            // copy, never more.
            let view = SgPacket::new(self.pool.get(), pkt, &self.view_rc);
            if let Some(b) = sink.push_sg(view) {
                self.pool.put(b);
            }
            debug_assert_eq!(self.view_rc.views(), 0);
            return;
        }
        let Ok(ip) = Ipv4Packet::new_checked(pkt) else {
            // Unparseable oversize packet: drop.
            self.stats.dropped_malformed += 1;
            self.obs
                .record(EventKind::DropMalformed, ts, pkt.len() as u32, 0, 0);
            return;
        };
        let l4 = ip.payload();
        let flow = flow_id(bytes::be16(l4, 0), bytes::be16(l4, 2));
        let mut recorded = RecordingSink {
            sizes: &mut self.stats.out_sizes,
            obs: &mut self.obs,
            ts,
            flow,
            link: self.span_link,
            inner: sink,
        };
        match ip.protocol() {
            IpProtocol::Tcp => {
                let res = if self.sg {
                    tso_split_sg_into(pkt, mtu, &mut self.pool, &self.view_rc, &mut recorded)
                } else {
                    tso_split_into(pkt, mtu, &mut self.pool, &mut recorded)
                };
                debug_assert_eq!(self.view_rc.views(), 0, "views outlived emission");
                match res {
                    Ok(n) => {
                        self.stats.split += 1;
                        self.stats.segments_out += n as u64;
                    }
                    Err(_) => {
                        // A jumbo TCP packet the TSO splitter cannot parse.
                        self.stats.dropped_malformed += 1;
                        self.obs
                            .record(EventKind::DropMalformed, ts, pkt.len() as u32, flow, 0);
                    }
                }
            }
            _ => match fragment_into(pkt, mtu, &mut self.pool, &mut recorded) {
                Ok(_) => {
                    self.stats.split += 1;
                    self.stats.fragmented += 1;
                }
                Err(_) => {
                    // DF set on an oversize non-TCP packet.
                    self.stats.dropped_df += 1;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_wire::ipv4::Ipv4Repr;
    use px_wire::pool::VecSink;
    use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr, TcpSegment};
    use px_wire::UdpRepr;
    use std::net::Ipv4Addr;

    /// Sink-based split collected into `Vec`s — what the removed
    /// `push`/`push_to` compatibility wrappers used to do, kept local to
    /// the tests that assert on whole output packets.
    fn push_vec(eng: &mut SplitEngine, pkt: &[u8]) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        eng.push_into(pkt, &mut sink);
        sink.into_pkts()
    }

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);
    const DST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);

    fn jumbo_tcp(len: usize) -> Vec<u8> {
        let mut payload = vec![0u8; len];
        px_tcp::fill_pattern(7777, &mut payload);
        let mut flags = TcpFlags::ACK;
        flags.psh = true;
        let repr = TcpRepr {
            src_port: 80,
            dst_port: 5000,
            seq: SeqNum(7777),
            ack: SeqNum(1),
            flags,
            window: 5000,
            options: vec![],
        };
        let seg = repr.build_segment(SRC, DST, &payload);
        Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
            .build_packet(&seg)
            .unwrap()
    }

    #[test]
    fn jumbo_tcp_splits_to_emtu() {
        let mut eng = SplitEngine::new(1500);
        let out = push_vec(&mut eng, &jumbo_tcp(8760));
        assert_eq!(out.len(), 6);
        for (i, p) in out.iter().enumerate() {
            assert!(p.len() <= 1500);
            let ip = Ipv4Packet::new_checked(&p[..]).unwrap();
            assert!(ip.verify_checksum());
            let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
            assert!(tcp.verify_checksum(ip.src(), ip.dst()));
            assert_eq!(tcp.flags().psh, i == out.len() - 1);
        }
        // Stream content preserved across the split.
        let mut off = 7777u64;
        for p in &out {
            let ip = Ipv4Packet::new_checked(&p[..]).unwrap();
            let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
            assert_eq!(px_tcp::verify_pattern(off, tcp.payload()), None);
            off += tcp.payload().len() as u64;
        }
        assert_eq!(eng.stats.segments_out, 6);
    }

    #[test]
    fn small_packets_pass_through() {
        let mut eng = SplitEngine::new(1500);
        let pkt = jumbo_tcp(100);
        let out = push_vec(&mut eng, &pkt);
        assert_eq!(out, vec![pkt]);
        assert_eq!(eng.stats.split, 0);
    }

    #[test]
    fn oversize_udp_fragments_when_df_clear() {
        let dg = UdpRepr {
            src_port: 1,
            dst_port: 2,
        }
        .build_datagram(SRC, DST, &vec![0u8; 4000])
        .unwrap();
        let pkt = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap();
        let mut eng = SplitEngine::new(1500);
        let out = push_vec(&mut eng, &pkt);
        assert!(out.len() >= 3);
        assert_eq!(eng.stats.fragmented, 1);
    }

    #[test]
    fn oversize_udp_with_df_drops() {
        let dg = UdpRepr {
            src_port: 1,
            dst_port: 2,
        }
        .build_datagram(SRC, DST, &vec![0u8; 4000])
        .unwrap();
        let mut repr = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, dg.len());
        repr.dont_frag = true;
        let pkt = repr.build_packet(&dg).unwrap();
        let mut eng = SplitEngine::new(1500);
        assert!(push_vec(&mut eng, &pkt).is_empty());
        assert_eq!(eng.stats.dropped_df, 1);
    }

    #[test]
    fn flight_recorder_captures_split_emissions() {
        let mut eng = SplitEngine::new(1500);
        eng.enable_obs(px_obs::ObsConfig::default());
        let out = push_vec(&mut eng, &jumbo_tcp(8760));
        assert_eq!(out.len(), 6);
        let events = eng.obs.recent(64);
        let splits: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::SplitEmit)
            .collect();
        assert_eq!(splits.len(), 6);
        // All six share the input packet's logical index and flow id.
        assert!(splits.iter().all(|e| e.ts == 1), "{splits:?}");
        assert!(
            splits.iter().all(|e| e.flow == flow_id(80, 5000)),
            "{splits:?}"
        );
        assert_eq!(eng.obs.hists().out_bytes.count(), 6);

        // Malformed oversize input records a drop event.
        assert!(push_vec(&mut eng, &[0u8; 4000]).is_empty());
        assert!(eng
            .obs
            .recent(64)
            .iter()
            .any(|e| e.kind == EventKind::DropMalformed && e.ts == 2));
    }

    #[test]
    fn sg_and_flat_splitters_agree_on_bytes_and_stats() {
        for len in [100usize, 1460, 4000, 8760] {
            let pkt = jumbo_tcp(len);
            let mut sg = SplitEngine::new(1500);
            let mut flat = SplitEngine::new(1500);
            flat.set_sg(false);
            assert_eq!(
                push_vec(&mut sg, &pkt),
                push_vec(&mut flat, &pkt),
                "len={len}"
            );
            assert_eq!(sg.stats.split, flat.stats.split);
            assert_eq!(sg.stats.segments_out, flat.stats.segments_out);
            assert_eq!(sg.stats.dropped_malformed, flat.stats.dropped_malformed);
        }
    }

    #[test]
    fn sg_split_recycles_every_buffer_with_a_recycling_sink() {
        let mut eng = SplitEngine::new(1500);
        let mut total = 0usize;
        for i in 0..32u32 {
            let pkt = jumbo_tcp(1000 + (i as usize) * 250);
            eng.push_into(&pkt, &mut |b: px_wire::PacketBuf| {
                total += b.len();
                Some(b)
            });
        }
        assert!(total > 0);
        let ps = eng.pool_stats();
        assert_eq!(
            ps.gets - ps.puts - ps.dropped,
            0,
            "all segment buffers returned to the pool"
        );
    }

    #[test]
    fn merge_then_split_is_identity_on_the_stream() {
        // Six segments → merge → one jumbo → split → six segments, same
        // byte stream.
        use crate::merge::{MergeConfig, MergeEngine};
        let mut merge = MergeEngine::new(MergeConfig::default());
        let mut jumbo = Vec::new();
        for i in 0..6u32 {
            let mut payload = vec![0u8; 1460];
            px_tcp::fill_pattern(u64::from(i) * 1460, &mut payload);
            let repr = TcpRepr {
                src_port: 5000,
                dst_port: 80,
                seq: SeqNum(i * 1460),
                ack: SeqNum(1),
                flags: TcpFlags::ACK,
                window: 5000,
                options: vec![],
            };
            let seg = repr.build_segment(SRC, DST, &payload);
            let pkt = Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
                .build_packet(&seg)
                .unwrap();
            jumbo.extend(merge.push(0, pkt));
        }
        assert_eq!(jumbo.len(), 1);
        let mut split = SplitEngine::new(1500);
        let back = push_vec(&mut split, &jumbo.pop().unwrap());
        assert_eq!(back.len(), 6);
        let mut off = 0u64;
        for p in &back {
            let ip = Ipv4Packet::new_checked(&p[..]).unwrap();
            let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
            assert_eq!(px_tcp::verify_pattern(off, tcp.payload()), None);
            off += tcp.payload().len() as u64;
        }
        assert_eq!(off, 6 * 1460);
    }
}
