//! Ordered segment coalescing for the merge engine's adversarial surface.
//!
//! The original merge engine accepted only *exactly contiguous* segments
//! (`meta.seq == pending.next_seq`) and flushed on anything else. That is
//! safe but fragile in two opposite ways: a single reordered segment
//! destroys conversion yield, and the flush-and-restart policy gives an
//! on-path attacker a free yield-degradation lever. Worse, a reassembler
//! that *did* accept overlaps naively would let an attacker smuggle bytes
//! under a retransmission: classic overlapping-fragment evasion, see
//! "A New Model for Testing IPv6 Fragment Handling" (PAPERS.md).
//!
//! This module supplies the two pieces the hardened engine needs:
//!
//! * [`classify`] — a pure verdict function placing one arriving segment
//!   relative to a flow's held aggregate. Overlapping bytes must be
//!   **bit-identical** to what the aggregate already attests; a mismatch
//!   is an injection attempt ([`OverlapVerdict::Inconsistent`]), and a
//!   segment straddling the aggregate's lower edge (bytes we can no
//!   longer attest) is overlap evasion ([`OverlapVerdict::Evasion`]).
//!   The engine never emits a merged byte that was not consistently
//!   attested by every segment claiming its sequence range.
//! * [`SegStash`] — a small fixed-capacity, allocation-free parking lot
//!   for out-of-order segments that arrive *ahead* of the contiguous
//!   edge ([`OverlapVerdict::Future`]). Mild reordering then costs
//!   nothing: the stashed segment coalesces as soon as the gap fills,
//!   instead of forcing a flush.
//!
//! Both are deterministic and flow-local: verdicts depend only on the
//! aggregate's bytes and the segment's bytes, never on wall clock or
//! cross-flow state, so per-flow digests stay bit-identical across core
//! counts (the engine's sharding invariant).

use px_wire::bytes;
use px_wire::{FlowKey, PacketBuf};

/// Where an arriving data segment falls relative to a held aggregate
/// covering `[base_seq, base_seq + held.len())` in TCP sequence space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapVerdict {
    /// The segment extends the aggregate: its first `trim` payload bytes
    /// duplicate (and were verified identical to) the aggregate's tail;
    /// the rest is new, contiguous data. `trim == 0` is the exactly
    /// contiguous fast path.
    Append {
        /// Leading payload bytes already held (verified identical).
        trim: usize,
    },
    /// Full retransmission of bytes already held, bit-identical. Safe to
    /// drop silently: the receiver-side byte stream is unchanged.
    Duplicate,
    /// The segment claims a sequence range the aggregate holds, with
    /// different bytes — an injection attempt (or severe corruption that
    /// survived checksums). Never merged, never forwarded.
    Inconsistent,
    /// The segment overlaps the aggregate but begins *before* its base —
    /// bytes this aggregate can no longer attest. Accepting the tail
    /// would launder unattestable bytes behind a partial match (the
    /// overlapping-fragment evasion pattern), so it is dropped.
    Evasion,
    /// The segment lies entirely before the aggregate's base: old data
    /// (e.g. a retransmission from before this aggregate existed). Not
    /// mergeable, but not evidence of attack — forward it verbatim with
    /// its original end-to-end checksum intact.
    Below,
    /// The segment starts beyond the contiguous edge (a gap precedes
    /// it). Park it in the [`SegStash`] until the gap fills.
    Future,
}

/// Classifies `seg_payload` (first byte at `seg_seq`) against the held
/// aggregate payload `held` (first byte at `base_seq`).
///
/// Sequence arithmetic is wrapping: positions are compared through the
/// signed 32-bit difference, the standard TCP window interpretation
/// (|offset| < 2^31). Empty segments never reach the merge path
/// (`Verdict::NotMergeable`), but classify degenerates safely to
/// `Duplicate` for them.
pub fn classify(held: &[u8], base_seq: u32, seg_seq: u32, seg_payload: &[u8]) -> OverlapVerdict {
    let held_len = held.len() as i64;
    let seg_len = seg_payload.len() as i64;
    let rel = i64::from(seg_seq.wrapping_sub(base_seq) as i32);
    if seg_len == 0 {
        return OverlapVerdict::Duplicate;
    }
    if rel >= held_len {
        return if rel == held_len {
            OverlapVerdict::Append { trim: 0 }
        } else {
            OverlapVerdict::Future
        };
    }
    if rel < 0 {
        if rel + seg_len <= 0 {
            return OverlapVerdict::Below;
        }
        // Straddles the base: compare the attestable part, but never
        // accept — the head below `base_seq` cannot be verified.
        let ov = (rel + seg_len).min(held_len) as usize;
        let skip = (-rel) as usize;
        // `skip + ov <= seg_len` and `ov <= held_len` by the arithmetic
        // above; the checked helpers keep the comparison panic-free.
        if bytes::range(seg_payload, skip, skip + ov) != bytes::range_to(held, ov) {
            return OverlapVerdict::Inconsistent;
        }
        return OverlapVerdict::Evasion;
    }
    // 0 <= rel < held_len: overlaps held bytes from `rel`.
    let at = rel as usize;
    let ov = (held_len - rel).min(seg_len) as usize;
    if bytes::range_to(seg_payload, ov) != bytes::range(held, at, at + ov) {
        return OverlapVerdict::Inconsistent;
    }
    if rel + seg_len <= held_len {
        OverlapVerdict::Duplicate
    } else {
        OverlapVerdict::Append { trim: ov }
    }
}

/// One parked out-of-order segment: the packet bytes (trimmed to the IP
/// total length) plus the cached parse facts the eventual append needs,
/// so draining the stash re-reads no header bytes.
#[derive(Debug)]
pub struct StashedSeg {
    /// Flow the segment belongs to.
    pub key: FlowKey,
    /// TCP sequence number of the first payload byte.
    pub seq: u32,
    /// Whether the segment carried PSH.
    pub psh: bool,
    /// IPv4 header length in bytes.
    pub ip_hlen: u8,
    /// TCP header length in bytes.
    pub tcp_hlen: u8,
    /// Ones-complement partial sum of the payload (checksum cache).
    pub payload_sum: u16,
    /// The packet, exactly `total_len` bytes (padding already trimmed).
    pub buf: PacketBuf,
}

impl StashedSeg {
    /// The segment's TCP payload bytes.
    pub fn payload(&self) -> &[u8] {
        let hdrs = usize::from(self.ip_hlen) + usize::from(self.tcp_hlen);
        px_wire::bytes::range_from(self.buf.as_slice(), hdrs)
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload().len()
    }
}

/// Default total stash capacity (segments, across all flows).
pub const STASH_CAP: usize = 32;
/// Default per-flow stash ceiling: one flow's reordering burst may not
/// monopolise the shared stash.
pub const STASH_PER_FLOW: usize = 4;

/// A fixed-capacity, allocation-free store of out-of-order segments.
///
/// Capacity is preallocated at construction; inserts beyond it (total or
/// per-flow) are refused and the caller falls back to the historical
/// flush-and-restart path — strictly no worse than the old engine.
/// Lookup is a linear scan: the stash is tiny and empty in the
/// steady state (the in-order hot path pays one `is_empty()` branch).
///
/// Invariant (maintained by the engine): every stashed segment belongs
/// to a flow with a live pending aggregate, and is removed — appended,
/// dropped, or forwarded — when that aggregate goes away. The pooled
/// buffers inside are therefore never leaked across a drain.
#[derive(Debug)]
pub struct SegStash {
    /// `(arrival stamp, segment)`: the stamp makes drain order stable.
    slots: Vec<(u64, StashedSeg)>,
    per_flow: usize,
    /// Monotonic insert counter — the arrival-order tie-break.
    next_stamp: u64,
}

impl SegStash {
    /// Creates a stash with `cap` total slots and `per_flow` per flow.
    pub fn new(cap: usize, per_flow: usize) -> Self {
        SegStash {
            slots: Vec::with_capacity(cap),
            per_flow,
            next_stamp: 0,
        }
    }

    /// Whether no segment is parked (the hot-path early-out).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Parked segments, across all flows.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Parks a segment. Refused (returned back) when the stash or the
    /// flow's allowance is full — the caller keeps ownership of the
    /// buffer and falls back to flushing.
    pub fn insert(&mut self, seg: StashedSeg) -> Result<(), StashedSeg> {
        if self.slots.len() == self.slots.capacity() {
            return Err(seg);
        }
        let flow_held = self.slots.iter().filter(|(_, s)| s.key == seg.key).count();
        if flow_held >= self.per_flow {
            return Err(seg);
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.slots.push((stamp, seg));
        Ok(())
    }

    /// Removes and returns the lowest-sequence stashed segment of `key`
    /// that is *actionable* against an aggregate whose contiguous edge is
    /// `next_seq` (base `base_seq`): it starts at or before the edge, so
    /// it can append, duplicate, or conflict — but no longer `Future`.
    pub fn take_actionable(
        &mut self,
        key: &FlowKey,
        base_seq: u32,
        next_seq: u32,
    ) -> Option<StashedSeg> {
        let edge = i64::from(next_seq.wrapping_sub(base_seq) as i32);
        self.take_min_where(key, base_seq, |rel| rel <= edge)
    }

    /// Removes and returns the lowest-sequence stashed segment of `key`,
    /// regardless of position (drain order for flush paths).
    pub fn take_min(&mut self, key: &FlowKey, base_seq: u32) -> Option<StashedSeg> {
        self.take_min_where(key, base_seq, |_| true)
    }

    /// The scan orders candidates by `(rel, arrival stamp)`: equal-rel
    /// segments drain in arrival order, regardless of how `swap_remove`
    /// has shuffled the slots. With an adversary replaying an
    /// already-sent range with altered bytes, both copies can be parked
    /// under the same rel — the stamp guarantees the first-arrived
    /// (legitimate) copy is re-emitted first, so the attacker's copy is
    /// never the first write at any stream position downstream.
    fn take_min_where(
        &mut self,
        key: &FlowKey,
        base_seq: u32,
        keep: impl Fn(i64) -> bool,
    ) -> Option<StashedSeg> {
        let mut best: Option<(usize, i64, u64)> = None;
        for (i, (stamp, s)) in self.slots.iter().enumerate() {
            if s.key != *key {
                continue;
            }
            let rel = i64::from(s.seq.wrapping_sub(base_seq) as i32);
            if !keep(rel) {
                continue;
            }
            if best.map_or(true, |(_, r, t)| (rel, *stamp) < (r, t)) {
                best = Some((i, rel, *stamp));
            }
        }
        best.map(|(i, _, _)| self.slots.swap_remove(i).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(port: u16) -> FlowKey {
        FlowKey {
            src_ip: Ipv4Addr::new(1, 1, 1, 1),
            dst_ip: Ipv4Addr::new(2, 2, 2, 2),
            src_port: port,
            dst_port: 80,
            proto: px_wire::IpProtocol::Tcp,
        }
    }

    fn seg(port: u16, seq: u32, payload: &[u8]) -> StashedSeg {
        let mut buf = PacketBuf::with_headroom(0);
        buf.extend_from_slice(&[0u8; 40]);
        buf.extend_from_slice(payload);
        StashedSeg {
            key: key(port),
            seq,
            psh: false,
            ip_hlen: 20,
            tcp_hlen: 20,
            payload_sum: 0,
            buf,
        }
    }

    #[test]
    fn classify_contiguous_and_future() {
        let held = b"abcdefgh";
        assert_eq!(
            classify(held, 100, 108, b"ij"),
            OverlapVerdict::Append { trim: 0 }
        );
        assert_eq!(classify(held, 100, 110, b"kl"), OverlapVerdict::Future);
    }

    #[test]
    fn classify_duplicates_and_straddles() {
        let held = b"abcdefgh";
        // Fully contained, identical: duplicate.
        assert_eq!(classify(held, 100, 102, b"cde"), OverlapVerdict::Duplicate);
        assert_eq!(classify(held, 100, 100, b"abcdefgh"), OverlapVerdict::Duplicate);
        // Straddling retransmit with a new tail: append the tail only.
        assert_eq!(
            classify(held, 100, 106, b"ghIJ"),
            OverlapVerdict::Append { trim: 2 }
        );
    }

    #[test]
    fn classify_detects_injection() {
        let held = b"abcdefgh";
        // Same range, different bytes.
        assert_eq!(
            classify(held, 100, 102, b"cXe"),
            OverlapVerdict::Inconsistent
        );
        // Straddling tail whose overlap mismatches.
        assert_eq!(
            classify(held, 100, 106, b"XhIJ"),
            OverlapVerdict::Inconsistent
        );
    }

    #[test]
    fn classify_below_and_evasion() {
        let held = b"abcdefgh";
        // Entirely before the base: old data, not an attack.
        assert_eq!(classify(held, 100, 90, b"0123456789"), OverlapVerdict::Below);
        // Straddles the base with a matching attestable part: evasion
        // (the head cannot be verified).
        assert_eq!(classify(held, 100, 98, b"??abcd"), OverlapVerdict::Evasion);
        // Straddles the base with a mismatching attestable part.
        assert_eq!(
            classify(held, 100, 98, b"??Xbcd"),
            OverlapVerdict::Inconsistent
        );
    }

    #[test]
    fn classify_wraps_sequence_space() {
        let held = b"abcd";
        let base = u32::MAX - 1; // held covers [MAX-1, MAX, 0, 1]
        assert_eq!(
            classify(held, base, 2, b"ef"),
            OverlapVerdict::Append { trim: 0 }
        );
        assert_eq!(classify(held, base, 0, b"cd"), OverlapVerdict::Duplicate);
        assert_eq!(classify(held, base, 0, b"cX"), OverlapVerdict::Inconsistent);
    }

    #[test]
    fn stash_caps_total_and_per_flow() {
        let mut st = SegStash::new(4, 2);
        assert!(st.insert(seg(1, 0, b"a")).is_ok());
        assert!(st.insert(seg(1, 10, b"b")).is_ok());
        // Per-flow allowance exhausted.
        assert!(st.insert(seg(1, 20, b"c")).is_err());
        assert!(st.insert(seg(2, 0, b"d")).is_ok());
        assert!(st.insert(seg(3, 0, b"e")).is_ok());
        // Total capacity exhausted.
        assert!(st.insert(seg(4, 0, b"f")).is_err());
        assert_eq!(st.len(), 4);
    }

    #[test]
    fn stash_takes_in_sequence_order_per_flow() {
        let mut st = SegStash::new(8, 8);
        st.insert(seg(1, 300, b"c")).unwrap();
        st.insert(seg(1, 100, b"a")).unwrap();
        st.insert(seg(2, 50, b"x")).unwrap();
        st.insert(seg(1, 200, b"b")).unwrap();
        // Only segments at/below the edge are actionable.
        let got = st.take_actionable(&key(1), 0, 200);
        assert_eq!(got.as_ref().map(|s| s.seq), Some(100));
        let got = st.take_actionable(&key(1), 0, 200);
        assert_eq!(got.as_ref().map(|s| s.seq), Some(200));
        assert!(st.take_actionable(&key(1), 0, 200).is_none(), "300 is future");
        // Drain order ignores the edge.
        assert_eq!(st.take_min(&key(1), 0).map(|s| s.seq), Some(300));
        assert_eq!(st.take_min(&key(2), 0).map(|s| s.seq), Some(50));
        assert!(st.is_empty());
    }

    #[test]
    fn stash_breaks_equal_seq_ties_by_arrival_order() {
        // An on-path injector replays an already-parked range with
        // altered bytes: both copies sit in the stash at the same rel.
        // Drain order must be arrival order — first-arrived (legit)
        // copy out first — and must survive the slot shuffling that
        // `swap_remove` does on unrelated removals.
        let mut st = SegStash::new(8, 8);
        st.insert(seg(1, 100, b"legit")).unwrap();
        st.insert(seg(1, 50, b"early")).unwrap();
        st.insert(seg(1, 100, b"evil!")).unwrap();
        // Removing seq 50 swap_removes slot 1: the evil copy moves to a
        // lower slot index than the legit copy.
        assert_eq!(st.take_min(&key(1), 0).map(|s| s.seq), Some(50));
        let first = st.take_min(&key(1), 0).unwrap();
        assert_eq!(first.seq, 100);
        assert_eq!(first.payload(), b"legit");
        let second = st.take_min(&key(1), 0).unwrap();
        assert_eq!(second.payload(), b"evil!");
        assert!(st.is_empty());
    }

    #[test]
    fn stash_steady_state_never_allocates() {
        let mut st = SegStash::new(4, 4);
        let base = st.slots.capacity();
        for round in 0..100u32 {
            for i in 0..4u32 {
                st.insert(seg(1, round * 4 + i, b"pp")).unwrap();
            }
            while st.take_min(&key(1), 0).is_some() {}
        }
        assert_eq!(st.slots.capacity(), base, "no reallocation");
    }
}
