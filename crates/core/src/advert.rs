//! Explicit iMTU advertisement between adjacent b-networks (§4.2).
//!
//! "If a PX b-network directly neighbors other b-networks, it can extend
//! the network path segment that employs a large MTU by explicitly
//! exchanging the per-network iMTU information … One can augment BGP
//! announcements to carry the AS-level iMTU information, or one can come
//! up with a new messaging protocol that runs on PXGW."
//!
//! This module is that messaging protocol: a tiny TLV message carried
//! over UDP between gateways, a neighbor table with liveness expiry, and
//! the translation decision: when the neighbour's iMTU is at least ours,
//! jumbo TCP packets and PX-caravans cross the border *untranslated*.

use px_wire::{Error, Result};

/// Well-known UDP port for PXGW-to-PXGW iMTU advertisements.
pub const ADVERT_PORT: u16 = 3199;

/// Advertisement message magic ("PXMT").
const MAGIC: [u8; 4] = *b"PXMT";

/// One iMTU advertisement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImtuAdvert {
    /// The advertising network's AS number.
    pub asn: u32,
    /// The iMTU enforced inside that network, bytes.
    pub imtu: u32,
    /// Monotone sequence number (stale updates are ignored).
    pub seq: u32,
    /// Advertisement validity in seconds (refresh before expiry).
    pub ttl_secs: u16,
}

impl ImtuAdvert {
    /// Serializes to the wire format:
    /// `magic(4) asn(4) imtu(4) seq(4) ttl(2)` — 18 bytes, big-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(18);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.asn.to_be_bytes());
        out.extend_from_slice(&self.imtu.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ttl_secs.to_be_bytes());
        out
    }

    /// Parses from the wire.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < 18 {
            return Err(Error::Truncated);
        }
        if data[0..4] != MAGIC {
            return Err(Error::Malformed);
        }
        Ok(ImtuAdvert {
            asn: px_wire::bytes::be32(data, 4),
            imtu: px_wire::bytes::be32(data, 8),
            seq: px_wire::bytes::be32(data, 12),
            ttl_secs: px_wire::bytes::be16(data, 16),
        })
    }
}

/// What the gateway should do with traffic towards a neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BorderPolicy {
    /// Neighbour is legacy (no advert, or expired): translate to eMTU.
    Translate,
    /// Neighbour advertised an iMTU ≥ `up_to`: forward jumbo packets of
    /// at most `up_to` bytes untranslated.
    PassThrough {
        /// The largest packet that may cross untranslated.
        up_to: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct NeighborEntry {
    advert: ImtuAdvert,
    received_at_ns: u64,
}

/// The PXGW neighbour table.
#[derive(Debug, Default)]
pub struct NeighborTable {
    entries: std::collections::HashMap<u32, NeighborEntry>,
}

impl NeighborTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests an advertisement received at `now_ns`. Stale sequence
    /// numbers are ignored. Returns whether the table changed.
    pub fn ingest(&mut self, now_ns: u64, advert: ImtuAdvert) -> bool {
        match self.entries.get(&advert.asn) {
            Some(e) if e.advert.seq >= advert.seq => false,
            _ => {
                self.entries.insert(
                    advert.asn,
                    NeighborEntry {
                        advert,
                        received_at_ns: now_ns,
                    },
                );
                true
            }
        }
    }

    /// The policy towards `asn` for a border whose own iMTU is
    /// `own_imtu`, evaluated at `now_ns` (expired adverts mean legacy).
    pub fn policy(&self, now_ns: u64, asn: u32, own_imtu: u32) -> BorderPolicy {
        match self.entries.get(&asn) {
            Some(e) => {
                let age_ns = now_ns.saturating_sub(e.received_at_ns);
                if age_ns > u64::from(e.advert.ttl_secs) * 1_000_000_000 {
                    return BorderPolicy::Translate;
                }
                // Forward untranslated up to the *smaller* of the two
                // iMTUs (the neighbour may be larger than us; our own
                // packets are already bounded by our iMTU).
                BorderPolicy::PassThrough {
                    up_to: e.advert.imtu.min(own_imtu),
                }
            }
            None => BorderPolicy::Translate,
        }
    }

    /// Number of live neighbours at `now_ns`.
    pub fn live_neighbors(&self, now_ns: u64) -> usize {
        self.entries
            .values()
            .filter(|e| {
                now_ns.saturating_sub(e.received_at_ns)
                    <= u64::from(e.advert.ttl_secs) * 1_000_000_000
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advert(asn: u32, imtu: u32, seq: u32) -> ImtuAdvert {
        ImtuAdvert {
            asn,
            imtu,
            seq,
            ttl_secs: 30,
        }
    }

    #[test]
    fn wire_roundtrip() {
        let a = advert(64512, 9000, 7);
        let b = ImtuAdvert::parse(&a.to_bytes()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(ImtuAdvert::parse(&[0; 4]).unwrap_err(), Error::Truncated);
        let mut bytes = advert(1, 9000, 1).to_bytes();
        bytes[0] = b'X';
        assert_eq!(ImtuAdvert::parse(&bytes).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn unknown_neighbor_translates() {
        let t = NeighborTable::new();
        assert_eq!(t.policy(0, 99, 9000), BorderPolicy::Translate);
    }

    #[test]
    fn advertised_neighbor_passes_through_min_imtu() {
        let mut t = NeighborTable::new();
        t.ingest(0, advert(64512, 16000, 1));
        assert_eq!(
            t.policy(1_000_000_000, 64512, 9000),
            BorderPolicy::PassThrough { up_to: 9000 }
        );
        t.ingest(0, advert(64513, 4000, 1));
        assert_eq!(
            t.policy(0, 64513, 9000),
            BorderPolicy::PassThrough { up_to: 4000 }
        );
    }

    #[test]
    fn stale_seq_ignored_fresh_seq_wins() {
        let mut t = NeighborTable::new();
        assert!(t.ingest(0, advert(1, 9000, 5)));
        assert!(!t.ingest(1, advert(1, 4000, 5)), "same seq ignored");
        assert!(!t.ingest(1, advert(1, 4000, 4)), "older seq ignored");
        assert!(t.ingest(1, advert(1, 4000, 6)));
        assert_eq!(
            t.policy(1, 1, 9000),
            BorderPolicy::PassThrough { up_to: 4000 }
        );
    }

    #[test]
    fn expiry_reverts_to_translate() {
        let mut t = NeighborTable::new();
        t.ingest(0, advert(1, 9000, 1)); // ttl 30 s
        assert_eq!(t.live_neighbors(0), 1);
        let after = 31_000_000_000;
        assert_eq!(t.policy(after, 1, 9000), BorderPolicy::Translate);
        assert_eq!(t.live_neighbors(after), 0);
    }
}
