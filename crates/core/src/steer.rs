//! Small-flow steering.
//!
//! §3: "packets from small flows — typically unmergeable — consume CPU
//! resources and interfere with the merging of large flows … traffic
//! classification techniques that separate merge-friendly large flows
//! from small, sporadic flows will be necessary." §4.1 lists "steering
//! of small flows to prevent performance degradation using hairpin".
//!
//! The classifier is a windowed packet counter: a flow that has moved
//! fewer than `elephant_pkts` packets in the current window is a *mouse*
//! and is hairpinned — forwarded NIC-to-NIC without entering the merge
//! engine (on real hardware this path never touches the CPU). Flows that
//! cross the threshold are *elephants* and get merged.

use crate::flowtable::FlowTable;
use px_wire::FlowKey;

/// Classification verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// Sparse/small flow: hairpin past the merge engine.
    Mouse,
    /// Bulk flow: worth per-flow merge state.
    Elephant,
}

/// Classifier configuration.
#[derive(Debug, Clone, Copy)]
pub struct SteerConfig {
    /// Packets within one window after which a flow becomes an elephant.
    pub elephant_pkts: u32,
    /// Window length in nanoseconds (counters reset each window).
    pub window_ns: u64,
    /// Classifier table capacity (mice evicted first by LRU).
    pub table_capacity: usize,
}

impl Default for SteerConfig {
    fn default() -> Self {
        SteerConfig {
            elephant_pkts: 8,
            window_ns: 10_000_000, // 10 ms
            table_capacity: 1 << 16,
        }
    }
}

#[derive(Debug)]
struct FlowCounter {
    pkts: u32,
    window_start: u64,
    elephant: bool,
}

/// The windowed elephant/mouse classifier.
#[derive(Debug)]
pub struct FlowClassifier {
    /// Configuration.
    pub cfg: SteerConfig,
    table: FlowTable<FlowCounter>,
    /// Packets classified as mouse.
    pub mouse_pkts: u64,
    /// Packets classified as elephant.
    pub elephant_pkts_seen: u64,
}

impl FlowClassifier {
    /// Creates a classifier.
    pub fn new(cfg: SteerConfig) -> Self {
        FlowClassifier {
            cfg,
            table: FlowTable::new(cfg.table_capacity),
            mouse_pkts: 0,
            elephant_pkts_seen: 0,
        }
    }

    /// Classifies one packet of `key` arriving at `now`.
    ///
    /// A flow keeps its elephant status for the rest of the window in
    /// which it earned it (hysteresis: flapping between classes would
    /// reorder its packets between the merge and hairpin paths).
    pub fn classify(&mut self, now: u64, key: &FlowKey) -> FlowClass {
        let cfg = self.cfg;
        if let Some(c) = self.table.get_mut(key) {
            if now.saturating_sub(c.window_start) >= cfg.window_ns {
                // New window: elephants must re-earn their status, but
                // carry over a head start so steady bulk flows never flap.
                c.window_start = now;
                c.pkts = if c.elephant { cfg.elephant_pkts } else { 0 };
                c.elephant = c.pkts >= cfg.elephant_pkts;
            }
            c.pkts = c.pkts.saturating_add(1);
            if c.pkts >= cfg.elephant_pkts {
                c.elephant = true;
            }
            let verdict = if c.elephant {
                FlowClass::Elephant
            } else {
                FlowClass::Mouse
            };
            match verdict {
                FlowClass::Mouse => self.mouse_pkts += 1,
                FlowClass::Elephant => self.elephant_pkts_seen += 1,
            }
            return verdict;
        }
        self.table.insert(
            *key,
            FlowCounter {
                pkts: 1,
                window_start: now,
                elephant: false,
            },
        );
        self.mouse_pkts += 1;
        FlowClass::Mouse
    }

    /// Number of tracked flows.
    pub fn tracked(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(p: u16) -> FlowKey {
        FlowKey::tcp(Ipv4Addr::new(1, 1, 1, 1), p, Ipv4Addr::new(2, 2, 2, 2), 80)
    }

    #[test]
    fn sparse_flow_stays_mouse() {
        let mut c = FlowClassifier::new(SteerConfig::default());
        for i in 0..5 {
            assert_eq!(c.classify(i * 1000, &key(1)), FlowClass::Mouse);
        }
        assert_eq!(c.mouse_pkts, 5);
    }

    #[test]
    fn bulk_flow_promotes_to_elephant() {
        let cfg = SteerConfig::default();
        let mut c = FlowClassifier::new(cfg);
        let mut verdicts = Vec::new();
        for i in 0..20 {
            verdicts.push(c.classify(i, &key(1)));
        }
        assert_eq!(verdicts[0], FlowClass::Mouse);
        assert!(verdicts[19] == FlowClass::Elephant);
        let promoted_at = verdicts
            .iter()
            .position(|v| *v == FlowClass::Elephant)
            .unwrap();
        assert_eq!(promoted_at as u32, cfg.elephant_pkts - 1);
    }

    #[test]
    fn elephant_keeps_status_across_windows_if_busy() {
        let cfg = SteerConfig {
            window_ns: 1000,
            ..Default::default()
        };
        let mut c = FlowClassifier::new(cfg);
        for i in 0..20 {
            c.classify(i, &key(1));
        }
        // Next window: still elephant on the first packet (head start).
        assert_eq!(c.classify(2000, &key(1)), FlowClass::Elephant);
    }

    #[test]
    fn idle_mouse_resets_each_window() {
        let cfg = SteerConfig {
            window_ns: 1000,
            elephant_pkts: 4,
            ..Default::default()
        };
        let mut c = FlowClassifier::new(cfg);
        // 3 packets per window, forever: never promoted.
        for w in 0..10u64 {
            for i in 0..3u64 {
                let v = c.classify(w * 1000 + i, &key(1));
                assert_eq!(v, FlowClass::Mouse, "window {w} pkt {i}");
            }
        }
    }

    #[test]
    fn flows_tracked_independently() {
        let mut c = FlowClassifier::new(SteerConfig::default());
        for i in 0..20 {
            c.classify(i, &key(1));
        }
        assert_eq!(c.classify(100, &key(2)), FlowClass::Mouse);
        assert_eq!(c.classify(101, &key(1)), FlowClass::Elephant);
        assert_eq!(c.tracked(), 2);
    }
}
