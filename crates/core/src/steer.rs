//! Small-flow steering.
//!
//! §3: "packets from small flows — typically unmergeable — consume CPU
//! resources and interfere with the merging of large flows … traffic
//! classification techniques that separate merge-friendly large flows
//! from small, sporadic flows will be necessary." §4.1 lists "steering
//! of small flows to prevent performance degradation using hairpin".
//!
//! The classifier is a windowed packet counter: a flow that has moved
//! fewer than `elephant_pkts` packets in the current window is a *mouse*
//! and is hairpinned — forwarded NIC-to-NIC without entering the merge
//! engine (on real hardware this path never touches the CPU). Flows that
//! cross the threshold are *elephants* and get merged.

use crate::flowtable::{FlowTable, FlowTableConfig};
use px_wire::FlowKey;

/// Classification verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// Sparse/small flow: hairpin past the merge engine.
    Mouse,
    /// Bulk flow: worth per-flow merge state.
    Elephant,
}

/// Classifier configuration.
#[derive(Debug, Clone, Copy)]
pub struct SteerConfig {
    /// Packets within one window after which a flow becomes an elephant.
    pub elephant_pkts: u32,
    /// Window length in nanoseconds (counters reset each window).
    pub window_ns: u64,
    /// Classifier table capacity (mice evicted first by LRU).
    pub table_capacity: usize,
    /// Hard byte budget for the classifier's flow-state arena — the
    /// per-core slab that tracks every live flow. `None` for entry-count
    /// sizing only; see [`FlowTableConfig::memory_budget`].
    pub memory_budget: Option<usize>,
}

impl Default for SteerConfig {
    fn default() -> Self {
        SteerConfig {
            elephant_pkts: 8,
            window_ns: 10_000_000, // 10 ms
            table_capacity: 1 << 16,
            memory_budget: None,
        }
    }
}

#[derive(Debug)]
struct FlowCounter {
    pkts: u32,
    window_start: u64,
    elephant: bool,
}

/// The windowed elephant/mouse classifier.
#[derive(Debug)]
pub struct FlowClassifier {
    /// Configuration.
    pub cfg: SteerConfig,
    table: FlowTable<FlowCounter>,
    /// Packets classified as mouse.
    pub mouse_pkts: u64,
    /// Packets classified as elephant.
    pub elephant_pkts_seen: u64,
    /// Mouse→elephant promotions (each flow promotes at most once per
    /// window, and with the head-start hysteresis at most once ever for
    /// a continuously busy flow).
    pub promotions: u64,
}

impl FlowClassifier {
    /// Creates a classifier.
    pub fn new(cfg: SteerConfig) -> Self {
        FlowClassifier {
            cfg,
            table: FlowTable::with_config(FlowTableConfig {
                capacity: cfg.table_capacity,
                memory_budget: cfg.memory_budget,
            }),
            mouse_pkts: 0,
            elephant_pkts_seen: 0,
            promotions: 0,
        }
    }

    /// Classifies one packet of `key` arriving at `now`.
    ///
    /// A flow keeps its elephant status for the rest of the window in
    /// which it earned it (hysteresis: flapping between classes would
    /// reorder its packets between the merge and hairpin paths).
    pub fn classify(&mut self, now: u64, key: &FlowKey) -> FlowClass {
        self.classify_with_evict(now, key).0
    }

    /// Like [`classify`](Self::classify), additionally returning the
    /// flow the classifier table had to evict to track `key`, so the
    /// caller can surface the eviction (observability, counters).
    /// Promoted elephants are moved to the table's protected LRU
    /// segment, so under arrival churn the victim is always the
    /// longest-idle *mouse* while any remains.
    pub fn classify_with_evict(&mut self, now: u64, key: &FlowKey) -> (FlowClass, Option<FlowKey>) {
        let cfg = self.cfg;
        if let Some(c) = self.table.get_mut(key) {
            if now.saturating_sub(c.window_start) >= cfg.window_ns {
                // New window: elephants must re-earn their status, but
                // carry over a head start so steady bulk flows never flap.
                c.window_start = now;
                c.pkts = if c.elephant { cfg.elephant_pkts } else { 0 };
                c.elephant = c.pkts >= cfg.elephant_pkts;
            }
            c.pkts = c.pkts.saturating_add(1);
            let promoted = !c.elephant && c.pkts >= cfg.elephant_pkts;
            if promoted {
                c.elephant = true;
            }
            let verdict = if c.elephant {
                FlowClass::Elephant
            } else {
                FlowClass::Mouse
            };
            if promoted {
                self.promotions += 1;
                self.table.protect(key);
            }
            match verdict {
                FlowClass::Mouse => self.mouse_pkts += 1,
                FlowClass::Elephant => self.elephant_pkts_seen += 1,
            }
            return (verdict, None);
        }
        let evicted = self
            .table
            .insert(
                *key,
                FlowCounter {
                    pkts: 1,
                    window_start: now,
                    elephant: false,
                },
            )
            .map(|(k, _)| k);
        self.mouse_pkts += 1;
        (FlowClass::Mouse, evicted)
    }

    /// Number of tracked flows.
    pub fn tracked(&self) -> usize {
        self.table.len()
    }

    /// Classifier-table evictions that hit an idle (probation) flow.
    pub fn evicted_idle(&self) -> u64 {
        self.table.evicted_idle
    }

    /// Classifier-table evictions forced onto a protected elephant.
    pub fn evicted_pressure(&self) -> u64 {
        self.table.evicted_pressure
    }

    /// Bytes reserved by the classifier's flow-state arena.
    pub fn arena_bytes(&self) -> usize {
        self.table.arena_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(p: u16) -> FlowKey {
        FlowKey::tcp(Ipv4Addr::new(1, 1, 1, 1), p, Ipv4Addr::new(2, 2, 2, 2), 80)
    }

    #[test]
    fn sparse_flow_stays_mouse() {
        let mut c = FlowClassifier::new(SteerConfig::default());
        for i in 0..5 {
            assert_eq!(c.classify(i * 1000, &key(1)), FlowClass::Mouse);
        }
        assert_eq!(c.mouse_pkts, 5);
    }

    #[test]
    fn bulk_flow_promotes_to_elephant() {
        let cfg = SteerConfig::default();
        let mut c = FlowClassifier::new(cfg);
        let mut verdicts = Vec::new();
        for i in 0..20 {
            verdicts.push(c.classify(i, &key(1)));
        }
        assert_eq!(verdicts[0], FlowClass::Mouse);
        assert!(verdicts[19] == FlowClass::Elephant);
        let promoted_at = verdicts
            .iter()
            .position(|v| *v == FlowClass::Elephant)
            .unwrap();
        assert_eq!(promoted_at as u32, cfg.elephant_pkts - 1);
    }

    #[test]
    fn elephant_keeps_status_across_windows_if_busy() {
        let cfg = SteerConfig {
            window_ns: 1000,
            ..Default::default()
        };
        let mut c = FlowClassifier::new(cfg);
        for i in 0..20 {
            c.classify(i, &key(1));
        }
        // Next window: still elephant on the first packet (head start).
        assert_eq!(c.classify(2000, &key(1)), FlowClass::Elephant);
    }

    #[test]
    fn idle_mouse_resets_each_window() {
        let cfg = SteerConfig {
            window_ns: 1000,
            elephant_pkts: 4,
            ..Default::default()
        };
        let mut c = FlowClassifier::new(cfg);
        // 3 packets per window, forever: never promoted.
        for w in 0..10u64 {
            for i in 0..3u64 {
                let v = c.classify(w * 1000 + i, &key(1));
                assert_eq!(v, FlowClass::Mouse, "window {w} pkt {i}");
            }
        }
    }

    #[test]
    fn flows_tracked_independently() {
        let mut c = FlowClassifier::new(SteerConfig::default());
        for i in 0..20 {
            c.classify(i, &key(1));
        }
        assert_eq!(c.classify(100, &key(2)), FlowClass::Mouse);
        assert_eq!(c.classify(101, &key(1)), FlowClass::Elephant);
        assert_eq!(c.tracked(), 2);
    }

    #[test]
    fn promotion_happens_exactly_once_for_a_busy_flow() {
        let cfg = SteerConfig {
            window_ns: 1000,
            elephant_pkts: 4,
            ..Default::default()
        };
        let mut c = FlowClassifier::new(cfg);
        // Ten windows of sustained traffic: the threshold crossing in
        // window 0 is the only promotion — the head-start hysteresis
        // keeps the flow an elephant in every later window, so the
        // mouse→elephant edge never fires again.
        for w in 0..10u64 {
            for i in 0..8u64 {
                c.classify(w * 1000 + i, &key(1));
            }
        }
        assert_eq!(c.promotions, 1);
        assert_eq!(c.mouse_pkts, 3, "only the pre-threshold packets");
        assert_eq!(c.elephant_pkts_seen, 77);
    }

    #[test]
    fn churn_evicts_idle_mice_before_active_elephants() {
        let cfg = SteerConfig {
            table_capacity: 8,
            ..Default::default()
        };
        let mut c = FlowClassifier::new(cfg);
        // Two elephants earn protection...
        for f in [1u16, 2] {
            for i in 0..10 {
                c.classify(i, &key(f));
            }
        }
        // ...then a storm of one-packet mice churns the table.
        let mut evictions = Vec::new();
        for m in 100..200u16 {
            let (class, evicted) = c.classify_with_evict(1000 + u64::from(m), &key(m));
            assert_eq!(class, FlowClass::Mouse);
            if let Some(victim) = evicted {
                evictions.push(victim);
            }
        }
        assert!(!evictions.is_empty(), "the storm must evict");
        assert!(
            !evictions.contains(&key(1)) && !evictions.contains(&key(2)),
            "elephants survived the mouse storm"
        );
        assert_eq!(c.evicted_pressure(), 0);
        assert_eq!(c.evicted_idle(), evictions.len() as u64);
        // The elephants still classify as elephants afterwards.
        assert_eq!(c.classify(5000, &key(1)), FlowClass::Elephant);
        assert_eq!(c.classify(5001, &key(2)), FlowClass::Elephant);
    }

    #[test]
    fn classification_is_deterministic_per_input() {
        let cfg = SteerConfig {
            table_capacity: 16,
            ..Default::default()
        };
        let mut a = FlowClassifier::new(cfg);
        let mut b = FlowClassifier::new(cfg);
        // A pseudo-random interleaving over 64 flows with a 16-entry
        // table: evictions and re-inserts included, the verdict
        // sequence is a pure function of the input sequence.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for step in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = key((x % 64) as u16);
            let now = step * 997;
            assert_eq!(
                a.classify_with_evict(now, &k),
                b.classify_with_evict(now, &k),
                "step {step}"
            );
        }
        assert_eq!(a.tracked(), b.tracked());
        assert_eq!(a.promotions, b.promotions);
    }
}
