//! The comparison baseline of Fig. 5a/5b: a gateway built on the DPDK
//! GRO library pattern.
//!
//! The DPDK `rte_gro` API coalesces packets *within one burst*: the
//! application hands it a batch from `rte_eth_rx_burst`, gets merged
//! packets back, and transmits them — nothing is held across batches.
//! That batch boundary is exactly why the baseline's conversion yield
//! tops out around 76% while PX's delayed merging reaches 93%+: a burst
//! rarely contains enough contiguous same-flow segments to fill a 9 KB
//! jumbo, and whatever is left at the end of the batch ships as-is.

use px_sim::nic::coalesce_batch;
use px_sim::stats::SizeHistogram;
use px_wire::pool::{PacketSink, VecSink};
use px_wire::PacketBuf;

/// Baseline gateway counters.
#[derive(Debug, Default, Clone)]
pub struct BaselineStats {
    /// Input packets.
    pub pkts_in: u64,
    /// Batches processed.
    pub batches: u64,
    /// Output size distribution.
    pub out_sizes: SizeHistogram,
}

impl BaselineStats {
    /// Conversion yield under the same rule as [`crate::merge`].
    pub fn conversion_yield(&self, imtu: usize, emtu: usize) -> f64 {
        self.out_sizes.fraction_at_least(imtu - (emtu - 40) + 1)
    }
}

/// A DPDK-GRO-style batch-merging gateway engine.
#[derive(Debug)]
pub struct BaselineGateway {
    /// Output packet size cap (the b-network iMTU).
    pub imtu: usize,
    /// RX burst size (DPDK default: 32–64 descriptors per poll).
    pub batch_pkts: usize,
    batch: Vec<Vec<u8>>,
    /// Counters.
    pub stats: BaselineStats,
}

impl BaselineGateway {
    /// Creates a baseline gateway.
    pub fn new(imtu: usize, batch_pkts: usize) -> Self {
        assert!(batch_pkts > 0);
        BaselineGateway {
            imtu,
            batch_pkts,
            batch: Vec::with_capacity(batch_pkts),
            stats: BaselineStats::default(),
        }
    }

    /// Feeds one packet; merged output is delivered to `sink` when the
    /// burst fills. The baseline keeps the allocation profile of the
    /// `rte_gro` pattern it models (per-burst mbuf churn), so outputs
    /// are adopted `Vec`s rather than pooled buffers.
    pub fn push_into(&mut self, pkt: Vec<u8>, sink: &mut impl PacketSink) {
        self.stats.pkts_in += 1;
        self.batch.push(pkt);
        if self.batch.len() >= self.batch_pkts {
            self.flush_into(sink);
        }
    }

    /// Ends the current burst (the `rte_eth_rx_burst` returning short, or
    /// the poll loop going idle), delivering merged packets to `sink`.
    pub fn flush_into(&mut self, sink: &mut impl PacketSink) {
        if self.batch.is_empty() {
            return;
        }
        self.stats.batches += 1;
        let batch = std::mem::take(&mut self.batch);
        for p in coalesce_batch(batch, self.imtu) {
            self.stats.out_sizes.record(p.len());
            let _ = sink.accept(PacketBuf::adopt(p));
        }
    }

    /// [`push_into`](Self::push_into) collected into a `Vec`.
    pub fn push(&mut self, pkt: Vec<u8>) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        self.push_into(pkt, &mut sink);
        sink.into_pkts()
    }

    /// [`flush_into`](Self::flush_into) collected into a `Vec`.
    pub fn flush(&mut self) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        self.flush_into(&mut sink);
        sink.into_pkts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_wire::ipv4::Ipv4Repr;
    use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr};
    use px_wire::IpProtocol;
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);

    fn data_pkt(port: u16, seq: u32, len: usize) -> Vec<u8> {
        let repr = TcpRepr {
            src_port: port,
            dst_port: 80,
            seq: SeqNum(seq),
            ack: SeqNum(1),
            flags: TcpFlags::ACK,
            window: 5000,
            options: vec![],
        };
        let seg = repr.build_segment(SRC, DST, &vec![0xAB; len]);
        Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
            .build_packet(&seg)
            .unwrap()
    }

    #[test]
    fn merges_within_batch_only() {
        let mut gw = BaselineGateway::new(9000, 4);
        // Two contiguous segments of flow A, then two of flow B: one
        // batch → two merged packets.
        let mut out = Vec::new();
        out.extend(gw.push(data_pkt(5000, 0, 1000)));
        out.extend(gw.push(data_pkt(5000, 1000, 1000)));
        out.extend(gw.push(data_pkt(6000, 0, 1000)));
        out.extend(gw.push(data_pkt(6000, 1000, 1000)));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|p| p.len() == 2040));
        // The next contiguous segment of flow A cannot join the previous
        // aggregate — it is in a new batch.
        let out2 = gw.push(data_pkt(5000, 2000, 1000));
        assert!(out2.is_empty());
        let out2 = gw.flush();
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].len(), 1040, "no cross-batch merging");
    }

    #[test]
    fn yield_lower_than_delayed_merging_on_interleaved_runs() {
        // 8 flows, runs of 3 contiguous segments, round-robin — a burst
        // of 64 holds ~2.7 runs per flow but the aggregates can't reach
        // 6 segments unless runs happen to be adjacent.
        let imtu = 9000;
        let mut base = BaselineGateway::new(imtu, 64);
        let mut px = crate::merge::MergeEngine::new(crate::merge::MergeConfig {
            imtu,
            emtu: 1500,
            hold_ns: 1_000_000,
            table_capacity: 1024,
        });
        let mut seqs = [0u32; 8];
        let mut now = 0u64;
        for _round in 0..100 {
            for f in 0..8u16 {
                for _ in 0..3 {
                    let pkt = data_pkt(5000 + f, seqs[f as usize], 1460);
                    seqs[f as usize] += 1460;
                    base.push(pkt.clone());
                    px.push(now, pkt);
                    now += 1000;
                }
            }
        }
        base.flush();
        px.flush_all();
        let cfg = px.cfg;
        let base_yield = base.stats.conversion_yield(imtu, 1500);
        let px_yield = px.stats.conversion_yield(&cfg);
        assert!(
            px_yield > base_yield,
            "delayed merging must win: px {px_yield} vs base {base_yield}"
        );
        assert!(px_yield > 0.85, "px yield {px_yield}");
    }
}
