//! The *real* multi-core sharded PXGW datapath engine.
//!
//! Where [`crate::pipeline`] prices CPU cycles and the memory bus to
//! *model* Fig. 5a/5b throughput, this module actually runs the
//! datapath: the byte-accurate trace from [`crate::pipeline::TraceGen`]
//! is sharded with the real Toeplitz [`RssHasher`] and fed — in
//! batches — to one [`CoreEngine`] worker per core. Two modes share
//! every byte of sharding/batching/processing logic:
//!
//! * [`EngineMode::Parallel`] — one OS thread per core, connected to
//!   the dispatcher by bounded SPSC channels. Wall-clock time over the
//!   dispatch/process/join region gives a *measured* forwarding rate
//!   for this host, reported next to the modelled bound.
//! * [`EngineMode::Deterministic`] — the same per-core batch streams
//!   executed on the calling thread, one batch per core per round-robin
//!   turn. Because RSS pins a flow to one core and every hold-timer
//!   poll happens at a packet arrival timestamp taken from the global
//!   trace, the per-flow output byte streams are **bit-identical for a
//!   fixed seed regardless of core count** — the property the
//!   `engine_equivalence` integration test proves.
//!
//! Workers keep private [`CoreCounters`] (nothing shared on the hot
//! path) and merge them into a [`StatsRegistry`] when they finish.
//! Per-flow output is summarised by [`FlowDigest`]: an FNV-1a hash over
//! the length-prefixed L4 payloads of every packet the engine emitted
//! for that flow. Hashing the L4 payload (not the whole packet) is
//! deliberate: PX-caravan stamps outer IPv4 `ident` values from an
//! engine-global counter, so outer headers legitimately differ when
//! flows interleave differently across cores, while the delivered
//! payload bytes — what a receiver reassembles — must not.

use crate::baseline::BaselineGateway;
use crate::caravan_gw::{CaravanConfig, CaravanEngine};
use crate::merge::{MergeConfig, MergeEngine};
use crate::pipeline::{PipelineConfig, SystemVariant, TraceGen, WorkloadKind};
use crossbeam::channel;
use px_faults::{
    FaultInjector, FaultPlan, FaultSpec, Heartbeats, IngressStats, PlannedFaults, StallDetector,
};
use px_obs::{
    evaluate_snapshot, perfetto_json, serve, BatchObs, BatchProfile, Event, EventKind, HistSet,
    ObsConfig, ObsReport, Profiler, Recorder, Response, ServeHandle, SloSpec, SloWatchdog, Span,
    SpanCat, TimeSample,
};
use px_sim::stats::{CoreCounters, StatsRegistry};
use px_wire::batchparse::{self, ParsedMeta};
use px_wire::ipv4::Ipv4Packet;
use px_wire::pool::{PacketSink, VecSink};
use px_wire::{FlowKey, IpProtocol, PacketBuf, RssHasher};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One core's gateway datapath: the actual translation engine the
/// pipeline model and the threaded engine both drive.
// One engine lives per core for the whole run; boxing the large merge
// variant would buy nothing but a pointer hop on every hot-path call.
#[allow(clippy::large_enum_variant)]
pub enum CoreEngine {
    /// DPDK-GRO-style software merging (the paper's baseline).
    Baseline(BaselineGateway),
    /// PXGW TCP delayed merging.
    Merge(MergeEngine),
    /// PXGW UDP caravan bundling.
    Caravan(CaravanEngine),
}

impl CoreEngine {
    /// Builds the engine a given system variant / workload pair uses on
    /// each core (the Fig. 5 configuration: 64 K flow-table entries,
    /// consecutive-IP-ID caravan packing).
    pub fn for_variant(
        variant: SystemVariant,
        workload: WorkloadKind,
        imtu: usize,
        emtu: usize,
        hold_ns: u64,
    ) -> Self {
        match (variant, workload) {
            (SystemVariant::BaselineGro, _) => CoreEngine::Baseline(BaselineGateway::new(imtu, 64)),
            (_, WorkloadKind::Tcp) => CoreEngine::Merge(MergeEngine::new(MergeConfig {
                imtu,
                emtu,
                hold_ns,
                table_capacity: 65536,
            })),
            (_, WorkloadKind::Udp) => CoreEngine::Caravan(CaravanEngine::new(CaravanConfig {
                imtu,
                hold_ns,
                table_capacity: 65536,
                require_consecutive_ip_id: true,
                probe_port: crate::gateway::FPMTUD_PORT,
            })),
        }
    }

    /// Builds the engine one core of a pipeline run uses, applying the
    /// run's flow-scale knobs on top of [`for_variant`](Self::for_variant):
    /// the flow-table sizing override, the pool's parked-buffer cap, and
    /// (merge path only) the small-flow classifier. With the `fig5`
    /// defaults this is byte-identical to `for_variant` — the pinned
    /// digests prove it.
    pub fn for_pipe(cfg: &PipelineConfig) -> Self {
        let mut engine =
            Self::for_variant(cfg.variant, cfg.workload, cfg.imtu, cfg.emtu, cfg.hold_ns);
        match &mut engine {
            CoreEngine::Baseline(_) => {}
            CoreEngine::Merge(m) => {
                if let Some(table) = cfg.flow_table {
                    m.configure_table(table);
                }
                m.set_pool_bufs(cfg.pool_bufs);
                if let Some(steer) = cfg.steer {
                    m.enable_steer(steer);
                }
            }
            CoreEngine::Caravan(c) => {
                if let Some(table) = cfg.flow_table {
                    c.configure_table(table);
                }
                c.set_pool_bufs(cfg.pool_bufs);
            }
        }
        engine
    }

    /// Feeds one input packet at time `now`, polling hold timers first;
    /// output packets this step produced are delivered to `sink`. This
    /// is the allocation-free hot path: the inner engines draw emitted
    /// buffers from their pools, and whatever the sink returns from
    /// [`PacketSink::accept`] is recycled.
    pub fn push_into(&mut self, now: u64, pkt: Vec<u8>, sink: &mut impl PacketSink) {
        match self {
            CoreEngine::Baseline(b) => b.push_into(pkt, sink),
            CoreEngine::Merge(m) => {
                m.poll_into(now, sink);
                m.push_into(now, &pkt, sink);
            }
            CoreEngine::Caravan(c) => {
                c.poll_into(now, sink);
                c.push_inbound_into(now, &pkt, sink);
            }
        }
    }

    /// [`push_into`](Self::push_into) with the packet's parse already
    /// done by the batch-front classification pass. Only the merge
    /// engine consumes the cached meta today; the other variants parse
    /// as before.
    pub fn push_parsed_into(
        &mut self,
        now: u64,
        pkt: Vec<u8>,
        meta: &ParsedMeta,
        sink: &mut impl PacketSink,
    ) {
        match self {
            CoreEngine::Merge(m) => {
                m.poll_into(now, sink);
                m.push_parsed_into(now, &pkt, meta, sink);
            }
            other => other.push_into(now, pkt, sink),
        }
    }

    /// Drains every held aggregate (end of trace) into `sink`.
    pub fn finish_into(&mut self, sink: &mut impl PacketSink) {
        match self {
            CoreEngine::Baseline(b) => b.flush_into(sink),
            CoreEngine::Merge(m) => m.flush_all_into(sink),
            CoreEngine::Caravan(c) => c.flush_all_into(sink),
        }
    }

    /// [`push_into`](Self::push_into) collected into a `Vec` (tests and
    /// non-hot callers).
    pub fn push(&mut self, now: u64, pkt: Vec<u8>) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        self.push_into(now, pkt, &mut sink);
        sink.into_pkts()
    }

    /// [`finish_into`](Self::finish_into) collected into a `Vec`.
    pub fn finish(&mut self) -> Vec<Vec<u8>> {
        let mut sink = VecSink::new();
        self.finish_into(&mut sink);
        sink.into_pkts()
    }

    /// Packets this engine dropped because validation failed (malformed
    /// headers, corrupt caravan bundles). Unmergeable or corrupt TCP
    /// segments pass through the merge engine for the endpoints to
    /// judge, so only the caravan engine contributes here; the merge
    /// engine's only drops are the adversarial-overlap rejections
    /// reported by [`security_drops`](Self::security_drops).
    pub fn dropped_malformed(&self) -> u64 {
        match self {
            CoreEngine::Baseline(_) | CoreEngine::Merge(_) => 0,
            CoreEngine::Caravan(c) => c.stats.dropped_malformed,
        }
    }

    /// Adversarial-overlap rejections as `(dropped_inconsistent_overlap,
    /// dropped_overlap_evasion)`: segments whose claimed sequence ranges
    /// conflicted with bytes the merge engine already attested (see
    /// [`crate::coalesce`]). Zero for the baseline and caravan engines.
    pub fn security_drops(&self) -> (u64, u64) {
        match self {
            CoreEngine::Baseline(_) | CoreEngine::Caravan(_) => (0, 0),
            CoreEngine::Merge(m) => (
                m.stats.dropped_inconsistent_overlap,
                m.stats.dropped_overlap_evasion,
            ),
        }
    }

    /// Switches the inner engine's flight recorder + histograms on. The
    /// baseline gateway has no recorder (it exists to be compared
    /// against, not debugged), so this is a no-op for it.
    pub fn enable_obs(&mut self, cfg: ObsConfig) {
        match self {
            CoreEngine::Baseline(_) => {}
            CoreEngine::Merge(m) => m.enable_obs(cfg),
            CoreEngine::Caravan(c) => c.enable_obs(cfg),
        }
    }

    /// The inner engine's recorder (`None` for the baseline).
    pub fn obs_mut(&mut self) -> Option<&mut Recorder> {
        match self {
            CoreEngine::Baseline(_) => None,
            CoreEngine::Merge(m) => Some(&mut m.obs),
            CoreEngine::Caravan(c) => Some(&mut c.obs),
        }
    }

    /// Drains the recorder for report assembly: held events (oldest
    /// first) plus histograms. Empty for the baseline or when disabled.
    pub fn take_obs(&mut self) -> (Vec<Event>, HistSet) {
        self.obs_mut().map(Recorder::take).unwrap_or_default()
    }

    /// Drains the recorder's span ring (oldest first; empty for the
    /// baseline or when disabled).
    pub fn take_spans(&mut self) -> Vec<Span> {
        self.obs_mut().map(Recorder::take_spans).unwrap_or_default()
    }

    /// Drains the recorder's continuous profiler (default-empty for the
    /// baseline or when disabled).
    pub fn take_profiler(&mut self) -> Profiler {
        self.obs_mut()
            .map(Recorder::take_profiler)
            .unwrap_or_default()
    }

    /// Sets the high bits of this engine's span link ids so causal
    /// links stay unique across cores (no-op for the baseline).
    pub fn set_span_link_base(&mut self, base: u64) {
        match self {
            CoreEngine::Baseline(_) => {}
            CoreEngine::Merge(m) => m.set_span_link_base(base),
            CoreEngine::Caravan(c) => c.set_span_link_base(base),
        }
    }

    /// Whether the engine is currently on the degradation ladder
    /// (always false for the baseline, which has no ladder).
    pub fn is_degraded(&self) -> bool {
        match self {
            CoreEngine::Baseline(_) => false,
            CoreEngine::Merge(m) => m.is_degraded(),
            CoreEngine::Caravan(c) => c.is_degraded(),
        }
    }

    /// Arms (or disarms) resource-fault injection on the inner engine.
    /// No-op for the baseline — it models the comparison system, not
    /// the PXGW under test.
    pub fn set_faults(&mut self, spec: FaultSpec) {
        match self {
            CoreEngine::Baseline(_) => {}
            CoreEngine::Merge(m) => m.set_faults(spec),
            CoreEngine::Caravan(c) => c.set_faults(spec),
        }
    }

    /// Idle tick for a quiesced shard: this core's input stream ended,
    /// so every held aggregate's hold deadline lies in its unreachable
    /// future — flush them all now instead of parking them until the
    /// run-wide drain. This is the dead-shard fix: `pop_expired` used
    /// to be polled only on packet arrival, so a core that stopped
    /// receiving packets never flushed its expired flows.
    pub fn idle_tick_into(&mut self, sink: &mut impl PacketSink) {
        match self {
            CoreEngine::Baseline(b) => b.flush_into(sink),
            CoreEngine::Merge(m) => m.poll_into(u64::MAX, sink),
            CoreEngine::Caravan(c) => c.poll_into(u64::MAX, sink),
        }
    }

    /// Pool buffers currently outstanding — held by pending aggregates
    /// or loaned out and not yet recycled. Zero after a full drain, or
    /// the engine is leaking buffers (zero for the pool-less baseline).
    pub fn pool_outstanding(&self) -> u64 {
        match self {
            CoreEngine::Baseline(_) => 0,
            CoreEngine::Merge(m) => m.pool_outstanding(),
            CoreEngine::Caravan(c) => c.pool_outstanding(),
        }
    }

    /// Per-flow-state telemetry as `(flows_live, evicted_idle,
    /// evicted_pressure, steered_mice_pkts)`. Zero for the baseline,
    /// which keeps no per-flow state worth budgeting.
    pub fn flow_stats(&self) -> (u64, u64, u64, u64) {
        match self {
            CoreEngine::Baseline(_) => (0, 0, 0, 0),
            CoreEngine::Merge(m) => {
                let (idle, pressure) = m.eviction_counts();
                (
                    m.flows_live() as u64,
                    idle,
                    pressure,
                    m.stats.steered_mice_pkts,
                )
            }
            CoreEngine::Caravan(c) => {
                let (idle, pressure) = c.eviction_counts();
                (c.flows_live() as u64, idle, pressure, 0)
            }
        }
    }

    /// Bytes reserved by this engine's per-flow state arenas (flow
    /// table + classifier). Zero for the baseline.
    pub fn arena_bytes(&self) -> usize {
        match self {
            CoreEngine::Baseline(_) => 0,
            CoreEngine::Merge(m) => m.arena_bytes(),
            CoreEngine::Caravan(c) => c.arena_bytes(),
        }
    }

    /// The inner engine's `(degraded_pkts, pool_exhausted,
    /// backpressure_drops)` degradation counters (zero for the
    /// baseline).
    pub fn degrade_stats(&self) -> (u64, u64, u64) {
        match self {
            CoreEngine::Baseline(_) => (0, 0, 0),
            CoreEngine::Merge(m) => (
                m.stats.degraded_pkts,
                m.stats.pool_exhausted,
                m.stats.backpressure_drops,
            ),
            CoreEngine::Caravan(c) => (
                c.stats.degraded_pkts,
                c.stats.pool_exhausted,
                c.stats.backpressure_drops,
            ),
        }
    }
}

/// How the engine schedules its per-core workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Real OS threads fed over bounded channels; wall-clock throughput
    /// is measured.
    Parallel,
    /// Single-threaded round-robin over the identical per-core batch
    /// streams; bit-identical output for a fixed seed, any core count.
    Deterministic,
}

/// Engine run configuration: a pipeline workload plus batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The workload/variant/core-count setup (shared with the model).
    pub pipe: PipelineConfig,
    /// Scheduling mode.
    pub mode: EngineMode,
    /// Packets per batch handed to a worker (DPDK-style burst).
    pub batch_pkts: usize,
    /// Channel capacity in batches (Parallel mode back-pressure).
    pub channel_batches: usize,
    /// Observability: flight recorder, histograms, mid-run publishing,
    /// and the Parallel-mode sampler thread. On by default — the
    /// deterministic digests are pinned *with* recording enabled, which
    /// is what proves recording never perturbs the datapath.
    pub obs: ObsConfig,
    /// Fault-injection schedule ([`FaultSpec::off`] in production —
    /// every fault check is then one predicted branch; the chaos
    /// harness arms it with [`FaultSpec::chaos`]).
    pub faults: FaultSpec,
    /// Copy every emitted packet into
    /// [`EngineReport::captured_output`]. Test-harness only (the chaos
    /// matrix digests the delivered byte streams from it) — capture
    /// allocates per packet, so it must stay off for perf runs.
    pub capture_output: bool,
    /// Maintain per-flow [`FlowDigest`]s. On by default — the digests
    /// are the correctness spine (digest-pin, equivalence tests). Raw
    /// speed benchmarks turn them off: the serial FNV-1a byte walk
    /// costs more than the whole merge step and measures the harness,
    /// not the datapath.
    pub digests: bool,
    /// Classify each RX batch up front with
    /// [`px_wire::batchparse::parse_batch_with`] (software prefetch +
    /// one header walk per packet) instead of parsing inside
    /// [`MergeEngine::push_into`]. Output is bit-identical either way —
    /// the pinned digests are recorded with this on.
    pub batch_parse: bool,
    /// Serve the live observability endpoint (`/metrics`, `/healthz`,
    /// `/trace`) from the control thread while the run is in flight.
    /// Parallel mode only (Deterministic runs own the calling thread);
    /// port 0 binds an ephemeral port. The handle rides back on
    /// [`EngineReport::serve`] so scraping can continue after the run.
    pub serve_port: Option<u16>,
}

impl EngineConfig {
    /// Default batching (32-packet bursts, 8 in flight per core).
    pub fn new(pipe: PipelineConfig, mode: EngineMode) -> Self {
        EngineConfig {
            pipe,
            mode,
            batch_pkts: 32,
            channel_batches: 8,
            obs: ObsConfig::default(),
            faults: FaultSpec::off(),
            capture_output: false,
            digests: true,
            batch_parse: true,
            serve_port: None,
        }
    }
}

/// FNV-1a summary of one flow's engine output.
///
/// `fnv` folds in each emitted packet's L4 payload, prefixed by its
/// length, so reorderings or boundary changes alter the digest even
/// when total bytes match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowDigest {
    /// Output packets emitted for this flow.
    pub pkts: u64,
    /// Output L4 payload bytes emitted for this flow.
    pub bytes: u64,
    /// The subset of `bytes` delivered inside iMTU-sized (jumbo) output
    /// packets — `jumbo_bytes / bytes` is the flow's byte-level
    /// conversion yield, the per-flow form of the paper's metric.
    pub jumbo_bytes: u64,
    /// Running FNV-1a/64 over length-prefixed payloads.
    pub fnv: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FlowDigest {
    fn default() -> Self {
        FlowDigest {
            pkts: 0,
            bytes: 0,
            jumbo_bytes: 0,
            fnv: FNV_OFFSET,
        }
    }
}

fn fnv_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for chunk in [&(bytes.len() as u64).to_le_bytes()[..], bytes] {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Returns the flow key and L4-payload range of an output packet, or
/// `None` for anything unparsable (nothing the engines emit should be).
fn flow_and_l4_payload(pkt: &[u8]) -> Option<(FlowKey, std::ops::Range<usize>)> {
    let key = px_sim::nic::flow_key_of(pkt).ok()?;
    let ip = Ipv4Packet::new_checked(pkt).ok()?;
    let l4_start = ip.header_len();
    let l4_hdr = match ip.protocol() {
        // TCP data offset lives in byte 12 of the TCP header.
        IpProtocol::Tcp => usize::from(pkt[l4_start + 12] >> 4) * 4,
        IpProtocol::Udp => 8,
        _ => return None,
    };
    Some((key, l4_start + l4_hdr..ip.total_len().min(pkt.len())))
}

/// The outcome of an engine run.
#[derive(Debug)]
pub struct EngineReport {
    /// Scheduling mode the run used.
    pub mode: EngineMode,
    /// Core count.
    pub cores: usize,
    /// Wall-clock nanoseconds over the dispatch/process/join region
    /// (trace generation excluded).
    pub wall_ns: u64,
    /// Measured forwarding rate: input bits / wall seconds. Meaningful
    /// in Parallel mode; in Deterministic mode it is single-thread rate.
    pub throughput_bps: f64,
    /// Steady-state conversion yield (drain excluded), computed exactly
    /// as [`crate::pipeline::run_pipeline`] computes it.
    pub conversion_yield: f64,
    /// Aggregate counters over all cores.
    pub totals: CoreCounters,
    /// Per-core counter snapshot from the shared registry.
    pub per_core: Vec<CoreCounters>,
    /// Per-flow output digests (drain included: the full delivered
    /// stream).
    pub flow_digests: BTreeMap<FlowKey, FlowDigest>,
    /// Observability results: merged histograms, per-core flight
    /// recorder contents, and the in-run time series.
    pub obs: ObsReport,
    /// What the pre-shard ingress fault pass did to the trace (all
    /// zero when faults are off).
    pub ingress_faults: IngressStats,
    /// Worker stalls the Parallel-mode heartbeat monitor flagged.
    /// Advisory: wall-clock dependent, so tests assert on the restart
    /// counters, not on this.
    pub stalls_detected: u64,
    /// Every emitted packet, in core order then emission order. Empty
    /// unless [`EngineConfig::capture_output`] was set.
    pub captured_output: Vec<Vec<u8>>,
    /// The live observability endpoint, when
    /// [`EngineConfig::serve_port`] asked for one (Parallel mode only).
    /// Holding the report keeps the endpoint serving; dropping it stops
    /// the thread.
    pub serve: Option<ServeHandle>,
}

/// One worker's private state: the translation engine plus local
/// counters and digests. Shared by both modes so their byte behaviour
/// cannot drift apart.
struct Worker {
    engine: CoreEngine,
    counters: CoreCounters,
    digests: BTreeMap<FlowKey, FlowDigest>,
    jumbo_at: usize,
    /// Whether the engine carries an active recorder (cached so the
    /// batch loop skips the per-batch `Instant` reads when off).
    obs_on: bool,
    /// This worker's core index — the key for injected worker faults.
    core: usize,
    /// Per-batch fault verdicts (the inert injector in production).
    faults: PlannedFaults,
    /// Whether injected stalls really sleep. True only in Parallel
    /// mode — Deterministic mode has no wall clock to stall against,
    /// and a stall must never change what the flows carry.
    wall_stalls: bool,
    /// Rebuild parameters for a post-panic engine restart.
    pipe: PipelineConfig,
    obs_cfg: ObsConfig,
    /// Flight-recorder contents rescued from pre-restart engines, so a
    /// restart loses telemetry no more than it loses flow state.
    events_carry: Vec<Event>,
    hists_carry: HistSet,
    /// Span-tracer and profiler contents rescued across restarts, for
    /// the same reason.
    spans_carry: Vec<Span>,
    profile_carry: Profiler,
    /// The per-core SLO watchdog, evaluated at every batch boundary.
    /// Lives on the worker (not the engine) so alert edge state and
    /// tallies survive engine restarts.
    slo: SloWatchdog,
    /// Copies of every emitted packet, when the run asked for capture
    /// ([`EngineConfig::capture_output`]); `None` keeps the hot path
    /// allocation-free.
    captured: Option<Vec<Vec<u8>>>,
    /// Whether per-flow digests are maintained
    /// ([`EngineConfig::digests`]).
    digests_on: bool,
    /// Whether batches are classified up front
    /// ([`EngineConfig::batch_parse`]).
    batch_parse: bool,
    /// Reused per-batch [`ParsedMeta`] array — sized once, then the
    /// batch-parse pass is allocation-free.
    parse_scratch: Vec<ParsedMeta>,
}

/// The worker's [`PacketSink`]: accounts every emitted packet into the
/// worker's counters and digests, then hands the buffer back for pool
/// recycling. This closes the allocation loop — on the steady-state hot
/// path an output buffer travels engine pool → sink → engine pool
/// without touching the allocator.
struct Accountant<'a> {
    counters: &'a mut CoreCounters,
    /// `None` when the run turned digests off
    /// ([`EngineConfig::digests`]): emitted packets are then counted
    /// but their payload bytes are never re-read.
    digests: Option<&'a mut BTreeMap<FlowKey, FlowDigest>>,
    jumbo_at: usize,
    inband: bool,
    capture: Option<&'a mut Vec<Vec<u8>>>,
}

impl PacketSink for Accountant<'_> {
    fn accept(&mut self, buf: PacketBuf) -> Option<PacketBuf> {
        let unit = buf.as_slice();
        self.counters.pkts_out += 1;
        self.counters.bytes_out += unit.len() as u64;
        if self.inband {
            self.counters.pkts_out_inband += 1;
            if unit.len() >= self.jumbo_at {
                self.counters.jumbo_out_inband += 1;
            }
        }
        if let Some(digests) = self.digests.as_deref_mut() {
            if let Some((key, payload)) = flow_and_l4_payload(unit) {
                let payload_len = (payload.end - payload.start) as u64;
                let d = digests.entry(key).or_default();
                d.pkts += 1;
                d.bytes += payload_len;
                if unit.len() >= self.jumbo_at {
                    d.jumbo_bytes += payload_len;
                }
                d.fnv = fnv_extend(d.fnv, &unit[payload]);
            }
        }
        if let Some(cap) = self.capture.as_deref_mut() {
            // px-analyze: allow(R3, reason = "capture is a test-harness branch, None in production: the chaos matrix needs the delivered bytes, so it pays the copy")
            cap.push(unit.to_vec());
        }
        Some(buf)
    }

    /// Scatter-gather emissions from the split engine. With digests and
    /// capture off (the steady-state production config) the packet is
    /// accounted from the view's lengths and never flattened — the
    /// payload bytes of a split jumbo are not touched again after the
    /// checksum pass. Either auditor needs the flat bytes, so their
    /// presence falls back to materialise-then-accept.
    fn push_sg(&mut self, mut pkt: px_wire::SgPacket<'_>) -> Option<PacketBuf> {
        if self.digests.is_some() || self.capture.is_some() {
            // px-analyze: allow(R3, reason = "auditor branch only: digests/capture need flat bytes, so the SG view is materialised through the pool-headroom constructor")
            let mut buf = pkt.take_header();
            // px-analyze: allow(R7, reason = "auditor branch only: flattening the SG payload is the documented fallback when digests or capture are enabled; steady state takes the view path below")
            buf.extend_from_slice(pkt.payload());
            return self.accept(buf);
        }
        let len = pkt.total_len();
        self.counters.pkts_out += 1;
        self.counters.bytes_out += len as u64;
        if self.inband {
            self.counters.pkts_out_inband += 1;
            if len >= self.jumbo_at {
                self.counters.jumbo_out_inband += 1;
            }
        }
        Some(pkt.take_header())
    }
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cfg: &PipelineConfig,
        obs: ObsConfig,
        core: usize,
        faults: FaultSpec,
        wall_stalls: bool,
        capture: bool,
        digests_on: bool,
        batch_parse: bool,
    ) -> Self {
        let mut engine = CoreEngine::for_pipe(cfg);
        if obs.enabled {
            engine.enable_obs(obs);
        }
        engine.set_faults(faults);
        // Causal span links: core c's emissions get link ids in the
        // (c + 1) << 48 block, unique across cores; 0 stays "unlinked".
        engine.set_span_link_base(((core as u64) + 1) << 48);
        let obs_on = engine.obs_mut().is_some_and(|r| r.is_enabled());
        Worker {
            engine,
            counters: CoreCounters::default(),
            digests: BTreeMap::new(),
            // Same threshold the pipeline model uses: an output packet
            // "reached iMTU" when one more eMTU payload would not fit.
            jumbo_at: cfg.imtu - (cfg.emtu - 40) + 1,
            obs_on,
            core,
            faults: PlannedFaults::new(faults),
            wall_stalls,
            pipe: *cfg,
            obs_cfg: obs,
            events_carry: Vec::new(),
            hists_carry: HistSet::default(),
            spans_carry: Vec::new(),
            // Sized like the live profiler: a default-constructed
            // accumulator would have k = 0 and silently drop every
            // sketch entry folded into it across restarts.
            profile_carry: Profiler::new(obs.profile_topk, obs.profile_ring),
            slo: SloWatchdog::new(obs.slo),
            captured: if capture { Some(Vec::new()) } else { None },
            digests_on,
            batch_parse,
            parse_scratch: Vec::new(),
        }
    }

    /// One batch through the engine, with worker-fault injection at the
    /// batch boundary: an injected stall sleeps (prey for the heartbeat
    /// monitor), an injected panic unwinds and is caught right here —
    /// after which the worker rescues its flow state, restarts its
    /// engine in place, and reprocesses the batch it was handed.
    fn run_batch(&mut self, batch: Batch) {
        if !self.faults.spec.enabled {
            self.process_batch(batch);
            return;
        }
        let idx = self.counters.batches;
        if self.wall_stalls {
            let stall_ns = self.faults.batch_stall_ns(self.core, idx);
            if stall_ns > 0 {
                std::thread::sleep(Duration::from_nanos(stall_ns));
            }
        }
        if self.faults.batch_panic(self.core, idx) {
            // A real unwind, so the catch-and-restart path exercised is
            // the one a defect in batch processing would take.
            #[allow(clippy::panic)]
            // px-analyze: allow(R1, reason = "deliberate injected fault: the panic is caught on this same line and drives the restart path under test")
            let caught = std::panic::catch_unwind(|| panic!("injected worker fault"));
            if caught.is_err() {
                let now = batch.first().map_or(0, |(t, _)| *t);
                self.restart_worker(idx, now);
            }
        }
        self.process_batch(batch);
    }

    /// Post-panic self-healing: flushes (rescues) every held aggregate
    /// out of the wedged engine so no flow loses bytes, absorbs its
    /// counters and flight recorder, then stands up a fresh engine in
    /// place — the worker never leaves the RSS shard map. Panic- and
    /// alloc-free on its own tokens (px-analyze R6).
    fn restart_worker(&mut self, batch_idx: u64, now: u64) {
        let out_before = self.counters.pkts_out;
        let mut acct = Accountant {
            counters: &mut self.counters,
            digests: self.digests_on.then_some(&mut self.digests),
            jumbo_at: self.jumbo_at,
            // Rescued packets are out-of-band, like the end-of-run
            // drain: the flows still see every byte, but steady-state
            // conversion metrics exclude them.
            inband: false,
            capture: self.captured.as_mut(),
        };
        self.engine.finish_into(&mut acct);
        let rescued = self.counters.pkts_out - out_before;
        self.absorb_engine_stats();
        let (events, hists) = self.engine.take_obs();
        self.events_carry.extend(events);
        // px-analyze: allow(R6, reason = "salvage fold once per restart, not per packet: the unqualified merge also resolves to the profiler's fold, whose ring drain allocates a scratch snapshot")
        self.hists_carry.merge(&hists);
        // px-analyze: allow(R6, reason = "draining the span ring re-arms it with one fresh allocation per restart, not per packet")
        self.spans_carry.extend(self.engine.take_spans());
        // px-analyze: allow(R6, reason = "detaching the profiler re-arms the sketch and ring with one fresh allocation per restart, not per packet")
        let profile = self.engine.take_profiler();
        self.profile_carry.merge(&profile);
        self.counters.worker_restarts += 1;
        // px-analyze: allow(R6, R8, reason = "standing up the replacement engine allocates and seeds debug tracking by design: the rescue flush above ran alloc-free, and a rebuild that cannot allocate has nothing left to degrade to")
        let mut engine = CoreEngine::for_pipe(&self.pipe);
        if self.obs_cfg.enabled {
            // px-analyze: allow(R6, reason = "re-arming the flight recorder allocates its ring up front, once per restart, not per packet")
            engine.enable_obs(self.obs_cfg);
        }
        engine.set_faults(self.faults.spec);
        engine.set_span_link_base(((self.core as u64) + 1) << 48);
        self.engine = engine;
        if let Some(rec) = self.engine.obs_mut() {
            rec.record(EventKind::WorkerRestart, now, batch_idx as u32, 0, rescued);
            // A Restart crossing in the trace: aux carries the number of
            // rescue-flushed packets, len the batch ordinal.
            rec.record_span(SpanCat::Restart, now, 0, batch_idx as u32, 0, rescued, 0);
        }
    }

    /// Folds the engine's degradation/drop counters into the worker's —
    /// called exactly once per engine *instance* (at restart or at
    /// finish), so the sums stay correct across restarts.
    fn absorb_engine_stats(&mut self) {
        let (degraded, exhausted, drops) = self.engine.degrade_stats();
        self.counters.degraded_pkts += degraded;
        self.counters.pool_exhausted += exhausted;
        self.counters.backpressure_drops += drops;
        self.counters.dropped_malformed += self.engine.dropped_malformed();
        let (inconsistent, evasion) = self.engine.security_drops();
        self.counters.dropped_inconsistent_overlap += inconsistent;
        self.counters.dropped_overlap_evasion += evasion;
        // Monotonic flow-state counters fold per engine instance; the
        // flows_live gauge is sampled only at finish (a restarted
        // engine's surviving flows would otherwise double-count).
        let (_, idle, pressure, steered) = self.engine.flow_stats();
        self.counters.flows_evicted_idle += idle;
        self.counters.flows_evicted_pressure += pressure;
        self.counters.steered_mice_pkts += steered;
    }

    /// The dispatcher saw this core's input stream end: flush every
    /// held aggregate on its now-unreachable hold deadline instead of
    /// parking it until the global end-of-run drain. Out-of-band
    /// accounting, like the drain itself.
    fn quiesce(&mut self) {
        let mut acct = Accountant {
            counters: &mut self.counters,
            digests: self.digests_on.then_some(&mut self.digests),
            jumbo_at: self.jumbo_at,
            inband: false,
            capture: self.captured.as_mut(),
        };
        self.engine.idle_tick_into(&mut acct);
    }

    fn process_batch(&mut self, batch: Vec<(u64, Vec<u8>)>) {
        self.counters.batches += 1;
        let batch_start = if self.obs_on {
            // px-analyze: allow(R8, reason = "wall clock feeds the batch-latency histogram only; digests and every forwarding decision derive from the simulated event clock, so replays stay bit-identical")
            Some(Instant::now())
        } else {
            None
        };
        // Batch-front classification: one prefetched header walk per
        // packet, cached in `parse_scratch` and consumed below via
        // `push_parsed_into`. Only the merge engine has a parsed fast
        // path; for the rest the scratch stays empty and the per-packet
        // loop parses as before.
        if self.batch_parse && matches!(self.engine, CoreEngine::Merge(_)) {
            batchparse::parse_batch_with(&batch, |(_, p)| p.as_slice(), &mut self.parse_scratch);
        } else {
            self.parse_scratch.clear();
        }
        // Stage attribution for the continuous profiler: everything up
        // to here is the parse/classify stage.
        let parse_ns = batch_start.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
        let n_pkts = batch.len() as u64;
        let mut last_now = 0u64;
        let Worker {
            engine,
            counters,
            digests,
            jumbo_at,
            captured,
            digests_on,
            parse_scratch,
            ..
        } = self;
        for (i, (now, pkt)) in batch.into_iter().enumerate() {
            counters.pkts_in += 1;
            counters.bytes_in += pkt.len() as u64;
            if let Some(rec) = engine.obs_mut() {
                rec.record(EventKind::PktIn, now, pkt.len() as u32, 0, 0);
            }
            last_now = now;
            let mut acct = Accountant {
                counters: &mut *counters,
                digests: if *digests_on {
                    Some(&mut *digests)
                } else {
                    None
                },
                jumbo_at: *jumbo_at,
                inband: true,
                capture: captured.as_mut(),
            };
            match parse_scratch.get(i) {
                Some(meta) => engine.push_parsed_into(now, pkt, meta, &mut acct),
                None => engine.push_into(now, pkt, &mut acct),
            }
        }
        if let Some(t0) = batch_start {
            // The BatchDone *event* carries only logical facts (last
            // arrival ts, packet count) so the event stream stays
            // deterministic; the batch's wall time goes to histograms
            // and batch profiles, which are measurement-only.
            let wall = t0.elapsed().as_nanos() as u64;
            let batch_idx = self.counters.batches;
            if let Some(rec) = self.engine.obs_mut() {
                rec.record(EventKind::BatchDone, last_now, n_pkts as u32, 0, 0);
                rec.observe_batch(wall, n_pkts);
                rec.observe_batch_profile(BatchProfile {
                    batch: batch_idx,
                    pkts: n_pkts as u32,
                    wall_ns: wall,
                    parse_ns,
                });
            }
            self.check_slo(last_now, n_pkts);
        }
    }

    /// Batch-boundary SLO evaluation. Every input except `p99_pkt_ns`
    /// is a logical counter, so Deterministic-mode alerts replay
    /// bit-identically; the wall-clock p99 is consulted only in
    /// Parallel mode (`wall_stalls` doubles as the mode marker). A
    /// rising-edge breach is recorded as one `Slo` span in the trace
    /// stream (aux = breach mask).
    fn check_slo(&mut self, logical_now: u64, n_pkts: u64) {
        if !self.slo.spec().enabled {
            return;
        }
        let evicted_pressure = self.counters.flows_evicted_pressure + self.engine.flow_stats().2;
        let p99_pkt_ns = if self.wall_stalls {
            self.engine.obs_mut().map(|r| r.hists().pkt_ns.p99())
        } else {
            None
        };
        let obs = BatchObs {
            batch: self.counters.batches,
            logical_now,
            yield_ppm: (self.counters.conversion_yield() * 1e6) as u32,
            yield_valid: self.counters.pkts_out_inband > 0,
            degraded: self.engine.is_degraded(),
            evicted_pressure,
            p99_pkt_ns,
        };
        let mask = self.slo.evaluate(&obs);
        if mask != 0 {
            if let Some(rec) = self.engine.obs_mut() {
                rec.record_span(
                    SpanCat::Slo,
                    logical_now,
                    0,
                    n_pkts as u32,
                    0,
                    u64::from(mask),
                    0,
                );
            }
        }
    }

    fn finish(&mut self) {
        let mut acct = Accountant {
            counters: &mut self.counters,
            digests: self.digests_on.then_some(&mut self.digests),
            jumbo_at: self.jumbo_at,
            inband: false,
            capture: self.captured.as_mut(),
        };
        self.engine.finish_into(&mut acct);
        self.absorb_engine_stats();
        // The drain emptied the merge/bundle tables, so what remains
        // live is the classifier's tracked-flow population — the gauge
        // the flow-scale soak reads.
        self.counters.flows_live += self.engine.flow_stats().0;
        // Every pool buffer must be home after a full drain — a nonzero
        // count here is a leak (an aggregate forgotten by a degrade or
        // restart path, exactly what the chaos matrix exists to catch).
        debug_assert_eq!(
            self.engine.pool_outstanding(),
            0,
            "core {}: pool buffers leaked past the drain",
            self.core
        );
    }

    /// Publishes counters, merges histograms, and extracts the flight
    /// recorder — the worker's end-of-run handoff to the registry.
    /// Events rescued from pre-restart engines come first (they are
    /// chronologically earlier).
    fn publish_final(mut self, core: usize, registry: &StatsRegistry) -> WorkerOutput {
        registry.set_core(core, &self.counters);
        let (events, hists) = self.engine.take_obs();
        self.hists_carry.merge(&hists);
        registry.merge_core_hists(core, &self.hists_carry);
        let mut all_events = self.events_carry;
        all_events.extend(events);
        let mut all_spans = self.spans_carry;
        all_spans.extend(self.engine.take_spans());
        let mut profiler = self.profile_carry;
        profiler.merge(&self.engine.take_profiler());
        // Final span publish so a live endpoint outliving the run keeps
        // serving the complete window.
        registry.publish_core_spans(core, all_spans.clone());
        WorkerOutput {
            digests: self.digests,
            events: all_events,
            spans: all_spans,
            profiler,
            slo: self.slo,
            captured: self.captured.unwrap_or_default(),
        }
    }
}

/// A single-core worker handle for streaming harnesses that feed
/// packets incrementally instead of materialising a whole trace — the
/// flow-scale soak streams millions of flows through one of these per
/// core. It wraps the exact `Worker` accounting loop `run_engine`
/// drives (same engine construction via [`CoreEngine::for_pipe`], same
/// [`FlowDigest`] bookkeeping), so digests taken here are comparable
/// with engine-run digests and across core counts.
pub struct CoreDriver {
    worker: Worker,
}

impl CoreDriver {
    /// Builds the driver for one core of `pipe` (no observability, no
    /// faults — the soak measures the production hot path).
    pub fn new(pipe: &PipelineConfig, core: usize) -> Self {
        CoreDriver {
            // Digests on (the soak asserts conservation through them),
            // batch parse off: the soak's frozen per-packet cost window
            // measures the historical single-packet path.
            worker: Worker::new(
                pipe,
                ObsConfig::disabled(),
                core,
                FaultSpec::off(),
                false,
                false,
                true,
                false,
            ),
        }
    }

    /// Processes one batch of `(arrival_ns, packet)` pairs in order.
    pub fn run_batch(&mut self, batch: Vec<(u64, Vec<u8>)>) {
        self.worker.run_batch(batch);
    }

    /// Drains every held aggregate and folds the engine's counters in.
    /// Call exactly once, after the last batch.
    pub fn finish(&mut self) {
        self.worker.finish();
    }

    /// The worker's private counters (flow-state counters are folded in
    /// by [`finish`](Self::finish)).
    pub fn counters(&self) -> &CoreCounters {
        &self.worker.counters
    }

    /// Per-flow output digests accumulated so far.
    pub fn digests(&self) -> &BTreeMap<FlowKey, FlowDigest> {
        &self.worker.digests
    }

    /// Bytes reserved by the engine's flow-state arenas right now.
    pub fn arena_bytes(&self) -> usize {
        self.worker.engine.arena_bytes()
    }

    /// Flows currently occupying per-core state.
    pub fn flows_live(&self) -> u64 {
        self.worker.engine.flow_stats().0
    }

    /// Pool buffers currently loaned out (zero after a full drain).
    pub fn pool_outstanding(&self) -> u64 {
        self.worker.engine.pool_outstanding()
    }
}

/// What each worker hands back at the end of a run.
struct WorkerOutput {
    digests: BTreeMap<FlowKey, FlowDigest>,
    events: Vec<Event>,
    /// Span-tracer contents (oldest first; restarts' spans first).
    spans: Vec<Span>,
    /// The core's continuous profiler, restarts folded in.
    profiler: Profiler,
    /// The core's SLO watchdog tallies.
    slo: SloWatchdog,
    /// Emitted-packet copies (empty unless capture was on).
    captured: Vec<Vec<u8>>,
}

/// A batch of (arrival-time, packet) pairs bound for one core.
type Batch = Vec<(u64, Vec<u8>)>;

/// Shards the trace per core into `batch_pkts`-sized batches, in
/// arrival order, with arrival timestamps derived from the offered
/// load — the single sharding path both modes consume.
fn shard_batches(cfg: &EngineConfig, trace: Vec<(FlowKey, Vec<u8>)>) -> Vec<Vec<Batch>> {
    let rss = RssHasher::symmetric();
    let cores = cfg.pipe.cores;
    let inter_arrival_ns = 1e9 / cfg.pipe.offered_pps;
    let mut per_core: Vec<Vec<Batch>> = vec![Vec::new(); cores];
    let mut open: Vec<Batch> = vec![Vec::with_capacity(cfg.batch_pkts); cores];
    for (i, (key, pkt)) in trace.into_iter().enumerate() {
        let core = rss.queue_for(&key, cores);
        let now = (i as f64 * inter_arrival_ns) as u64;
        open[core].push((now, pkt));
        if open[core].len() >= cfg.batch_pkts {
            per_core[core].push(std::mem::replace(
                &mut open[core],
                Vec::with_capacity(cfg.batch_pkts),
            ));
        }
    }
    for (core, tail) in open.into_iter().enumerate() {
        if !tail.is_empty() {
            per_core[core].push(tail);
        }
    }
    per_core
}

/// What a mode runner hands back: timing, per-worker outputs, and the
/// sampler's time series.
struct ModeOutput {
    wall_ns: u64,
    outputs: Vec<WorkerOutput>,
    series: Vec<TimeSample>,
    /// Stall declarations from the Parallel-mode heartbeat monitor.
    stalls_detected: u64,
    /// The live endpoint, when the run served one (Parallel mode only).
    serve: Option<ServeHandle>,
}

/// Builds one time-series point from an aggregate counter snapshot.
fn sample_at(t_ns: u64, agg: &CoreCounters) -> TimeSample {
    TimeSample {
        t_ns,
        pkts_in: agg.pkts_in,
        bytes_in: agg.bytes_in,
        pkts_out: agg.pkts_out,
        bytes_out: agg.bytes_out,
        conversion_yield: agg.conversion_yield(),
    }
}

/// Runs the sharded engine and reports measured throughput, yield,
/// counters, per-flow digests, and observability results.
pub fn run_engine(cfg: EngineConfig) -> EngineReport {
    let pipe = cfg.pipe;
    let mut tracer = TraceGen::new(
        pipe.workload,
        pipe.n_flows,
        pipe.emtu,
        pipe.mean_run,
        pipe.seed,
    );
    let trace = tracer.generate(pipe.trace_pkts);
    run_engine_on_trace(cfg, trace)
}

/// [`run_engine`] over a caller-supplied trace instead of the built-in
/// [`TraceGen`] — how the chaos-churn and flow-scale harnesses drive
/// the full sharded engine with the internet traffic model. The trace
/// is taken in global arrival order; sharding, batching, fault
/// injection, and accounting are byte-identical to `run_engine`.
pub fn run_engine_on_trace(cfg: EngineConfig, trace: Vec<(FlowKey, Vec<u8>)>) -> EngineReport {
    assert!(cfg.pipe.cores > 0, "need at least one core");
    assert!(cfg.batch_pkts > 0, "batches must hold packets");
    let pipe = cfg.pipe;
    // Ingress faults are applied to the *global* trace, before RSS
    // sharding, so the faulted input is a pure function of (seed,
    // trace) — identical whatever the core count. One predicted branch
    // when faults are off.
    let mut fault_plan = FaultPlan::new(cfg.faults);
    let trace = fault_plan.apply_ingress_keyed(trace);
    let registry = Arc::new(StatsRegistry::new(pipe.cores));

    let mut out = match cfg.mode {
        EngineMode::Parallel => run_parallel(&cfg, trace, &registry),
        EngineMode::Deterministic => run_deterministic(&cfg, trace, &registry),
    };

    let mut flow_digests: BTreeMap<FlowKey, FlowDigest> = BTreeMap::new();
    let mut per_core_events = Vec::with_capacity(out.outputs.len());
    let mut per_core_spans = Vec::with_capacity(out.outputs.len());
    // The merged profiler needs real capacities: a default-constructed
    // one (k = 0, ring 0) would silently drop every per-core entry.
    let mut profile = Profiler::new(cfg.obs.profile_topk, cfg.obs.profile_ring);
    let mut slo = SloWatchdog::new(cfg.obs.slo);
    let mut captured_output = Vec::new();
    for worker_out in out.outputs.drain(..) {
        per_core_events.push(worker_out.events);
        per_core_spans.push(worker_out.spans);
        profile.merge(&worker_out.profiler);
        slo.merge(&worker_out.slo);
        captured_output.extend(worker_out.captured);
        for (key, d) in worker_out.digests {
            // RSS pins a flow to exactly one core, so keys never collide
            // across cores; insert-or-merge keeps this robust anyway.
            let e = flow_digests.entry(key).or_default();
            if e.pkts == 0 {
                *e = d;
            } else {
                e.pkts += d.pkts;
                e.bytes += d.bytes;
                e.jumbo_bytes += d.jumbo_bytes;
                e.fnv ^= d.fnv;
            }
        }
    }

    let per_core = registry.snapshot();
    let totals = registry.aggregate();
    let wall_ns = out.wall_ns;
    if cfg.obs.enabled {
        // Close the time series with a final whole-run sample.
        out.series.push(sample_at(wall_ns, &totals));
    }
    let obs = if cfg.obs.enabled {
        ObsReport {
            enabled: true,
            hists: registry.hist_aggregate(),
            per_core_events,
            per_core_spans,
            profile,
            slo,
            time_series: out.series,
        }
    } else {
        ObsReport::disabled()
    };
    let wall_s = wall_ns as f64 / 1e9;
    EngineReport {
        mode: cfg.mode,
        cores: pipe.cores,
        wall_ns,
        throughput_bps: if wall_s > 0.0 {
            totals.bytes_in as f64 * 8.0 / wall_s
        } else {
            0.0
        },
        conversion_yield: totals.conversion_yield(),
        totals,
        per_core,
        flow_digests,
        obs,
        ingress_faults: fault_plan.stats,
        stalls_detected: out.stalls_detected,
        captured_output,
        serve: out.serve,
    }
}

/// Stands up the dependency-free live observability endpoint on `port`
/// (0 = ephemeral): `/metrics` renders the registry's current aggregate
/// in Prometheus exposition format, `/healthz` evaluates `spec` against
/// the same aggregate (HTTP 503 on breach), and `/trace` exports the
/// most recently published span windows as Perfetto JSON
/// (`?flow=<id>` filters to one flow). Serving runs entirely on its own
/// control thread reading the shared registry — nothing here is
/// reachable from the per-packet entry points.
pub fn serve_endpoint(
    port: u16,
    registry: Arc<StatsRegistry>,
    spec: SloSpec,
) -> std::io::Result<ServeHandle> {
    serve(
        port,
        Box::new(move |path, query| match path {
            "/metrics" => Response::ok(
                "text/plain; version=0.0.4",
                registry.metrics_snapshot().to_prometheus("pxgw"),
            ),
            "/healthz" => {
                let totals = registry.aggregate();
                let p99 = registry.hist_aggregate().pkt_ns.p99();
                let verdict = evaluate_snapshot(
                    &spec,
                    p99,
                    totals.conversion_yield(),
                    totals.flows_evicted_pressure,
                );
                let body = format!("{}\n", verdict.to_json(""));
                if verdict.ok {
                    Response::ok("application/json", body)
                } else {
                    Response {
                        status: 503,
                        content_type: "application/json",
                        body,
                    }
                }
            }
            "/trace" => {
                let flow = query.and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("flow="))
                        .and_then(|v| v.parse::<u32>().ok())
                });
                Response::ok(
                    "application/json",
                    perfetto_json(&registry.spans_snapshot(), flow),
                )
            }
            _ => Response::not_found(),
        }),
    )
}

/// What the dispatcher sends a Parallel-mode worker.
#[derive(Debug)]
enum WorkerMsg {
    /// A burst of (arrival-ts, packet) pairs to process.
    Batch(Batch),
    /// This core's input stream has ended: idle-tick the hold timers so
    /// expired flows flush now rather than at the global drain. Sent
    /// exactly once per core.
    Quiesce,
}

/// Parallel mode: spawn one worker thread per core, stream batches over
/// bounded channels, join, and merge results. Only the dispatch →
/// process → join region is timed.
fn run_parallel(
    cfg: &EngineConfig,
    trace: Vec<(FlowKey, Vec<u8>)>,
    registry: &Arc<StatsRegistry>,
) -> ModeOutput {
    let cores = cfg.pipe.cores;
    let batches = shard_batches(cfg, trace);
    // Live endpoint before the clock starts: serving runs on its own
    // thread against the shared registry, so scrapes never touch the
    // timed region's threads.
    let serve_handle = cfg
        .serve_port
        .and_then(|port| serve_endpoint(port, Arc::clone(registry), cfg.obs.slo).ok());
    let start = Instant::now();

    // In-run sampler: while workers publish periodic counter snapshots,
    // this thread turns them into a throughput/yield time series.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = if cfg.obs.enabled && cfg.obs.sample_interval_us > 0 {
        let registry = Arc::clone(registry);
        let stop = Arc::clone(&stop);
        let interval = Duration::from_micros(cfg.obs.sample_interval_us);
        Some(std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut series = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                let agg = registry.aggregate();
                series.push(sample_at(t0.elapsed().as_nanos() as u64, &agg));
            }
            series
        }))
    } else {
        None
    };

    // Supervisor: workers beat a shared heartbeat once per batch; a
    // monitor thread strike-counts the heartbeats and flags stalls.
    // Only spawned when stall injection is armed — production runs pay
    // nothing.
    let heartbeats = Arc::new(Heartbeats::new(cores));
    let monitor = if cfg.faults.enabled && cfg.faults.stall_every_batches > 0 {
        let hb = Arc::clone(&heartbeats);
        let stop = Arc::clone(&stop);
        Some(std::thread::spawn(move || {
            let mut det = StallDetector::new(hb.cores(), 3);
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_micros(50));
                for core in det.scan(&hb) {
                    // Detection is advisory here: the worker restarts
                    // itself on the injected-panic path, so the monitor
                    // just forgives the core and counts the episode.
                    det.clear(core);
                }
            }
            det.stalls_detected
        }))
    } else {
        None
    };

    let publish_every = if cfg.obs.enabled {
        cfg.obs.publish_every_batches
    } else {
        0
    };
    let mut senders = Vec::with_capacity(cores);
    let mut handles = Vec::with_capacity(cores);
    for core in 0..cores {
        let (tx, rx) = channel::bounded::<WorkerMsg>(cfg.channel_batches);
        senders.push(tx);
        let registry = Arc::clone(registry);
        let hb = Arc::clone(&heartbeats);
        let pipe = cfg.pipe;
        let obs = cfg.obs;
        let faults = cfg.faults;
        let capture = cfg.capture_output;
        let digests = cfg.digests;
        let batch_parse = cfg.batch_parse;
        handles.push(std::thread::spawn(move || {
            let mut w = Worker::new(
                &pipe,
                obs,
                core,
                faults,
                true,
                capture,
                digests,
                batch_parse,
            );
            for msg in rx.iter() {
                match msg {
                    WorkerMsg::Batch(batch) => {
                        w.run_batch(batch);
                        hb.beat(core);
                        // Periodic counter publish so mid-run snapshots
                        // and the sampler see progress (overwrite:
                        // counters are cumulative and this slot has one
                        // writer).
                        if publish_every > 0 && w.counters.batches.is_multiple_of(publish_every) {
                            registry.set_core(core, &w.counters);
                            // Publish the recent span window for live
                            // `/trace` serving (cold path: every
                            // `publish_every` batches, off the per-packet
                            // loop).
                            if let Some(rec) = w.engine.obs_mut() {
                                if rec.spans_recorded() > 0 {
                                    registry.publish_core_spans(core, rec.recent_spans(64));
                                }
                            }
                        }
                    }
                    WorkerMsg::Quiesce => w.quiesce(),
                }
            }
            w.finish();
            w.publish_final(core, &registry)
        }));
    }
    // Round-robin dispatch in arrival order; bounded channels apply
    // back-pressure when a core falls behind. The first time a core's
    // queue runs dry it gets one Quiesce so its held flows flush on
    // deadline even though no more packets will arrive on its shard.
    let max_rounds = batches.iter().map(Vec::len).max().unwrap_or(0);
    let mut queues: Vec<std::vec::IntoIter<Batch>> =
        batches.into_iter().map(Vec::into_iter).collect();
    let mut quiesced = vec![false; cores];
    for _ in 0..max_rounds {
        for (core, q) in queues.iter_mut().enumerate() {
            let msg = match q.next() {
                Some(batch) => WorkerMsg::Batch(batch),
                None if !quiesced[core] => {
                    quiesced[core] = true;
                    WorkerMsg::Quiesce
                }
                None => continue,
            };
            // px-analyze: allow(R1, reason = "run orchestration, not datapath: a send can only fail if a worker thread already panicked")
            #[allow(clippy::expect_used)]
            senders[core].send(msg).expect("worker alive");
        }
    }
    for (core, was_quiesced) in quiesced.into_iter().enumerate() {
        if !was_quiesced {
            // Streams that ran to the final round still get their
            // end-of-stream tick, for symmetry with Deterministic mode.
            let msg = WorkerMsg::Quiesce;
            // px-analyze: allow(R1, reason = "run orchestration, not datapath: a send can only fail if a worker thread already panicked")
            #[allow(clippy::expect_used)]
            senders[core].send(msg).expect("worker alive");
        }
    }
    drop(senders);
    #[allow(clippy::expect_used)]
    let outputs: Vec<_> = handles
        .into_iter()
        // px-analyze: allow(R1, reason = "run teardown, not datapath: join propagates a worker panic to the harness")
        .map(|h| h.join().expect("worker must not panic"))
        .collect();
    let wall_ns = start.elapsed().as_nanos() as u64;
    stop.store(true, Ordering::Relaxed);
    let series = match sampler {
        // px-analyze: allow(R1, reason = "run teardown, not datapath: join propagates a sampler panic to the harness")
        #[allow(clippy::expect_used)]
        Some(h) => h.join().expect("sampler must not panic"),
        None => Vec::new(),
    };
    let stalls_detected = match monitor {
        // px-analyze: allow(R1, reason = "run teardown, not datapath: join propagates a monitor panic to the harness")
        #[allow(clippy::expect_used)]
        Some(h) => h.join().expect("monitor must not panic"),
        None => 0,
    };
    ModeOutput {
        wall_ns,
        outputs,
        series,
        stalls_detected,
        serve: serve_handle,
    }
}

/// Deterministic mode: the identical batch streams, executed inline —
/// one batch per core per round, cores in index order, then a drain in
/// core order. No sampler thread runs (nothing else may touch the
/// schedule); the time series is the single final sample `run_engine`
/// appends.
fn run_deterministic(
    cfg: &EngineConfig,
    trace: Vec<(FlowKey, Vec<u8>)>,
    registry: &Arc<StatsRegistry>,
) -> ModeOutput {
    let cores = cfg.pipe.cores;
    let batches = shard_batches(cfg, trace);
    let start = Instant::now();
    let mut workers: Vec<Worker> = (0..cores)
        .map(|core| {
            Worker::new(
                &cfg.pipe,
                cfg.obs,
                core,
                cfg.faults,
                false,
                cfg.capture_output,
                cfg.digests,
                cfg.batch_parse,
            )
        })
        .collect();
    let max_rounds = batches.iter().map(Vec::len).max().unwrap_or(0);
    let mut queues: Vec<std::vec::IntoIter<Batch>> =
        batches.into_iter().map(Vec::into_iter).collect();
    let mut quiesced = vec![false; cores];
    for _ in 0..max_rounds {
        for (core, q) in queues.iter_mut().enumerate() {
            match q.next() {
                Some(batch) => workers[core].run_batch(batch),
                // First end-of-stream on this shard: idle-tick so held
                // flows flush on deadline (the dead-shard fix), exactly
                // where Parallel mode sends its Quiesce message.
                None if !quiesced[core] => {
                    quiesced[core] = true;
                    workers[core].quiesce();
                }
                None => {}
            }
        }
    }
    let outputs = workers
        .into_iter()
        .enumerate()
        .map(|(core, mut w)| {
            if !quiesced[core] {
                w.quiesce();
            }
            w.finish();
            w.publish_final(core, registry)
        })
        .collect();
    ModeOutput {
        wall_ns: start.elapsed().as_nanos() as u64,
        outputs,
        series: Vec::new(),
        stalls_detected: 0,
        serve: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(mode: EngineMode, cores: usize, workload: WorkloadKind) -> EngineReport {
        let mut pipe = PipelineConfig::fig5(SystemVariant::Px, workload, cores);
        pipe.trace_pkts = 4_000;
        pipe.n_flows = 64;
        run_engine(EngineConfig::new(pipe, mode))
    }

    #[test]
    fn deterministic_run_is_repeatable() {
        let a = small(EngineMode::Deterministic, 4, WorkloadKind::Tcp);
        let b = small(EngineMode::Deterministic, 4, WorkloadKind::Tcp);
        assert_eq!(a.flow_digests, b.flow_digests);
        assert_eq!(a.totals, b.totals);
    }

    #[test]
    fn parallel_matches_deterministic_content() {
        let d = small(EngineMode::Deterministic, 4, WorkloadKind::Tcp);
        let p = small(EngineMode::Parallel, 4, WorkloadKind::Tcp);
        assert_eq!(d.flow_digests, p.flow_digests);
        assert_eq!(d.totals.pkts_out, p.totals.pkts_out);
        assert_eq!(d.totals.jumbo_out_inband, p.totals.jumbo_out_inband);
    }

    #[test]
    fn every_input_packet_is_consumed() {
        for workload in [WorkloadKind::Tcp, WorkloadKind::Udp] {
            let r = small(EngineMode::Deterministic, 2, workload);
            assert_eq!(r.totals.pkts_in, 4_000);
            assert!(r.totals.pkts_out > 0);
            let digest_pkts: u64 = r.flow_digests.values().map(|d| d.pkts).sum();
            assert_eq!(digest_pkts, r.totals.pkts_out);
        }
    }

    #[test]
    fn per_core_counters_sum_to_totals() {
        let r = small(EngineMode::Parallel, 4, WorkloadKind::Udp);
        let mut sum = CoreCounters::default();
        for c in &r.per_core {
            sum.merge(c);
        }
        assert_eq!(sum, r.totals);
        assert_eq!(r.per_core.len(), 4);
    }

    #[test]
    fn observability_report_is_populated_and_inert() {
        let r = small(EngineMode::Deterministic, 2, WorkloadKind::Tcp);
        assert!(r.obs.enabled);
        // Every core recorded events and they drained into the report.
        assert_eq!(r.obs.per_core_events.len(), 2);
        assert!(r.obs.per_core_events.iter().all(|e| !e.is_empty()));
        // Each batch contributed one histogram observation.
        // batch_ns gets one sample per batch; pkt_ns one per-packet
        // average per non-empty batch.
        assert_eq!(r.obs.hists.batch_ns.count(), r.totals.batches);
        assert_eq!(r.obs.hists.pkt_ns.count(), r.totals.batches);
        // Deterministic mode gets exactly the final sample.
        assert_eq!(r.obs.time_series.len(), 1);
        let last = r.obs.time_series[0];
        assert_eq!(last.pkts_in, r.totals.pkts_in);
        assert_eq!(last.bytes_out, r.totals.bytes_out);

        // Turning obs off yields identical datapath results and an
        // empty report.
        let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, 2);
        pipe.trace_pkts = 4_000;
        pipe.n_flows = 64;
        let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
        cfg.obs = ObsConfig::disabled();
        let off = run_engine(cfg);
        assert!(!off.obs.enabled);
        assert!(off.obs.per_core_events.is_empty());
        assert_eq!(off.flow_digests, r.flow_digests);
        assert_eq!(off.totals, r.totals);
    }

    #[test]
    fn event_streams_are_deterministic_across_reruns() {
        let a = small(EngineMode::Deterministic, 4, WorkloadKind::Udp);
        let b = small(EngineMode::Deterministic, 4, WorkloadKind::Udp);
        assert_eq!(a.obs.per_core_events, b.obs.per_core_events);
    }

    #[test]
    fn quiesce_flushes_idle_shard_flows_before_the_drain() {
        // Regression for the dead-shard bug: hold timers used to be
        // polled only on packet arrival, so a shard whose input stream
        // ended kept its expired flows parked until the global drain.
        let pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, 1);
        let mut w = Worker::new(
            &pipe,
            ObsConfig::disabled(),
            0,
            FaultSpec::off(),
            false,
            false,
            true,
            true,
        );
        let mut tracer = TraceGen::new(pipe.workload, 2, pipe.emtu, pipe.mean_run, 7);
        let batch: Batch = tracer
            .generate(50)
            .into_iter()
            .enumerate()
            .map(|(i, (_, pkt))| (i as u64 * 1_000, pkt))
            .collect();
        w.run_batch(batch);
        w.quiesce();
        // The idle tick emptied the engine: the drain has nothing left.
        let after_quiesce = w.counters.pkts_out;
        assert!(after_quiesce > 0);
        w.finish();
        assert_eq!(
            w.counters.pkts_out, after_quiesce,
            "quiesce left flows parked for the drain"
        );
        // Quiesce accounts out-of-band, exactly like the drain would
        // have: inband counters only reflect packet-arrival emissions.
        assert!(w.counters.pkts_out_inband < w.counters.pkts_out);
    }

    #[test]
    fn quiesce_does_not_change_totals_or_digests() {
        // The same flows flush the same bytes whether the idle tick or
        // the drain emits them — only the inband/out-of-band split and
        // timing may move, and here even those match because quiesce
        // fires at end-of-stream.
        let r = small(EngineMode::Deterministic, 4, WorkloadKind::Tcp);
        assert_eq!(r.totals.pkts_in, 4_000);
        let digest_pkts: u64 = r.flow_digests.values().map(|d| d.pkts).sum();
        assert_eq!(digest_pkts, r.totals.pkts_out);
    }

    #[test]
    fn injected_worker_panic_restarts_and_loses_no_flow_state() {
        let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, 2);
        pipe.trace_pkts = 4_000;
        pipe.n_flows = 64;
        let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
        cfg.faults = FaultSpec {
            enabled: true,
            seed: 1,
            panic_every_batches: 5,
            ..FaultSpec::off()
        };
        let r = run_engine(cfg);
        assert!(r.totals.worker_restarts > 0, "panic schedule never fired");
        assert_eq!(r.totals.pkts_in, 4_000);
        // Rescue-flushing on restart means every input packet still
        // reaches the output digests — nothing is lost with the engine.
        let digest_pkts: u64 = r.flow_digests.values().map(|d| d.pkts).sum();
        assert_eq!(digest_pkts, r.totals.pkts_out);
        // Restarts are observable: WorkerRestart events in the carried
        // flight-recorder stream, one per restart.
        let restarts = r
            .obs
            .per_core_events
            .iter()
            .flatten()
            .filter(|e| e.kind == EventKind::WorkerRestart)
            .count() as u64;
        assert_eq!(restarts, r.totals.worker_restarts);
    }

    #[test]
    fn injected_panic_schedule_is_deterministic() {
        let run = || {
            let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Udp, 4);
            pipe.trace_pkts = 4_000;
            pipe.n_flows = 64;
            let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
            cfg.faults = FaultSpec {
                enabled: true,
                seed: 9,
                panic_every_batches: 7,
                ..FaultSpec::off()
            };
            run_engine(cfg)
        };
        let a = run();
        let b = run();
        assert!(a.totals.worker_restarts > 0);
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.flow_digests, b.flow_digests);
    }

    #[test]
    fn ingress_faults_are_applied_and_accounted() {
        let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, 2);
        pipe.trace_pkts = 4_000;
        pipe.n_flows = 64;
        let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
        cfg.faults = FaultSpec {
            enabled: true,
            seed: 3,
            drop_ppm: 20_000,
            dup_ppm: 20_000,
            reorder_ppm: 20_000,
            corrupt_ppm: 20_000,
            truncate_ppm: 10_000,
            ..FaultSpec::off()
        };
        let r = run_engine(cfg);
        let f = r.ingress_faults;
        assert!(f.total() > 0);
        // The engine consumed exactly the faulted trace: drops shrink
        // it, duplicates grow it.
        assert_eq!(r.totals.pkts_in, 4_000 - f.dropped + f.duplicated);
        // Nothing panicked and the datapath never silently dropped: a
        // corrupt or truncated packet passes through for the endpoints
        // to judge (the merge engine forwards what it cannot parse).
        assert!(r.totals.pkts_out > 0);
    }

    #[test]
    fn injected_resource_faults_surface_in_the_report() {
        let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, 2);
        pipe.trace_pkts = 4_000;
        pipe.n_flows = 64;
        let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
        cfg.faults = FaultSpec {
            enabled: true,
            seed: 5,
            pool_dry_ppm: 100_000,
            table_deny_ppm: 50_000,
            ..FaultSpec::off()
        };
        let r = run_engine(cfg);
        assert!(
            r.totals.degraded_pkts > 0,
            "no packet took the passthrough path"
        );
        assert!(r.totals.pool_exhausted > 0);
        // Degradation forwards instead of dropping: everything still
        // reaches the digests.
        let digest_pkts: u64 = r.flow_digests.values().map(|d| d.pkts).sum();
        assert_eq!(digest_pkts, r.totals.pkts_out);
        assert_eq!(
            r.totals.backpressure_drops, 0,
            "spare buffer always recycled"
        );
    }

    #[test]
    fn batch_parse_and_digest_knobs_do_not_change_the_stream() {
        let base = small(EngineMode::Deterministic, 4, WorkloadKind::Tcp);
        let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, 4);
        pipe.trace_pkts = 4_000;
        pipe.n_flows = 64;
        // Per-packet parsing (batch parse off) is bit-identical.
        let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
        cfg.batch_parse = false;
        let single = run_engine(cfg);
        assert_eq!(single.flow_digests, base.flow_digests);
        assert_eq!(single.totals, base.totals);
        // Digests off: same counters, no digest map, bytes untouched.
        let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
        cfg.digests = false;
        let nodig = run_engine(cfg);
        assert!(nodig.flow_digests.is_empty());
        assert_eq!(nodig.totals, base.totals);
    }

    #[test]
    fn digests_separate_payload_changes() {
        let h0 = fnv_extend(FNV_OFFSET, &[1, 2, 3]);
        let h1 = fnv_extend(FNV_OFFSET, &[1, 2, 4]);
        assert_ne!(h0, h1);
        // Length-prefixing distinguishes [1,2]+[3] from [1]+[2,3].
        let a = fnv_extend(fnv_extend(FNV_OFFSET, &[1, 2]), &[3]);
        let b = fnv_extend(fnv_extend(FNV_OFFSET, &[1]), &[2, 3]);
        assert_ne!(a, b);
    }
}
