//! [`PxGateway`]: the PXGW as a two-port simulator node.
//!
//! Port 0 faces the legacy external network (eMTU); port 1 faces the
//! b-network (iMTU). Traffic entering the b-network is merged (TCP) or
//! caravan-bundled (UDP) and has handshake MSS options raised; traffic
//! leaving is split/unbundled back to eMTU size. Everything else —
//! ICMP, F-PMTUD probes, control segments — passes through untouched,
//! in order, which is what makes the gateway *transparent*.

use crate::advert::{BorderPolicy, ImtuAdvert, NeighborTable, ADVERT_PORT};
use crate::caravan_gw::{CaravanConfig, CaravanEngine};
use crate::merge::{MergeConfig, MergeEngine};
use crate::mss::raise_mss;
use crate::split::SplitEngine;
use crate::steer::{FlowClass, FlowClassifier, SteerConfig};
use px_obs::{ObsConfig, ObsReport};
use px_sim::node::{Ctx, Node, PortId};
use px_sim::Nanos;
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr};
use px_wire::udp::UdpDatagram;
use px_wire::{IpProtocol, PacketBuf, UdpRepr};
use std::any::Any;
use std::net::Ipv4Addr;

/// Well-known UDP port of the F-PMTUD daemon (§4.2: "a dummy UDP packet
/// … to the destination node with a well-known port"). PXGWs never merge
/// packets addressed to it. Single source of truth: [`px_wire::fpmtud`].
pub const FPMTUD_PORT: u16 = px_wire::fpmtud::FPMTUD_PORT;

/// The gateway's external-facing port.
pub const EXTERNAL_PORT: PortId = PortId(0);
/// The gateway's b-network-facing port.
pub const INTERNAL_PORT: PortId = PortId(1);

const POLL_TOKEN: u64 = 1;
const ADVERT_TOKEN: u64 = 2;

/// Gateway configuration.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// The b-network's internal MTU.
    pub imtu: usize,
    /// The external (legacy) MTU.
    pub emtu: usize,
    /// Delayed-merging hold time (ns); 0 disables holding.
    pub hold_ns: u64,
    /// Rewrite MSS options on handshake packets entering the b-network.
    pub rewrite_mss: bool,
    /// Bundle UDP into PX-caravans (needs caravan-aware receivers).
    pub caravan: bool,
    /// Small-flow steering; `None` sends every flow through the merge
    /// engine (the ablation case).
    pub steer: Option<SteerConfig>,
    /// Merge/caravan hold-timer poll period (ns).
    pub poll_ns: u64,
    /// Flow-table capacity for the merge and caravan engines.
    pub table_capacity: usize,
    /// This b-network's AS number, used in iMTU advertisements (§4.2).
    /// `None` disables advertising and neighbour-aware pass-through.
    pub asn: Option<u32>,
    /// Advertisement refresh period (ns).
    pub advert_interval_ns: u64,
    /// Enable the resident F-PMTUD client with this probing address:
    /// the gateway discovers per-destination path MTUs and splits to
    /// them instead of the static eMTU (§4.2's end-to-end mechanism).
    pub pmtud_addr: Option<std::net::Ipv4Addr>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            imtu: px_wire::JUMBO_MTU,
            emtu: px_wire::LEGACY_MTU,
            hold_ns: 50_000,
            rewrite_mss: true,
            caravan: true,
            steer: Some(SteerConfig::default()),
            poll_ns: 10_000,
            table_capacity: 65536,
            asn: None,
            advert_interval_ns: 5_000_000_000,
            pmtud_addr: None,
        }
    }
}

/// The PXGW node.
pub struct PxGateway {
    /// Configuration.
    pub cfg: GatewayConfig,
    /// TCP merge engine (eMTU → iMTU).
    pub merge: MergeEngine,
    /// TCP split engine (iMTU → eMTU).
    pub split: SplitEngine,
    /// UDP caravan engine.
    pub caravan: CaravanEngine,
    /// Small-flow classifier (when steering is enabled).
    pub classifier: Option<FlowClassifier>,
    /// SYN/SYN-ACK MSS rewrites performed.
    pub mss_rewrites: u64,
    /// Packets hairpinned past the merge engine.
    pub hairpinned: u64,
    /// §4.2 neighbour table, fed by iMTU advertisements on the external
    /// port.
    pub neighbors: NeighborTable,
    /// ASN of the most recent advertiser across the external link.
    pub neighbor_asn: Option<u32>,
    /// Jumbo packets forwarded untranslated thanks to a neighbour advert.
    pub passthrough_out: u64,
    /// The resident F-PMTUD client, when enabled.
    pub pmtud: Option<crate::pmtud_client::PmtudClient>,
    advert_seq: u32,
}

impl PxGateway {
    /// Creates a gateway.
    pub fn new(cfg: GatewayConfig) -> Self {
        PxGateway {
            cfg,
            merge: MergeEngine::new(MergeConfig {
                imtu: cfg.imtu,
                emtu: cfg.emtu,
                hold_ns: cfg.hold_ns,
                table_capacity: cfg.table_capacity,
            }),
            split: SplitEngine::new(cfg.emtu),
            caravan: CaravanEngine::new(CaravanConfig {
                imtu: cfg.imtu,
                hold_ns: cfg.hold_ns,
                table_capacity: cfg.table_capacity,
                require_consecutive_ip_id: true,
                probe_port: FPMTUD_PORT,
            }),
            classifier: cfg.steer.map(FlowClassifier::new),
            mss_rewrites: 0,
            hairpinned: 0,
            neighbors: NeighborTable::new(),
            neighbor_asn: None,
            passthrough_out: 0,
            pmtud: cfg.pmtud_addr.map(|a| {
                crate::pmtud_client::PmtudClient::with_retry(
                    a,
                    cfg.imtu,
                    crate::pmtud_client::PmtudRetryConfig {
                        // Blackhole clamp: a destination that answers no
                        // probe splits at the safe static eMTU.
                        fallback_pmtu: cfg.emtu,
                        ..Default::default()
                    },
                )
            }),
            advert_seq: 0,
        }
    }

    /// Arms the flight recorder on all three datapath engines. Each
    /// engine gets its own ring so a post-mortem can attribute events
    /// to the stage that produced them.
    pub fn enable_obs(&mut self, cfg: ObsConfig) {
        self.merge.enable_obs(cfg);
        self.split.enable_obs(cfg);
        self.caravan.enable_obs(cfg);
    }

    /// Collects the three engines' histograms and recent events into a
    /// single [`ObsReport`] (cores 0‥2 = merge, split, caravan). The
    /// recorders keep their state; this is a snapshot, not a drain.
    pub fn obs_report(&self) -> ObsReport {
        if !self.merge.obs.is_enabled()
            && !self.split.obs.is_enabled()
            && !self.caravan.obs.is_enabled()
        {
            return ObsReport::disabled();
        }
        let mut hists = *self.merge.obs.hists();
        hists.merge(self.split.obs.hists());
        hists.merge(self.caravan.obs.hists());
        ObsReport {
            enabled: true,
            hists,
            per_core_events: vec![
                self.merge.obs.recent(usize::MAX),
                self.split.obs.recent(usize::MAX),
                self.caravan.obs.recent(usize::MAX),
            ],
            per_core_spans: vec![
                self.merge.obs.recent_spans(usize::MAX),
                self.split.obs.recent_spans(usize::MAX),
                self.caravan.obs.recent_spans(usize::MAX),
            ],
            ..ObsReport::disabled()
        }
    }

    /// The border policy currently in force towards the external
    /// neighbour.
    pub fn border_policy(&self, now_ns: u64) -> BorderPolicy {
        match (self.cfg.asn, self.neighbor_asn) {
            (Some(_), Some(peer)) => self.neighbors.policy(now_ns, peer, self.cfg.imtu as u32),
            _ => BorderPolicy::Translate,
        }
    }

    fn send_advert(&mut self, ctx: &mut Ctx<'_>) {
        let Some(asn) = self.cfg.asn else { return };
        self.advert_seq += 1;
        let advert = ImtuAdvert {
            asn,
            imtu: self.cfg.imtu as u32,
            seq: self.advert_seq,
            ttl_secs: (3 * self.cfg.advert_interval_ns / 1_000_000_000).max(1) as u16,
        };
        // Link-local style announcement: the adjacent gateway (if any)
        // picks it up off the shared border link.
        let src = Ipv4Addr::new(169, 254, (asn >> 8) as u8, asn as u8);
        let dst = Ipv4Addr::new(255, 255, 255, 255);
        let Ok(dg) = UdpRepr {
            src_port: ADVERT_PORT,
            dst_port: ADVERT_PORT,
        }
        .build_datagram(src, dst, &advert.to_bytes()) else {
            return;
        };
        let ip = Ipv4Repr::new(src, dst, IpProtocol::Udp, dg.len());
        if let Ok(pkt) = ip.build_packet(&dg) {
            ctx.send(EXTERNAL_PORT, PacketBuf::from_payload(&pkt));
        }
    }

    /// Returns true when the packet was an iMTU advertisement (consumed).
    fn try_ingest_advert(&mut self, now_ns: u64, pkt: &[u8]) -> bool {
        let Ok(ip) = Ipv4Packet::new_checked(pkt) else {
            return false;
        };
        if ip.protocol() != IpProtocol::Udp {
            return false;
        }
        let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
            return false;
        };
        if udp.dst_port() != ADVERT_PORT {
            return false;
        }
        if let Ok(advert) = ImtuAdvert::parse(udp.payload()) {
            self.neighbors.ingest(now_ns, advert);
            self.neighbor_asn = Some(advert.asn);
        }
        true
    }

    fn inbound(&mut self, ctx: &mut Ctx<'_>, mut pkt: Vec<u8>) {
        // §4.2 control plane: neighbour iMTU advertisements and F-PMTUD
        // reports addressed to the gateway terminate here.
        if self.try_ingest_advert(ctx.now.0, &pkt) {
            return;
        }
        if let Some(client) = &mut self.pmtud {
            if client.try_ingest(&pkt) {
                return;
            }
        }
        // Handshake intervention: raise the MSS the external host
        // advertised so the b-network host will send jumbo segments.
        if self.cfg.rewrite_mss {
            let target = (self.cfg.imtu - 40).min(usize::from(u16::MAX)) as u16;
            if matches!(
                raise_mss(&mut pkt, target),
                crate::mss::MssRewrite::Rewritten { .. }
            ) {
                self.mss_rewrites += 1;
            }
        }
        // Small-flow steering: mice bypass the merge machinery entirely.
        if let Some(cl) = &mut self.classifier {
            if let Ok(key) = px_sim::nic::flow_key_of(&pkt) {
                if cl.classify(ctx.now.0, &key) == FlowClass::Mouse {
                    self.hairpinned += 1;
                    ctx.send(INTERNAL_PORT, PacketBuf::from_payload(&pkt));
                    return;
                }
            }
        }
        let proto = Ipv4Packet::new_checked(&pkt[..]).map(|ip| ip.protocol());
        let out = match proto {
            Ok(IpProtocol::Udp) if self.cfg.caravan => self.caravan.push_inbound(ctx.now.0, pkt),
            _ => self.merge.push(ctx.now.0, pkt),
        };
        for p in out {
            ctx.send(INTERNAL_PORT, PacketBuf::from_payload(&p));
        }
    }

    fn outbound(&mut self, ctx: &mut Ctx<'_>, pkt: Vec<u8>) {
        // §4.2: if the neighbour advertised a compatible iMTU, jumbo
        // packets (and whole caravans) cross the border untranslated.
        if let BorderPolicy::PassThrough { up_to } = self.border_policy(ctx.now.0) {
            if pkt.len() <= up_to as usize {
                if pkt.len() > self.cfg.emtu {
                    self.passthrough_out += 1;
                }
                ctx.send(EXTERNAL_PORT, PacketBuf::from_payload(&pkt));
                return;
            }
        }
        // PMTUD-aware splitting: learn (and use) the real path MTU of
        // this destination when the resident F-PMTUD client is enabled.
        let mut split_mtu = self.cfg.emtu;
        if let Some(client) = &mut self.pmtud {
            if let Ok(ip) = Ipv4Packet::new_checked(&pkt[..]) {
                let dst = ip.dst();
                if let Some(probe) = client.maybe_probe(ctx.now.0, dst) {
                    ctx.send(EXTERNAL_PORT, PacketBuf::from_payload(&probe));
                }
                if let Some(pmtu) = client.pmtu_for(dst) {
                    split_mtu = pmtu.clamp(crate::pmtud_client::MIN_PLAUSIBLE_PMTU, self.cfg.imtu);
                }
            }
        }
        // Restore caravan bundles to their original datagrams, then cut
        // anything oversized down to the per-destination MTU. Emission
        // goes straight from the split pool to the port — no Vec per
        // wire packet, no re-copy into a fresh buffer.
        for restored in self.caravan.push_outbound(pkt) {
            self.split
                .push_to_into(&restored, split_mtu, &mut |b: PacketBuf| {
                    ctx.send(EXTERNAL_PORT, b);
                    None
                });
        }
    }
}

impl Node for PxGateway {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Nanos(self.cfg.poll_ns), POLL_TOKEN);
        if self.cfg.asn.is_some() {
            self.send_advert(ctx);
            ctx.set_timer(Nanos(self.cfg.advert_interval_ns), ADVERT_TOKEN);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: PacketBuf) {
        let bytes = pkt.as_slice().to_vec();
        match port {
            EXTERNAL_PORT => self.inbound(ctx, bytes),
            INTERNAL_PORT => self.outbound(ctx, bytes),
            other => {
                let _ = other;
                ctx.stats.bump("pxgw_unknown_port", 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            ADVERT_TOKEN => {
                self.send_advert(ctx);
                ctx.set_timer(Nanos(self.cfg.advert_interval_ns), ADVERT_TOKEN);
            }
            _ => {
                debug_assert_eq!(token, POLL_TOKEN);
                let now = ctx.now.0;
                for p in self.merge.poll(now) {
                    ctx.send(INTERNAL_PORT, PacketBuf::from_payload(&p));
                }
                for p in self.caravan.poll(now) {
                    ctx.send(INTERNAL_PORT, PacketBuf::from_payload(&p));
                }
                // PMTU probe retries ride the same poll: a destination
                // that went dark between packets still resolves (to a
                // discovered PMTU or the eMTU clamp) on a deadline.
                if let Some(client) = &mut self.pmtud {
                    for probe in client.tick(now) {
                        ctx.send(EXTERNAL_PORT, PacketBuf::from_payload(&probe));
                    }
                }
                ctx.set_timer(Nanos(self.cfg.poll_ns), POLL_TOKEN);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_sim::link::LinkConfig;
    use px_sim::network::Network;
    use px_sim::node::NodeId;
    use px_tcp::conn::ConnConfig;
    use px_tcp::host::{Host, HostConfig, UdpFlowCfg};
    use px_tcp::udp::UdpSocket;
    use std::net::Ipv4Addr;

    const EXT: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1); // legacy network
    const INT: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2); // b-network

    /// external host (1500) — PXGW — internal host (9000).
    fn topo(cfg: GatewayConfig) -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new(99);
        let ext = net.add_node(Host::new(HostConfig::new(EXT, 1500)));
        let gw = net.add_node(PxGateway::new(cfg));
        let mut int_cfg = HostConfig::new(INT, 9000);
        int_cfg.caravan_rx = true;
        let int = net.add_node(Host::new(int_cfg));
        net.connect(
            (ext, PortId(0)),
            (gw, EXTERNAL_PORT),
            LinkConfig::new(10_000_000_000, Nanos::from_micros(50), 1500),
        );
        net.connect(
            (gw, INTERNAL_PORT),
            (int, PortId(0)),
            LinkConfig::new(10_000_000_000, Nanos::from_micros(50), 9000),
        );
        (net, ext, gw, int)
    }

    #[test]
    fn tcp_download_through_gateway_merges_and_stays_intact() {
        // External server sends 3 MB to the internal client: the gateway
        // merges eMTU segments into jumbos.
        let (mut net, ext, gw, int) = topo(GatewayConfig {
            steer: None,
            ..Default::default()
        });
        let total = 3_000_000u64;
        net.node_mut::<Host>(ext).listen(
            80,
            ConnConfig::new((EXT, 80), (INT, 0), 1500).sending(total),
        );
        net.node_mut::<Host>(int).connect_at(
            0,
            ConnConfig::new((INT, 40000), (EXT, 80), 9000),
            Some(Nanos::from_secs(20).0),
        );
        net.run_until(Nanos::from_secs(8));
        let client = net.node_ref::<Host>(int);
        let st = &client.tcp_stats()[0];
        assert_eq!(st.bytes_received, total, "every byte delivered");
        assert_eq!(st.integrity_errors, 0, "stream byte-identical");
        let gwn = net.node_ref::<PxGateway>(gw);
        assert!(gwn.merge.stats.data_segs_in > 0);
        let yield_ = gwn.merge.stats.conversion_yield(&gwn.merge.cfg);
        assert!(yield_ > 0.5, "bulk flow mostly converted: {yield_}");
    }

    #[test]
    fn mss_rewriting_lets_internal_sender_use_jumbo_segments() {
        // Internal client uploads; its peer (external server at MTU 1500)
        // advertises MSS 1460 in the SYN-ACK, which the gateway raises.
        let (mut net, ext, gw, int) = topo(GatewayConfig {
            steer: None,
            ..Default::default()
        });
        let total = 2_000_000u64;
        net.node_mut::<Host>(ext)
            .listen(80, ConnConfig::new((EXT, 80), (INT, 0), 1500));
        net.node_mut::<Host>(int).connect_at(
            0,
            ConnConfig::new((INT, 40000), (EXT, 80), 9000).sending(total),
            Some(Nanos::from_secs(20).0),
        );
        net.run_until(Nanos::from_secs(8));
        let client = net.node_ref::<Host>(int);
        let st = &client.tcp_stats()[0];
        assert_eq!(
            st.peer_mss, 8960,
            "SYN-ACK MSS was rewritten from 1460 to iMTU-40"
        );
        assert_eq!(st.effective_mss, 8960);
        assert_eq!(st.bytes_acked, total);
        let server = net.node_ref::<Host>(ext);
        let sst = &server.tcp_stats()[0];
        assert_eq!(sst.bytes_received, total);
        assert_eq!(sst.integrity_errors, 0, "split preserved the stream");
        assert!(net.node_ref::<PxGateway>(gw).mss_rewrites >= 1);
        assert!(net.node_ref::<PxGateway>(gw).split.stats.split > 0);
    }

    #[test]
    fn udp_flow_becomes_caravans_and_boundaries_survive() {
        let (mut net, ext, gw, int) = topo(GatewayConfig {
            steer: None,
            ..Default::default()
        });
        net.node_mut::<Host>(int)
            .udp_bind(UdpSocket::bind(4433).recording());
        net.node_mut::<Host>(ext).add_udp_flow(UdpFlowCfg {
            local_port: 7000,
            dst: INT,
            dst_port: 4433,
            rate_bps: 100_000_000,
            payload: 1172,
            start_ns: 0,
            stop_ns: Nanos::from_millis(200).0,
        });
        net.run_until(Nanos::from_secs(1));
        let gwn = net.node_ref::<PxGateway>(gw);
        assert!(gwn.caravan.stats.caravans_out > 0, "caravans were built");
        let sock = net.node_ref::<Host>(int).udp_socket(4433).unwrap();
        assert!(sock.stats.bundles > 0, "receiver unbundled caravans");
        assert!(sock.stats.datagrams > 0);
        assert_eq!(sock.stats.malformed, 0);
        assert!(
            sock.received.iter().all(|p| p.len() == 1172),
            "datagram boundaries preserved exactly"
        );
    }

    #[test]
    fn steering_hairpins_sparse_flows() {
        let cfg = GatewayConfig {
            steer: Some(SteerConfig {
                elephant_pkts: 1000,
                ..Default::default()
            }),
            ..Default::default()
        };
        let (mut net, ext, gw, int) = topo(cfg);
        net.node_mut::<Host>(ext).listen(
            80,
            ConnConfig::new((EXT, 80), (INT, 0), 1500).sending(20_000),
        );
        net.node_mut::<Host>(int).connect_at(
            0,
            ConnConfig::new((INT, 40000), (EXT, 80), 9000),
            Some(Nanos::from_secs(5).0),
        );
        net.run_until(Nanos::from_secs(6));
        let gwn = net.node_ref::<PxGateway>(gw);
        assert!(gwn.hairpinned > 0, "short flow bypassed the merge engine");
        assert_eq!(gwn.merge.stats.data_segs_in, 0, "nothing entered merging");
        let client = net.node_ref::<Host>(int);
        assert_eq!(client.tcp_stats()[0].bytes_received, 20_000);
        assert_eq!(client.tcp_stats()[0].integrity_errors, 0);
    }

    #[test]
    fn fpmtud_probe_passes_unmerged() {
        let (mut net, ext, gw, int) = topo(GatewayConfig {
            steer: None,
            ..Default::default()
        });
        net.node_mut::<Host>(int)
            .udp_bind(UdpSocket::bind(FPMTUD_PORT).recording());
        net.node_mut::<Host>(ext).add_udp_flow(UdpFlowCfg {
            local_port: 7000,
            dst: INT,
            dst_port: FPMTUD_PORT,
            rate_bps: 10_000_000,
            payload: 1400,
            start_ns: 0,
            stop_ns: Nanos::from_millis(50).0,
        });
        net.run_until(Nanos::from_millis(500));
        let gwn = net.node_ref::<PxGateway>(gw);
        assert_eq!(gwn.caravan.stats.caravans_out, 0, "probes never bundled");
        let sock = net.node_ref::<Host>(int).udp_socket(FPMTUD_PORT).unwrap();
        assert!(sock.stats.datagrams > 0);
        assert_eq!(sock.stats.bundles, 0);
    }
}
