//! Property tests for tier-2 span tracing: per-core span streams
//! conserve packets against the engine's own counters.
//!
//! The conservation law — for every core, over a Deterministic run
//! whose span rings are large enough that nothing is overwritten:
//!
//! * `count(Classify)` == `pkts_in` (both engines record one classifier
//!   verdict per input packet),
//! * `count(Steer, aux = 1)` == `steered_mice_pkts`,
//! * `count(Degrade)` == `degraded_pkts + backpressure_drops`,
//! * `count(Evict)` == `flows_evicted_idle + flows_evicted_pressure`.
//!
//! Holding this across 1/2/4/8 cores, both workloads, and
//! steering-on/off means no recording site is missing, doubled, or
//! misattributed — the span stream is a faithful retelling of what the
//! counters tally.

use proptest::prelude::*;
use px_core::engine::{run_engine, EngineConfig, EngineMode};
use px_core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
use px_core::steer::SteerConfig;
use px_obs::{ObsConfig, SloSpec, Span, SpanCat};

fn count(spans: &[Span], cat: SpanCat) -> u64 {
    spans.iter().filter(|s| s.cat == cat).count() as u64
}

fn count_aux(spans: &[Span], cat: SpanCat, aux: u64) -> u64 {
    spans
        .iter()
        .filter(|s| s.cat == cat && s.aux == aux)
        .count() as u64
}

proptest! {
    // Each case is a full (small) engine run; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn span_streams_conserve_packets(
        cores_idx in 0usize..4,
        tcp in any::<bool>(),
        steer_on in any::<bool>(),
        trace_pkts in 128usize..768,
    ) {
        let cores_sel = [1usize, 2, 4, 8][cores_idx];
        let workload = if tcp { WorkloadKind::Tcp } else { WorkloadKind::Udp };
        let mut pipe = PipelineConfig::fig5(SystemVariant::Px, workload, cores_sel);
        pipe.trace_pkts = trace_pkts;
        if steer_on {
            // An aggressive elephant threshold so both steered mice and
            // merged elephants appear even in short runs.
            pipe.steer = Some(SteerConfig {
                elephant_pkts: 4,
                ..SteerConfig::default()
            });
        }
        let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
        cfg.obs = ObsConfig {
            // Large enough that no span of the run is overwritten —
            // conservation counting needs the complete stream.
            span_capacity: 1 << 16,
            slo: SloSpec::demo(),
            ..ObsConfig::default()
        };
        let r = run_engine(cfg);

        prop_assert_eq!(r.obs.per_core_spans.len(), cores_sel);
        prop_assert_eq!(r.per_core.len(), cores_sel);
        let mut classify_total = 0u64;
        for (core, (spans, counters)) in
            r.obs.per_core_spans.iter().zip(r.per_core.iter()).enumerate()
        {
            let classify = count(spans, SpanCat::Classify);
            prop_assert_eq!(
                classify, counters.pkts_in,
                "core {}: Classify spans vs pkts_in", core
            );
            classify_total += classify;
            prop_assert_eq!(
                count_aux(spans, SpanCat::Steer, 1),
                counters.steered_mice_pkts,
                "core {}: Steer(mice) spans vs steered_mice_pkts", core
            );
            prop_assert_eq!(
                count(spans, SpanCat::Degrade),
                counters.degraded_pkts + counters.backpressure_drops,
                "core {}: Degrade spans vs degraded + dropped", core
            );
            prop_assert_eq!(
                count(spans, SpanCat::Evict),
                counters.flows_evicted_idle + counters.flows_evicted_pressure,
                "core {}: Evict spans vs evictions", core
            );
        }
        // Cross-core closure: the classifier saw every traced packet.
        prop_assert_eq!(classify_total, r.totals.pkts_in);
        prop_assert_eq!(r.totals.pkts_in, trace_pkts as u64);
    }
}
