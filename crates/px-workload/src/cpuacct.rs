//! Endpoint transmit-side CPU accounting.
//!
//! The receive side is covered by [`px_sim::nic::rx_saturation_bps`];
//! this module prices the *transmit* path, which Table 1 and the "large
//! MTU reduces the CPU cycles for both endpoints" claim of §2.2 depend
//! on. Components, per second, for a connection sending `bps`:
//!
//! * per byte: DMA touch (sendfile-style zero-copy transmit — the server
//!   serves a static file);
//! * per TSO super-segment (64 KB): one protocol traversal + descriptor;
//! * per wire packet: irreducible NIC work — **this is the term a large
//!   MTU shrinks** (6× fewer packets at 9000 B);
//! * per received ACK: header parse + state update — also 6× fewer with
//!   jumbo segments, because ACKs are per-2-segments.

use px_sim::cpu::CostModel;

/// Transmit-side accounting inputs.
#[derive(Debug, Clone, Copy)]
pub struct TxConfig {
    /// Goodput in bits/sec.
    pub bps: f64,
    /// Wire MTU.
    pub mtu: usize,
    /// TSO enabled (64 KB super-segments).
    pub tso: bool,
}

/// Cycles per second the transmit path of one connection consumes.
pub fn tx_cycles_per_sec(m: &CostModel, cfg: &TxConfig) -> f64 {
    let bytes_per_sec = cfg.bps / 8.0;
    let mss = (cfg.mtu - 40) as f64;
    let wire_pps = bytes_per_sec / mss;
    let unit = if cfg.tso { 65536.0 } else { mss };
    let units_per_sec = bytes_per_sec / unit;
    let acks_per_sec = wire_pps / 2.0;
    // Zero-copy transmit: the payload is DMA-touched once (~0.15 of the
    // full per-byte constant, which includes the copy the RX path pays).
    let tx_per_byte = 0.4 * m.per_byte;
    bytes_per_sec * tx_per_byte
        + units_per_sec * (m.proto_unit + m.descriptor)
        + wire_pps * m.wire_pkt
        + acks_per_sec * ack_cycles(m)
}

/// Cycles to process one incoming pure ACK (parse + cumulative-ack state
/// update + descriptor).
pub fn ack_cycles(m: &CostModel) -> f64 {
    m.descriptor + 0.3 * m.proto_unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_sim::calib;

    #[test]
    fn jumbo_mtu_cuts_tx_cycles() {
        let m = calib::endpoint_model();
        let legacy = tx_cycles_per_sec(
            &m,
            &TxConfig {
                bps: 2e9,
                mtu: 1500,
                tso: true,
            },
        );
        let jumbo = tx_cycles_per_sec(
            &m,
            &TxConfig {
                bps: 2e9,
                mtu: 9000,
                tso: true,
            },
        );
        assert!(jumbo < legacy, "jumbo {jumbo} vs legacy {legacy}");
        // The per-packet + per-ack terms shrink ~6×; per-byte is equal, so
        // the total improves but less than 6×.
        let ratio = legacy / jumbo;
        assert!(ratio > 1.2 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn tso_cuts_protocol_traversals() {
        let m = calib::endpoint_model();
        let tso = tx_cycles_per_sec(
            &m,
            &TxConfig {
                bps: 2e9,
                mtu: 1500,
                tso: true,
            },
        );
        let no_tso = tx_cycles_per_sec(
            &m,
            &TxConfig {
                bps: 2e9,
                mtu: 1500,
                tso: false,
            },
        );
        assert!(tso < no_tso);
    }

    #[test]
    fn cycles_scale_linearly_with_rate() {
        let m = calib::endpoint_model();
        let one = tx_cycles_per_sec(
            &m,
            &TxConfig {
                bps: 1e9,
                mtu: 1500,
                tso: true,
            },
        );
        let two = tx_cycles_per_sec(
            &m,
            &TxConfig {
                bps: 2e9,
                mtu: 1500,
                tso: true,
            },
        );
        assert!((two / one - 2.0).abs() < 1e-9);
    }
}
