//! A seeded, wall-clock-free internet-traffic model.
//!
//! §2.2: "the majority of flows in the WAN are short-lived, which
//! implies that only a fraction of the flows require very high
//! bandwidth". The flow-scale experiments need that traffic shape at
//! gateway scale — millions of concurrent flows, almost all of them
//! mice, with a heavy-tailed elephant minority carrying most of the
//! bytes — and they need it *streamed*: a million-flow trace does not
//! fit in memory, so the model emits one byte-accurate TCP segment at a
//! time from a bounded ring of live flows.
//!
//! Design:
//!
//! * **Sizes** — a flow is a mouse (uniform `1..=mouse_pkts_max`
//!   packets, below any sane elephant threshold) with probability
//!   `mice_frac`, else an elephant drawn from a bounded Pareto on
//!   packets (the discrete Zipf-tail analogue standard for WAN flow
//!   sizes).
//! * **Arrivals** — the ring is visited round-robin; each visit emits
//!   one geometric on/off burst (mean [`InternetConfig::mean_burst`],
//!   the residue of sender TSO bursts after ToR multiplexing), so a
//!   flow's packets arrive in contiguous runs separated by every other
//!   live flow's traffic — the churny interleaving a real gateway sees.
//! * **Churn** — a flow that exhausts its size completes; with churn
//!   on, a fresh flow (new identity, fresh size draw) replaces it, so
//!   the live population holds at `n_flows` while identities turn over
//!   Poisson-like. With churn off the flow re-arms in place (same
//!   5-tuple, sequence space continues), freezing the identity set —
//!   what the soak's steady-state allocation window needs.
//! * **Class encoding** — elephants source from `198.18.0.0/16`, mice
//!   from `198.19.0.0/16` ([`is_elephant`] is a pure function of the
//!   flow key), so harnesses can audit per-class behaviour without a
//!   side table.
//!
//! Everything is driven by one [`SmallRng`]: same seed, same packet
//! stream, byte for byte. No wall clock anywhere.

use px_wire::ipv4::Ipv4Repr;
use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr};
use px_wire::{FlowKey, IpProtocol};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Traffic-model configuration.
#[derive(Debug, Clone, Copy)]
pub struct InternetConfig {
    /// RNG seed — the stream is a pure function of this.
    pub seed: u64,
    /// Concurrent live flows (the ring size). Held constant: completed
    /// flows are replaced (churn on) or re-armed (churn off).
    pub n_flows: usize,
    /// Fraction of flows that are mice.
    pub mice_frac: f64,
    /// Mouse size cap in packets (uniform `1..=max`). Keep below the
    /// steering threshold so mice classify as mice end to end.
    pub mouse_pkts_max: u64,
    /// Elephant-size bounded-Pareto tail index (1.1–1.3 is typical for
    /// WAN flow sizes).
    pub elephant_alpha: f64,
    /// Smallest elephant, packets.
    pub elephant_min_pkts: u64,
    /// Largest elephant, packets.
    pub elephant_max_pkts: u64,
    /// Mean per-visit burst length, packets (geometric, capped).
    pub mean_burst: usize,
    /// Hard per-visit burst cap, packets.
    pub burst_cap: usize,
    /// External MTU: every emitted segment is this many wire bytes.
    pub emtu: usize,
    /// Whether completed flows are replaced by fresh identities.
    pub churn: bool,
}

impl Default for InternetConfig {
    fn default() -> Self {
        InternetConfig {
            seed: 0x01D7_E4E7,
            n_flows: 10_000,
            mice_frac: 0.9,
            mouse_pkts_max: 7,
            elephant_alpha: 1.2,
            elephant_min_pkts: 240,
            elephant_max_pkts: 24_576,
            mean_burst: 32,
            burst_cap: 64,
            emtu: px_wire::LEGACY_MTU,
            churn: true,
        }
    }
}

impl InternetConfig {
    /// The default mix at a given live-flow count and seed.
    pub fn sized(n_flows: usize, seed: u64) -> Self {
        InternetConfig {
            n_flows,
            seed,
            ..Default::default()
        }
    }
}

/// Whether a model-generated flow key belongs to an elephant — pure
/// from the class-encoding source prefix (`198.18/16` elephants,
/// `198.19/16` mice).
pub fn is_elephant(key: &FlowKey) -> bool {
    let o = key.src_ip.octets();
    o[0] == 198 && o[1] == 18
}

/// One live flow's emission state.
#[derive(Debug)]
struct LiveFlow {
    key: FlowKey,
    next_seq: u32,
    next_ip_id: u16,
    /// Total packets this flow was assigned at birth.
    size_pkts: u64,
    /// Packets still to emit.
    remaining: u64,
    /// Whether this identity has emitted at least one packet (cleared
    /// when churn replaces the identity; kept across re-arms).
    visited: bool,
}

/// The streaming internet-traffic model. Create with
/// [`InternetModel::new`], pull packets with
/// [`next_pkt`](InternetModel::next_pkt) (or materialise a bounded
/// prefix with [`generate_trace`](InternetModel::generate_trace)).
#[derive(Debug)]
pub struct InternetModel {
    cfg: InternetConfig,
    flows: Vec<LiveFlow>,
    rng: SmallRng,
    /// Round-robin visit cursor.
    cursor: usize,
    /// Packets left in the current visit's burst.
    burst_left: u64,
    /// When set, the cursor skips identities that have never emitted —
    /// steady-state harness windows draw only from warmed flows.
    warm_only: bool,
    /// Live identities with `visited == true` (kept incrementally; the
    /// ring is too large to scan per burst).
    warm: usize,
    /// Next fresh flow identity.
    next_id: u64,
    /// Packets emitted so far.
    pub pkts_emitted: u64,
    /// Wire bytes emitted so far.
    pub bytes_emitted: u64,
    /// Flows ever started (initial ring included).
    pub flows_started: u64,
    /// Flows that emitted their full assigned size.
    pub flows_completed: u64,
    /// Sum of assigned sizes over *completed* flows, packets.
    pub completed_pkts: u64,
}

impl InternetModel {
    /// Builds the model and populates the initial ring of live flows.
    pub fn new(cfg: InternetConfig) -> Self {
        assert!(cfg.n_flows > 0, "need at least one flow");
        assert!(cfg.emtu >= 80, "eMTU too small for a TCP segment");
        let mut m = InternetModel {
            cfg,
            flows: Vec::with_capacity(cfg.n_flows),
            rng: SmallRng::seed_from_u64(cfg.seed),
            cursor: 0,
            burst_left: 0,
            warm_only: false,
            warm: 0,
            next_id: 0,
            pkts_emitted: 0,
            bytes_emitted: 0,
            flows_started: 0,
            flows_completed: 0,
            completed_pkts: 0,
        };
        for _ in 0..cfg.n_flows {
            let f = m.fresh_flow();
            m.flows.push(f);
        }
        m
    }

    /// Live flows (always the configured ring size).
    pub fn flows_live(&self) -> usize {
        self.flows.len()
    }

    /// Switches identity churn on or off mid-stream (off freezes the
    /// 5-tuple population: completed flows re-arm in place).
    pub fn set_churn(&mut self, churn: bool) {
        self.cfg.churn = churn;
    }

    /// Restricts emission to identities that have already emitted at
    /// least once. Steady-state measurement windows set this so every
    /// packet they draw belongs to a flow the datapath has warm state
    /// for. Ignored while no identity is warm yet.
    pub fn set_warm_only(&mut self, warm_only: bool) {
        self.warm_only = warm_only;
    }

    /// Live identities that have emitted at least one packet.
    pub fn visited_flows(&self) -> usize {
        self.warm
    }

    /// Packets of assigned flow size already emitted by the live ring —
    /// `pkts_emitted == completed_pkts + live_progress_pkts()` is the
    /// model's conservation invariant.
    pub fn live_progress_pkts(&self) -> u64 {
        self.flows.iter().map(|f| f.size_pkts - f.remaining).sum()
    }

    /// Samples a flow size in packets: mouse or bounded-Pareto elephant.
    fn sample_size(&mut self) -> (bool, u64) {
        let elephant = self.rng.gen::<f64>() >= self.cfg.mice_frac;
        (elephant, self.sample_size_of(elephant))
    }

    /// Samples a size for a known class — re-arms draw this so a frozen
    /// identity keeps the behaviour its source prefix advertises.
    fn sample_size_of(&mut self, elephant: bool) -> u64 {
        if !elephant {
            self.rng.gen_range(1..=self.cfg.mouse_pkts_max)
        } else {
            // Inverse-CDF sampling of the bounded Pareto on packets.
            let (alpha, l, h) = (
                self.cfg.elephant_alpha,
                self.cfg.elephant_min_pkts as f64,
                self.cfg.elephant_max_pkts as f64,
            );
            let u: f64 = self.rng.gen_range(0.0..1.0);
            let la = l.powf(alpha);
            let ha = h.powf(alpha);
            let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
            (x as u64).clamp(self.cfg.elephant_min_pkts, self.cfg.elephant_max_pkts)
        }
    }

    /// Mints a brand-new flow: fresh identity, fresh size draw. The
    /// class is encoded in the source prefix; 32 bits of identity are
    /// spread over the low source-IP half and the source port, so the
    /// model can churn through billions of identities collision-free.
    fn fresh_flow(&mut self) -> LiveFlow {
        let (elephant, size_pkts) = self.sample_size();
        let id = self.next_id;
        self.next_id += 1;
        self.flows_started += 1;
        let class_octet = if elephant { 18 } else { 19 };
        let src = Ipv4Addr::new(
            198,
            class_octet,
            ((id >> 8) & 0xFF) as u8,
            (id & 0xFF) as u8,
        );
        let src_port = 1024 + ((id >> 16) % 60_000) as u16;
        let dst = Ipv4Addr::new(10, 99, ((id >> 24) & 0xFF) as u8, 1);
        LiveFlow {
            key: FlowKey::tcp(src, src_port, dst, 5201),
            next_seq: (id as u32).wrapping_mul(1_000_003),
            next_ip_id: id as u16,
            size_pkts,
            remaining: size_pkts,
            visited: false,
        }
    }

    // Workload generation, not datapath: payload sizes are computed
    // from the configured eMTU, so the builders cannot fail; a panic
    // here is a harness bug, not a gateway robustness issue.
    #[allow(clippy::expect_used)]
    fn build_pkt(&mut self, idx: usize) -> Vec<u8> {
        let payload_len = self.cfg.emtu - 40;
        let f = &mut self.flows[idx];
        let mut payload = vec![0u8; payload_len];
        px_tcp::fill_pattern(u64::from(f.next_seq), &mut payload);
        let repr = TcpRepr {
            src_port: f.key.src_port,
            dst_port: f.key.dst_port,
            seq: SeqNum(f.next_seq),
            ack: SeqNum(1),
            flags: TcpFlags::ACK,
            window: 8192,
            options: vec![],
        };
        let seg = repr.build_segment(f.key.src_ip, f.key.dst_ip, &payload);
        f.next_seq = f.next_seq.wrapping_add(payload_len as u32);
        let mut ip = Ipv4Repr::new(f.key.src_ip, f.key.dst_ip, IpProtocol::Tcp, seg.len());
        ip.ident = f.next_ip_id;
        f.next_ip_id = f.next_ip_id.wrapping_add(1);
        ip.build_packet(&seg).expect("fits")
    }

    /// Emits the next packet in global arrival order: a byte-accurate
    /// eMTU TCP segment with valid checksums and per-flow sequence
    /// continuity. Never returns `None`-like sentinels — the stream is
    /// infinite by construction (the ring refills itself).
    pub fn next_pkt(&mut self) -> (FlowKey, Vec<u8>) {
        if self.burst_left == 0 {
            // Advance to the next live flow and open a new burst. In
            // warm-only mode, skip never-visited identities (unless no
            // identity is warm yet, in which case the restriction would
            // deadlock and is ignored).
            let restrict = self.warm_only && self.warm > 0;
            loop {
                self.cursor = (self.cursor + 1) % self.flows.len();
                if !restrict || self.flows[self.cursor].visited {
                    break;
                }
            }
            let p = 1.0 / self.cfg.mean_burst as f64;
            let mut run = 1u64;
            while self.rng.gen::<f64>() > p && run < self.cfg.burst_cap as u64 {
                run += 1;
            }
            self.burst_left = run.min(self.flows[self.cursor].remaining);
        }
        let idx = self.cursor;
        let pkt = self.build_pkt(idx);
        let key = self.flows[idx].key;
        if !self.flows[idx].visited {
            self.flows[idx].visited = true;
            self.warm += 1;
        }
        self.burst_left -= 1;
        self.pkts_emitted += 1;
        self.bytes_emitted += pkt.len() as u64;
        self.flows[idx].remaining -= 1;
        if self.flows[idx].remaining == 0 {
            self.flows_completed += 1;
            self.completed_pkts += self.flows[idx].size_pkts;
            self.burst_left = 0;
            if self.cfg.churn {
                // The dying identity was warm (it just emitted); its
                // replacement starts cold.
                self.warm -= 1;
                self.flows[idx] = self.fresh_flow();
            } else {
                // Frozen population: re-arm the same 5-tuple with a
                // fresh size draw of the SAME class (the source prefix
                // advertises it), sequence space carrying on.
                let elephant = is_elephant(&self.flows[idx].key);
                let size = self.sample_size_of(elephant);
                self.flows_started += 1;
                let f = &mut self.flows[idx];
                f.size_pkts = size;
                f.remaining = size;
            }
        }
        (key, pkt)
    }

    /// Materialises the next `n` packets — how bounded harnesses (the
    /// chaos churn dimension) hand the stream to
    /// `run_engine_on_trace`-style drivers. The soak never calls this
    /// at full scale; it streams [`next_pkt`](Self::next_pkt) instead.
    pub fn generate_trace(&mut self, n: usize) -> Vec<(FlowKey, Vec<u8>)> {
        (0..n).map(|_| self.next_pkt()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    #[test]
    fn fixed_seed_prefix_is_bit_identical() {
        // Two independently built models with one seed agree byte for
        // byte; a pinned digest over the first 256 packets guards the
        // stream against accidental generator drift (a new rand shim,
        // a reordered rng draw, a changed header field).
        let mut a = InternetModel::new(InternetConfig::sized(512, 42));
        let mut b = InternetModel::new(InternetConfig::sized(512, 42));
        let mut h = FNV_OFFSET;
        for _ in 0..256 {
            let (ka, pa) = a.next_pkt();
            let (kb, pb) = b.next_pkt();
            assert_eq!(ka, kb);
            assert_eq!(pa, pb);
            h = fnv(h, &pa);
        }
        assert_eq!(h, GOLDEN_256, "generator stream drifted");
    }

    /// FNV-1a over the first 256 packets of `sized(512, 42)`. Pinned:
    /// regenerate only for a *deliberate* model change.
    const GOLDEN_256: u64 = 7_012_238_403_339_163_010;

    #[test]
    fn packets_are_byte_accurate_and_class_encoded() {
        let mut m = InternetModel::new(InternetConfig::sized(256, 7));
        for _ in 0..2_000 {
            let (key, pkt) = m.next_pkt();
            assert_eq!(pkt.len(), 1500);
            let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
            assert!(ip.verify_checksum());
            assert_eq!(px_sim::nic::flow_key_of(&pkt).unwrap(), key);
            let o = key.src_ip.octets();
            assert_eq!(o[0], 198);
            assert!(o[1] == 18 || o[1] == 19, "class octet {}", o[1]);
            assert_eq!(is_elephant(&key), o[1] == 18);
        }
    }

    #[test]
    fn zipf_tail_is_within_the_calibrated_band() {
        // Sample the size distribution directly (the generator's own
        // draw path) and check the WAN shape: ~mice_frac of flows are
        // mice, and the elephant tail is heavy — the top decile of
        // flows carries the clear majority of packets.
        let mut m = InternetModel::new(InternetConfig::sized(4, 11));
        let sizes: Vec<u64> = (0..20_000).map(|_| m.sample_size().1).collect();
        let mice = sizes.iter().filter(|&&s| s <= 7).count() as f64 / sizes.len() as f64;
        assert!((mice - 0.9).abs() < 0.02, "mice fraction {mice}");
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let total: u64 = sorted.iter().sum();
        let top: u64 = sorted.iter().rev().take(sorted.len() / 10).sum();
        let share = top as f64 / total as f64;
        assert!(
            (0.80..=0.999).contains(&share),
            "top-decile packet share {share}"
        );
        // Elephant sizes respect the configured bounds.
        assert!(sizes.iter().all(|&s| s <= 7 || (240..=24_576).contains(&s)));
    }

    #[test]
    fn emission_conserves_assigned_flow_sizes() {
        let mut m = InternetModel::new(InternetConfig::sized(64, 3));
        for _ in 0..50_000 {
            m.next_pkt();
        }
        // Every emitted packet is accounted to exactly one flow, and
        // every flow's progress never exceeds its assigned size.
        assert_eq!(m.pkts_emitted, 50_000);
        assert_eq!(m.pkts_emitted, m.completed_pkts + m.live_progress_pkts());
        assert_eq!(m.bytes_emitted, 50_000 * 1500);
        assert!(m.flows_completed > 0, "churn never turned over a flow");
        assert_eq!(m.flows_live(), 64);
        // Identity turnover under churn: completed flows left the ring.
        assert_eq!(m.flows_started, 64 + m.flows_completed);
    }

    #[test]
    fn frozen_population_keeps_its_identities() {
        let mut m = InternetModel::new(InternetConfig::sized(32, 5));
        m.set_churn(false);
        let keys_before: std::collections::BTreeSet<FlowKey> =
            m.flows.iter().map(|f| f.key).collect();
        for _ in 0..20_000 {
            m.next_pkt();
        }
        let keys_after: std::collections::BTreeSet<FlowKey> =
            m.flows.iter().map(|f| f.key).collect();
        assert_eq!(keys_before, keys_after, "churn-off must freeze the ring");
        assert!(m.flows_completed > 0, "re-armed flows still complete");
        assert_eq!(m.pkts_emitted, m.completed_pkts + m.live_progress_pkts());
    }
}
