//! Table 1: server CPU — one 9 KB-MTU connection vs. six parallel
//! 1500 B-MTU connections per download session (`axel`-style).
//!
//! Both configurations deliver the same per-session goodput; the paper
//! measures the server's CPU as the number of concurrent sessions grows
//! and finds parallel connections cost 2.88× more cycles at 100 sessions.
//!
//! Model: `CPU% = min(100, base + S · session_cycles / capacity)`.
//!
//! `session_cycles` is mechanistic ([`crate::cpuacct`]): per-byte DMA,
//! per-TSO-unit protocol work, per-wire-packet NIC work, per-ACK
//! processing — all of which the 1500 B/6-connection configuration pays
//! ≈6× more often per byte. On top of that, parallel connections carry a
//! **per-extra-connection overhead** (scheduler wakeups, socket cache
//! footprint, range-request bookkeeping) that the mechanistic terms do
//! not capture; its value is the single fitted constant in this module,
//! calibrated against Table 1 (see `MULTI_CONN_CYCLES`). The `base` term
//! is the measurement harness' idle/polling floor, also read off the
//! table.

use crate::cpuacct::{tx_cycles_per_sec, TxConfig};
use px_sim::calib;

/// Idle/polling CPU floor of the measured server, percent (Table 1's
/// 1-session rows sit just above it).
pub const BASE_PCT: f64 = 19.6;

/// Per-session goodput both configurations deliver (bits/sec).
pub const SESSION_BPS: f64 = 2e9;

/// The measured server's capacity: 16 cores at the calibrated clock.
pub const SERVER_CORES: f64 = 16.0;

/// Fitted per-additional-connection cost (cycles/sec at [`SESSION_BPS`]):
/// scheduling, socket cache footprint, and HTTP range-request bookkeeping
/// of the parallel-download pattern. The one free parameter of this
/// model, calibrated so the 6-connection column of Table 1 reproduces.
pub const MULTI_CONN_CYCLES: f64 = 117.0e6;

/// One download-session configuration.
#[derive(Debug, Clone, Copy)]
pub struct AxelConfig {
    /// TCP connections per session (axel -n).
    pub conns: usize,
    /// Wire MTU of the session's path.
    pub mtu: usize,
}

impl AxelConfig {
    /// The paper's single-connection jumbo configuration.
    pub fn single_jumbo() -> Self {
        AxelConfig {
            conns: 1,
            mtu: 9000,
        }
    }

    /// The paper's 6-connection legacy configuration.
    pub fn six_legacy() -> Self {
        AxelConfig {
            conns: 6,
            mtu: 1500,
        }
    }
}

/// Cycles/sec one session costs the server.
pub fn session_cycles_per_sec(cfg: &AxelConfig) -> f64 {
    let m = calib::endpoint_model();
    let per_conn_bps = SESSION_BPS / cfg.conns as f64;
    let mech: f64 = cfg.conns as f64
        * tx_cycles_per_sec(
            &m,
            &TxConfig {
                bps: per_conn_bps,
                mtu: cfg.mtu,
                tso: true,
            },
        );
    let extra = MULTI_CONN_CYCLES * (cfg.conns.saturating_sub(1)) as f64;
    mech + extra
}

/// Server CPU percentage with `sessions` concurrent sessions.
pub fn axel_cpu_pct(cfg: &AxelConfig, sessions: usize) -> f64 {
    let capacity = SERVER_CORES * calib::FREQ_HZ;
    let pct = BASE_PCT + 100.0 * sessions as f64 * session_cycles_per_sec(cfg) / capacity;
    pct.min(100.0)
}

/// The whole of Table 1: rows are session counts, columns the two
/// configurations.
pub fn table1(sessions: &[usize]) -> Vec<(usize, f64, f64)> {
    sessions
        .iter()
        .map(|&s| {
            (
                s,
                axel_cpu_pct(&AxelConfig::single_jumbo(), s),
                axel_cpu_pct(&AxelConfig::six_legacy(), s),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 1:
    /// | sessions | 1 conn (9000B) | 6 conn (1500B) |
    /// |    1     |     20.20%     |     19.52%     |
    /// |   10     |     22.12%     |     34.53%     |
    /// |  100     |     34.72%     |    100.00%     |
    #[test]
    fn reproduces_table1_shape() {
        let t = table1(&[1, 10, 100]);
        let (s1, j1, l1) = t[0];
        let (_, j10, l10) = t[1];
        let (_, j100, l100) = t[2];
        assert_eq!(s1, 1);
        // 1 session: both within a few points of each other and of ~20%.
        assert!((j1 - 20.2).abs() < 2.0, "jumbo@1 {j1}");
        assert!((l1 - 19.52).abs() < 2.5, "legacy@1 {l1}");
        // 10 sessions: parallel connections pull ahead.
        assert!((j10 - 22.12).abs() < 2.0, "jumbo@10 {j10}");
        assert!((l10 - 34.53).abs() < 3.0, "legacy@10 {l10}");
        // 100 sessions: parallel saturates; jumbo stays around a third.
        assert!((j100 - 34.72).abs() < 3.0, "jumbo@100 {j100}");
        assert_eq!(l100, 100.0, "legacy@100 saturates");
        // The headline: ≈2.88× more CPU at 100 sessions.
        let ratio = l100 / j100;
        assert!((ratio - 2.88).abs() < 0.35, "ratio {ratio}");
    }

    #[test]
    fn monotone_in_sessions_and_conns() {
        let jumbo = AxelConfig::single_jumbo();
        assert!(axel_cpu_pct(&jumbo, 1) < axel_cpu_pct(&jumbo, 50));
        let more_conns = AxelConfig {
            conns: 12,
            mtu: 1500,
        };
        assert!(
            session_cycles_per_sec(&AxelConfig::six_legacy()) < session_cycles_per_sec(&more_conns)
        );
    }

    #[test]
    fn jumbo_single_conn_is_cheapest_per_session() {
        let jumbo = session_cycles_per_sec(&AxelConfig::single_jumbo());
        let legacy1 = session_cycles_per_sec(&AxelConfig {
            conns: 1,
            mtu: 1500,
        });
        let legacy6 = session_cycles_per_sec(&AxelConfig::six_legacy());
        assert!(
            jumbo < legacy1,
            "even one legacy conn pays more per-packet work"
        );
        assert!(legacy1 < legacy6);
    }
}
