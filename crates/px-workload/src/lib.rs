//! # px-workload — workload generation and CPU accounting
//!
//! The traffic and measurement side of the evaluation:
//!
//! * [`iperf`] — builders that stand up N bidirectional iPerf-style
//!   TCP/UDP flows between simulated host pairs (the 800-flow workload
//!   of §5) and harvest their statistics;
//! * [`flows`] — flow-size distributions (heavy-tailed mice/elephants)
//!   for the steering experiments;
//! * [`internet`] — the seeded, streaming internet-traffic model
//!   (Zipf-tailed sizes, mice/elephant split, bursty on/off sources,
//!   identity churn) for the million-flow scale experiments;
//! * [`axel`] — the Table 1 comparison: server-side CPU of one jumbo-MTU
//!   connection vs. six parallel legacy-MTU connections per download
//!   session (what the `axel` download accelerator does);
//! * [`cpuacct`] — endpoint transmit-side CPU accounting on the
//!   calibrated cost model.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod axel;
pub mod cpuacct;
pub mod flows;
pub mod internet;
pub mod iperf;

pub use axel::{axel_cpu_pct, AxelConfig};
pub use flows::FlowSizeDist;
pub use internet::{is_elephant, InternetConfig, InternetModel};
pub use iperf::{IperfPair, IperfReport};
