//! iPerf-style experiment runners: stand up host pairs, run N TCP or UDP
//! flows for a duration, harvest throughput.
//!
//! These are the building blocks of the WAN experiments (Fig. 1d, §5.2)
//! and of many integration tests. Gateway-in-the-middle variants live in
//! the bench crate (which may depend on `px-core`; this crate must not).

use px_sim::link::LinkConfig;
use px_sim::network::Network;
use px_sim::node::{NodeId, PortId};
use px_sim::time::Nanos;
use px_tcp::conn::{CcAlgo, ConnConfig};
use px_tcp::host::{Host, HostConfig, UdpFlowCfg};
use px_tcp::udp::UdpSocket;
use std::net::Ipv4Addr;

/// Address of host A (client/sender side) in built pairs.
pub const A_ADDR: Ipv4Addr = Ipv4Addr::new(10, 10, 0, 1);
/// Address of host B (server/receiver side) in built pairs.
pub const B_ADDR: Ipv4Addr = Ipv4Addr::new(10, 10, 0, 2);

/// Configuration of a host-pair iPerf run.
#[derive(Debug, Clone)]
pub struct IperfPair {
    /// MTU at host A.
    pub mtu_a: usize,
    /// MTU at host B.
    pub mtu_b: usize,
    /// The connecting link.
    pub link: LinkConfig,
    /// Number of parallel flows (iperf -P).
    pub flows: usize,
    /// Test duration.
    pub duration: Nanos,
    /// Congestion control.
    pub cc: CcAlgo,
    /// Simulation seed.
    pub seed: u64,
}

/// The harvest of a run.
#[derive(Debug, Clone)]
pub struct IperfReport {
    /// Bytes each flow delivered (receiver side, in order).
    pub per_flow_bytes: Vec<u64>,
    /// Aggregate goodput in bits/sec over the duration.
    pub aggregate_bps: f64,
    /// Total sender retransmissions.
    pub retransmits: u64,
    /// Total integrity errors (must be 0).
    pub integrity_errors: u64,
    /// Effective MSS the first flow negotiated.
    pub effective_mss: usize,
}

impl IperfPair {
    /// A single flow over the paper's WAN profile (10 ms delay, 0.01%
    /// loss) at the given MTU — the Fig. 1d scenario.
    pub fn paper_wan(mtu: usize) -> Self {
        IperfPair {
            mtu_a: mtu,
            mtu_b: mtu,
            // tc-netem's default queue limit is 1000 packets; the link
            // queue models the software router's buffer.
            link: LinkConfig::new(100_000_000_000, Nanos::ZERO, mtu)
                .with_netem(px_sim::netem::Netem::paper_wan())
                .with_queue(1000 * mtu),
            flows: 1,
            duration: Nanos::from_secs(30),
            cc: CcAlgo::Reno,
            seed: 42,
        }
    }

    /// Runs TCP flows from A to B; returns the report.
    pub fn run_tcp(&self) -> IperfReport {
        let (mut net, a, b, duration) = self.build_tcp();
        net.run_until(duration + Nanos::from_secs(1));
        let server_stats = net.node_ref::<Host>(b).tcp_stats();
        let client_stats = net.node_ref::<Host>(a).tcp_stats();
        let per_flow_bytes: Vec<u64> = server_stats.iter().map(|s| s.bytes_received).collect();
        let total: u64 = per_flow_bytes.iter().sum();
        IperfReport {
            aggregate_bps: total as f64 * 8.0 / duration.as_secs_f64(),
            per_flow_bytes,
            // Retransmissions happen at the sender (client) side.
            retransmits: client_stats.iter().map(|s| s.retransmits).sum(),
            integrity_errors: server_stats.iter().map(|s| s.integrity_errors).sum::<u64>()
                + client_stats.iter().map(|s| s.integrity_errors).sum::<u64>(),
            effective_mss: client_stats.first().map(|s| s.effective_mss).unwrap_or(0),
        }
    }

    /// Builds the network without running it (callers that want to
    /// inspect nodes mid-run).
    pub fn build_tcp(&self) -> (Network, NodeId, NodeId, Nanos) {
        let mut net = Network::new(self.seed);
        let a = net.add_node(Host::new(HostConfig::new(A_ADDR, self.mtu_a)));
        let b = net.add_node(Host::new(HostConfig::new(B_ADDR, self.mtu_b)));
        net.connect((a, PortId(0)), (b, PortId(0)), self.link);
        {
            let server = net.node_mut::<Host>(b);
            server.listen(
                5201,
                ConnConfig::new((B_ADDR, 5201), (A_ADDR, 0), self.mtu_b),
            );
        }
        {
            let client = net.node_mut::<Host>(a);
            for i in 0..self.flows {
                let mut cfg =
                    ConnConfig::new((A_ADDR, 40000 + i as u16), (B_ADDR, 5201), self.mtu_a)
                        .sending(u64::MAX);
                cfg.cc = self.cc;
                client.connect_at(
                    (i as u64) * 1_000_000, // staggered starts, 1 ms apart
                    cfg,
                    Some(self.duration.0),
                );
            }
        }
        (net, a, b, self.duration)
    }

    /// Runs paced UDP flows from A to B at `rate_bps` per flow with
    /// `payload`-byte datagrams; returns (datagrams delivered, bytes).
    pub fn run_udp(&self, rate_bps: u64, payload: usize) -> (u64, u64) {
        let mut net = Network::new(self.seed);
        let a = net.add_node(Host::new(HostConfig::new(A_ADDR, self.mtu_a)));
        let b = net.add_node(Host::new(HostConfig::new(B_ADDR, self.mtu_b)));
        net.connect((a, PortId(0)), (b, PortId(0)), self.link);
        net.node_mut::<Host>(b).udp_bind(UdpSocket::bind(5201));
        {
            let client = net.node_mut::<Host>(a);
            for i in 0..self.flows {
                client.add_udp_flow(UdpFlowCfg {
                    local_port: 40000 + i as u16,
                    dst: B_ADDR,
                    dst_port: 5201,
                    rate_bps,
                    payload,
                    start_ns: 0,
                    stop_ns: self.duration.0,
                });
            }
        }
        net.run_until(self.duration + Nanos::from_secs(1));
        let sock = net.node_ref::<Host>(b).udp_socket(5201).unwrap();
        (sock.stats.datagrams, sock.stats.payload_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1d mechanism: at identical loss rate and RTT, the 9 KB
    /// flow outruns the 1500 B flow by roughly √(M·q) scaling (§2.1's
    /// Mathis argument) — several-fold.
    #[test]
    fn wan_jumbo_beats_legacy_severalfold() {
        let mut legacy = IperfPair::paper_wan(1500);
        legacy.duration = Nanos::from_secs(15);
        let mut jumbo = IperfPair::paper_wan(9000);
        jumbo.duration = Nanos::from_secs(15);
        let l = legacy.run_tcp();
        let j = jumbo.run_tcp();
        assert_eq!(l.integrity_errors + j.integrity_errors, 0);
        let ratio = j.aggregate_bps / l.aggregate_bps;
        assert!(
            ratio > 3.0,
            "9 KB / 1500 B ratio {ratio} (l={} j={})",
            l.aggregate_bps,
            j.aggregate_bps
        );
        assert_eq!(j.effective_mss, 8960);
    }

    #[test]
    fn parallel_flows_share_the_link() {
        let pair = IperfPair {
            mtu_a: 1500,
            mtu_b: 1500,
            link: LinkConfig::new(1_000_000_000, Nanos::from_millis(1), 1500),
            flows: 4,
            duration: Nanos::from_secs(5),
            cc: CcAlgo::Reno,
            seed: 3,
        };
        let r = pair.run_tcp();
        assert_eq!(r.per_flow_bytes.len(), 4);
        assert_eq!(r.integrity_errors, 0);
        // Aggregate near link rate; no flow starved.
        assert!(r.aggregate_bps > 0.7e9, "aggregate {}", r.aggregate_bps);
        let max = *r.per_flow_bytes.iter().max().unwrap() as f64;
        let min = *r.per_flow_bytes.iter().min().unwrap() as f64;
        assert!(min > 0.2 * max, "rough fairness: {min} vs {max}");
    }

    #[test]
    fn udp_pair_delivers_at_offered_rate() {
        let pair = IperfPair {
            mtu_a: 1500,
            mtu_b: 1500,
            link: LinkConfig::new(1_000_000_000, Nanos::from_micros(100), 1500),
            flows: 2,
            duration: Nanos::from_secs(2),
            cc: CcAlgo::Reno,
            seed: 4,
        };
        let (dgrams, bytes) = pair.run_udp(20_000_000, 1000);
        let expected = 2.0 * 20e6 * 2.0 / 8.0 / 1000.0;
        assert!(
            (dgrams as f64 - expected).abs() / expected < 0.06,
            "{dgrams} vs {expected}"
        );
        assert_eq!(bytes, dgrams * 1000);
    }
}
