//! Flow-size distributions.
//!
//! §2.2: "the majority of flows in the WAN are short-lived, which implies
//! that only a fraction of the flows require very high bandwidth". The
//! steering experiments need such a mix: many mice, few elephants, with
//! the elephants carrying most of the bytes. We use a bounded Pareto
//! (the standard heavy-tail model for flow sizes) plus a convenience
//! mice/elephant mixture.

use rand::rngs::SmallRng;
use rand::Rng;

/// A flow-size distribution.
#[derive(Debug, Clone, Copy)]
pub enum FlowSizeDist {
    /// Every flow is exactly this many bytes.
    Fixed(u64),
    /// Bounded Pareto with shape `alpha` on `[min, max]`.
    BoundedPareto {
        /// Tail index (1.1–1.3 is typical for WAN flow sizes).
        alpha: f64,
        /// Smallest flow, bytes.
        min: u64,
        /// Largest flow, bytes.
        max: u64,
    },
    /// A mice/elephants mixture: with probability `mice_frac` a uniform
    /// mouse in `[2 KB, 64 KB]`, otherwise a uniform elephant in
    /// `[1 MB, 100 MB]`.
    MiceElephants {
        /// Fraction of flows that are mice.
        mice_frac: f64,
    },
}

impl FlowSizeDist {
    /// Samples one flow size.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            FlowSizeDist::Fixed(n) => n,
            FlowSizeDist::BoundedPareto { alpha, min, max } => {
                // Inverse-CDF sampling of the bounded Pareto.
                let (l, h) = (min as f64, max as f64);
                let u: f64 = rng.gen_range(0.0..1.0);
                let la = l.powf(alpha);
                let ha = h.powf(alpha);
                let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
                (x as u64).clamp(min, max)
            }
            FlowSizeDist::MiceElephants { mice_frac } => {
                if rng.gen::<f64>() < mice_frac {
                    rng.gen_range(2_048..=65_536)
                } else {
                    rng.gen_range(1_000_000..=100_000_000)
                }
            }
        }
    }

    /// Samples `n` flows.
    pub fn sample_n(&self, rng: &mut SmallRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Summary of a sampled flow population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowMixSummary {
    /// Number of flows.
    pub flows: usize,
    /// Total bytes.
    pub total_bytes: u64,
    /// Fraction of flows smaller than 100 KB.
    pub mice_fraction: f64,
    /// Fraction of bytes carried by the largest 10% of flows.
    pub top_decile_byte_share: f64,
}

/// Summarises a flow-size sample.
pub fn summarize(sizes: &[u64]) -> FlowMixSummary {
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    let total: u64 = sorted.iter().sum();
    let mice = sorted.iter().filter(|&&s| s < 100_000).count();
    let top_n = (sorted.len() / 10).max(1);
    let top_bytes: u64 = sorted.iter().rev().take(top_n).sum();
    FlowMixSummary {
        flows: sizes.len(),
        total_bytes: total,
        mice_fraction: mice as f64 / sizes.len().max(1) as f64,
        top_decile_byte_share: top_bytes as f64 / total.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bounded_pareto_respects_bounds_and_tail() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = FlowSizeDist::BoundedPareto {
            alpha: 1.2,
            min: 1_000,
            max: 1_000_000_000,
        };
        let sizes = d.sample_n(&mut rng, 20_000);
        assert!(sizes.iter().all(|&s| (1_000..=1_000_000_000).contains(&s)));
        let s = summarize(&sizes);
        // Heavy tail: top 10% of flows carry the majority of bytes.
        assert!(
            s.top_decile_byte_share > 0.5,
            "share {}",
            s.top_decile_byte_share
        );
        // Most flows are small.
        assert!(s.mice_fraction > 0.5, "mice {}", s.mice_fraction);
    }

    #[test]
    fn mice_elephants_mixture_fraction() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = FlowSizeDist::MiceElephants { mice_frac: 0.9 };
        let sizes = d.sample_n(&mut rng, 10_000);
        let s = summarize(&sizes);
        assert!((s.mice_fraction - 0.9).abs() < 0.02);
        assert!(s.top_decile_byte_share > 0.9);
    }

    #[test]
    fn fixed_is_fixed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = FlowSizeDist::Fixed(12345);
        assert!(d.sample_n(&mut rng, 100).iter().all(|&s| s == 12345));
    }
}
