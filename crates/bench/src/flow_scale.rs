//! Flow-scale measurement: engine throughput and elephant-byte yield as
//! the live-flow population sweeps 1 k → 1 M.
//!
//! Each point streams the `px-workload::internet` model (never
//! materialising a trace) through RSS-sharded [`CoreDriver`]s exactly
//! like the `flow_soak` gate, in two phases: an untimed *fill* (churn
//! off, pumped until every ring identity has emitted, so the classifier
//! tracks the whole population) and a timed *churn window* (identity
//! turnover under a full table — the steady state the paper's gateway
//! lives in). Throughput is wall-clock over the window and includes
//! packet generation, which is identical per point, so the curve
//! isolates how flow-state scale bends the datapath.

use crate::Scale;
use px_core::engine::{CoreDriver, FlowDigest};
use px_core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
use px_core::SteerConfig;
use px_wire::{FlowKey, RssHasher, LEGACY_MTU};
use px_workload::internet::{is_elephant, InternetConfig, InternetModel};
use std::collections::BTreeMap;

/// Worker shards per point (fixed: the sweep varies flows, not cores).
pub const CORES: usize = 4;
const BATCH_PKTS: usize = 512;
const INTER_ARRIVAL_NS: u64 = 10;
const SEED: u64 = 0xF10E_5CA1;
/// Hard per-entry bound for classifier slots (see `flow_soak`).
const STEER_ENTRY_BYTES: usize = 192;

/// One point on the flow-scale curve.
#[derive(Debug, Clone, Copy)]
pub struct FlowScaleRow {
    /// Live-flow ring size.
    pub flows: usize,
    /// Packets in the timed churn window.
    pub window_pkts: u64,
    /// Wall-clock duration of the window.
    pub elapsed_ns: u64,
    /// Input-side forwarding rate over the window (eMTU wire bytes).
    pub throughput_bps: f64,
    /// Elephant payload bytes delivered in iMTU-sized packets, as a
    /// fraction of all elephant payload bytes (the §3 conversion that
    /// flow state exists to buy).
    pub elephant_yield: f64,
    /// Live-flow gauge folded over the shards at drain.
    pub flows_live: u64,
    /// Mouse packets that hairpinned past the merge path.
    pub steered_mice_pkts: u64,
    /// Peak per-core flow-state arena bytes observed.
    pub arena_peak_bytes: usize,
}

fn scale_model(n_flows: usize) -> InternetModel {
    InternetModel::new(InternetConfig {
        mean_burst: 96,
        burst_cap: 192,
        ..InternetConfig::sized(n_flows, SEED)
    })
}

fn scale_pipe(n_flows: usize) -> PipelineConfig {
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, CORES);
    pipe.n_flows = n_flows;
    pipe.offered_pps = 1e9 / INTER_ARRIVAL_NS as f64;
    pipe.hold_ns = 20_000;
    pipe.steer = Some(SteerConfig {
        table_capacity: 2 * n_flows,
        memory_budget: Some((2 * n_flows * STEER_ENTRY_BYTES).max(32 << 20)),
        ..SteerConfig::default()
    });
    pipe.pool_bufs = 1024;
    pipe
}

struct Pump {
    drivers: Vec<CoreDriver>,
    rss: RssHasher,
    open: Vec<Vec<(u64, Vec<u8>)>>,
    idx: u64,
    arena_peak: usize,
}

impl Pump {
    fn new(pipe: &PipelineConfig) -> Self {
        Pump {
            drivers: (0..CORES).map(|c| CoreDriver::new(pipe, c)).collect(),
            rss: RssHasher::symmetric(),
            open: (0..CORES).map(|_| Vec::with_capacity(BATCH_PKTS)).collect(),
            idx: 0,
            arena_peak: 0,
        }
    }

    fn pump(&mut self, model: &mut InternetModel, pkts: usize) {
        for _ in 0..pkts {
            let (key, pkt) = model.next_pkt();
            let core = self.rss.queue_for(&key, CORES);
            self.open[core].push((self.idx * INTER_ARRIVAL_NS, pkt));
            self.idx += 1;
            if self.open[core].len() == BATCH_PKTS {
                let batch = std::mem::replace(&mut self.open[core], Vec::with_capacity(BATCH_PKTS));
                self.drivers[core].run_batch(batch);
                if self.idx % (64 * BATCH_PKTS as u64) < BATCH_PKTS as u64 {
                    self.arena_peak = self.arena_peak.max(self.drivers[core].arena_bytes());
                }
            }
        }
    }

    fn flush_open(&mut self) {
        for core in 0..CORES {
            if !self.open[core].is_empty() {
                let batch = std::mem::take(&mut self.open[core]);
                self.drivers[core].run_batch(batch);
            }
        }
    }
}

/// Measures one point: fill the ring, then time a churn window of
/// `2 × flows` packets (min 50 k so small rings still measure a
/// meaningful region).
pub fn measure_point(n_flows: usize) -> FlowScaleRow {
    let pipe = scale_pipe(n_flows);
    let mut model = scale_model(n_flows);
    let mut p = Pump::new(&pipe);

    model.set_churn(false);
    let mut fill_guard = 0usize;
    while model.visited_flows() < n_flows {
        p.pump(&mut model, n_flows);
        fill_guard += 1;
        assert!(fill_guard <= 200, "fill phase failed to cover the ring");
    }

    model.set_churn(true);
    let window_pkts = (2 * n_flows).max(50_000);
    let start = std::time::Instant::now();
    p.pump(&mut model, window_pkts);
    let elapsed_ns = start.elapsed().as_nanos().max(1) as u64;

    p.flush_open();
    let mut digests: BTreeMap<FlowKey, FlowDigest> = BTreeMap::new();
    let (mut flows_live, mut steered_mice_pkts) = (0u64, 0u64);
    for d in &mut p.drivers {
        d.finish();
        let c = d.counters();
        flows_live += c.flows_live;
        steered_mice_pkts += c.steered_mice_pkts;
        for (k, v) in d.digests() {
            digests.insert(*k, *v);
        }
    }
    let (mut ebytes, mut ejumbo) = (0u64, 0u64);
    for (k, d) in &digests {
        if is_elephant(k) {
            ebytes += d.bytes;
            ejumbo += d.jumbo_bytes;
        }
    }

    let wire_bytes = window_pkts as u64 * LEGACY_MTU as u64;
    FlowScaleRow {
        flows: n_flows,
        window_pkts: window_pkts as u64,
        elapsed_ns,
        throughput_bps: wire_bytes as f64 * 8.0 / (elapsed_ns as f64 / 1e9),
        elephant_yield: if ebytes > 0 {
            ejumbo as f64 / ebytes as f64
        } else {
            0.0
        },
        flows_live,
        steered_mice_pkts,
        arena_peak_bytes: p.arena_peak,
    }
}

/// The sweep. Full scale covers the paper-motivated 1 k → 1 M range;
/// quick stops at 10 k so the suite's unit tests and the CI bench smoke
/// stay seconds-sized.
pub fn run(scale: Scale) -> Vec<FlowScaleRow> {
    let counts: &[usize] = match scale {
        Scale::Full => &[1_000, 10_000, 100_000, 1_000_000],
        Scale::Quick => &[1_000, 10_000],
    };
    counts.iter().map(|&n| measure_point(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_reports_sane_points() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.throughput_bps > 0.0, "{r:?}");
            assert!(r.elephant_yield > 0.5 && r.elephant_yield <= 1.0, "{r:?}");
            assert!(r.flows_live >= r.flows as u64, "{r:?}");
            assert!(r.steered_mice_pkts > 0, "{r:?}");
            assert!(r.arena_peak_bytes > 0, "{r:?}");
        }
        // The sweep is a curve over flows, not repeated points.
        assert!(rows[0].flows < rows[1].flows);
    }
}
