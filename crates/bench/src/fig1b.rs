//! Fig. 1b — "Impact of G/LRO (single flow)".
//!
//! Single-flow receive throughput on one core across the offload matrix.
//! Paper: with both GRO and LRO, a 1500 B flow reaches 50.1 Gbps —
//! *more* than a 9 KB flow with no offloads, which motivates §2.2's
//! question "is a large MTU really necessary for endpoints?".

use crate::Scale;
use px_sim::calib;
use px_sim::nic::{rx_saturation_bps, RxConfig};

/// One configuration row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Human-readable configuration label.
    pub label: &'static str,
    /// Wire MTU.
    pub mtu: usize,
    /// LRO enabled.
    pub lro: bool,
    /// GRO enabled.
    pub gro: bool,
    /// Single-core RX throughput, bits/sec.
    pub throughput_bps: f64,
}

/// Runs the offload matrix (scale-independent: closed-form model).
pub fn run(_scale: Scale) -> Vec<Row> {
    let m = calib::endpoint_model();
    let configs: [(&'static str, usize, bool, bool); 7] = [
        ("1500B, none", 1500, false, false),
        ("1500B, GRO", 1500, false, true),
        ("1500B, LRO", 1500, true, false),
        ("1500B, G/LRO", 1500, true, true),
        ("9000B, none", 9000, false, false),
        ("9000B, GRO", 9000, false, true),
        ("9000B, G/LRO", 9000, true, true),
    ];
    configs
        .iter()
        .map(|&(label, mtu, lro, gro)| Row {
            label,
            mtu,
            lro,
            gro,
            throughput_bps: rx_saturation_bps(
                &m,
                &RxConfig {
                    mtu,
                    lro,
                    gro,
                    flows: 1,
                },
            ),
        })
        .collect()
}

/// Renders the paper-style table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig 1b — single-flow RX throughput vs offloads (1 core)\n");
    out.push_str("  config         | throughput\n");
    out.push_str("  ---------------+-----------\n");
    for r in rows {
        out.push_str(&format!(
            "  {:14} | {}\n",
            r.label,
            crate::fmt_bps(r.throughput_bps)
        ));
    }
    out.push_str("  paper: 1500B + G/LRO = 50.1 Gbps > 9000B without offloads\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig1b() {
        let rows = run(Scale::Quick);
        let find = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .unwrap()
                .throughput_bps
        };
        let glro_1500 = find("1500B, G/LRO");
        assert!((glro_1500 / 1e9 - 50.1).abs() < 1.5, "{glro_1500}");
        // The paper's crossover: G/LRO at 1500 beats bare 9000.
        assert!(find("9000B, none") < glro_1500);
        // Offloads help monotonically at 1500.
        assert!(find("1500B, none") < find("1500B, GRO"));
        assert!(find("1500B, GRO") < find("1500B, LRO"));
        // Jumbo with offloads is best overall.
        assert!(find("9000B, G/LRO") > glro_1500);
    }
}
