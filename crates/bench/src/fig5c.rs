//! Fig. 5c — "Throughput of an endpoint receiver" in a b-network.
//!
//! 100 TCP flows, one RX core, offloads enabled incrementally; the
//! b-network receiver gets iMTU-sized (9 KB) packets from PXGW while the
//! legacy receiver gets 1500 B packets end-to-end. Paper: 1.5×–1.8× RX
//! gain from MTU translation, and the PX-caravan + UDP_GRO path beats
//! the 1500 B UDP baseline by 2.4×.

use crate::Scale;
use px_sim::calib;
use px_sim::nic::{rx_caravan_bps, rx_saturation_bps, RxConfig};

/// One offload row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Offload configuration label.
    pub label: &'static str,
    /// RX throughput with the 1500 B end-to-end path, bits/sec.
    pub legacy_bps: f64,
    /// RX throughput with PXGW translating to the 9 KB iMTU, bits/sec.
    pub pxgw_bps: f64,
    /// Gain from translation.
    pub gain: f64,
}

/// The UDP rows (baseline vs caravan).
#[derive(Debug, Clone, Copy)]
pub struct UdpRow {
    /// Plain 1500 B UDP receive, bits/sec.
    pub legacy_bps: f64,
    /// PX-caravan + UDP_GRO receive, bits/sec.
    pub caravan_bps: f64,
    /// Gain.
    pub gain: f64,
}

/// Runs the receiver matrix (closed-form model; scale-independent).
pub fn run(_scale: Scale) -> (Vec<Row>, UdpRow) {
    let m = calib::endpoint_model();
    let flows = 100;
    let configs: [(&'static str, bool, bool); 4] = [
        ("none", false, false),
        ("+LRO", true, false),
        ("+GRO", false, true),
        ("+LRO+GRO", true, true),
    ];
    let rows = configs
        .iter()
        .map(|&(label, lro, gro)| {
            let legacy = rx_saturation_bps(
                &m,
                &RxConfig {
                    mtu: 1500,
                    lro,
                    gro,
                    flows,
                },
            );
            let pxgw = rx_saturation_bps(
                &m,
                &RxConfig {
                    mtu: 9000,
                    lro,
                    gro,
                    flows,
                },
            );
            Row {
                label,
                legacy_bps: legacy,
                pxgw_bps: pxgw,
                gain: pxgw / legacy,
            }
        })
        .collect();
    // UDP: plain 1500 B datagrams vs ~8.9 KB caravans of 6 datagrams.
    let legacy_udp = rx_saturation_bps(
        &m,
        &RxConfig {
            mtu: 1500,
            lro: false,
            gro: false,
            flows,
        },
    );
    let caravan = rx_caravan_bps(&m, 8860, 6, flows);
    (
        rows,
        UdpRow {
            legacy_bps: legacy_udp,
            caravan_bps: caravan,
            gain: caravan / legacy_udp,
        },
    )
}

/// Renders the paper-style table.
pub fn render(rows: &[Row], udp: &UdpRow) -> String {
    let mut out = String::new();
    out.push_str("Fig 5c — b-network receiver RX throughput (100 flows, 1 core)\n");
    out.push_str("  offloads  | legacy 1500B | PXGW 9000B | gain\n");
    out.push_str("  ----------+--------------+------------+------\n");
    for r in rows {
        out.push_str(&format!(
            "  {:9} | {:>12} | {:>10} | {:.2}x\n",
            r.label,
            crate::fmt_bps(r.legacy_bps),
            crate::fmt_bps(r.pxgw_bps),
            r.gain
        ));
    }
    out.push_str(&format!(
        "  UDP       | {:>12} | {:>10} | {:.2}x  (PX-caravan + UDP_GRO)\n",
        crate::fmt_bps(udp.legacy_bps),
        crate::fmt_bps(udp.caravan_bps),
        udp.gain
    ));
    out.push_str("  paper: 1.5x–1.8x TCP gains with offloads; caravan 2.4x\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig5c() {
        let (rows, udp) = run(Scale::Quick);
        // With offloads enabled the translation gain sits in (or near)
        // the paper's 1.5–1.8× band.
        let glro = rows.iter().find(|r| r.label == "+LRO+GRO").unwrap();
        assert!(
            glro.gain > 1.4 && glro.gain < 2.2,
            "G/LRO gain {}",
            glro.gain
        );
        let lro = rows.iter().find(|r| r.label == "+LRO").unwrap();
        assert!(lro.gain > 1.3, "LRO gain {}", lro.gain);
        // Receivers without offloads benefit the most (§5.2: "the TCP
        // receiver will benefit the most ... where offload features ...
        // are unavailable, such as in mobile devices").
        let none = rows.iter().find(|r| r.label == "none").unwrap();
        assert!(none.gain > glro.gain);
        // UDP caravan ≈ 2.4×.
        assert!((udp.gain - 2.4).abs() < 0.5, "caravan gain {}", udp.gain);
    }
}
