//! §5.3 — the fragment-delivery survey.
//!
//! Paper: of 389,428 live servers, 99.98% answer IP-fragmented HTTP
//! requests; 59 fail; 15 of those sit behind a last-hop AS that filters
//! fragments. (Compare classic ICMP-dependent PMTUD, reported at only
//! 51% success in 2018.)

use crate::Scale;
use px_pmtud::survey::{run_survey, SurveyConfig, SurveyReport};

/// Runs the survey.
pub fn run(scale: Scale) -> SurveyReport {
    let cfg = match scale {
        Scale::Full => SurveyConfig::paper(),
        Scale::Quick => SurveyConfig {
            n_servers: 20_000,
            ..SurveyConfig::paper()
        },
    };
    run_survey(cfg)
}

/// Renders the paper-style summary.
pub fn render(r: &SurveyReport) -> String {
    let mut out = String::new();
    out.push_str("§5.3 — fragmented-request delivery survey\n");
    out.push_str(&format!("  servers probed        : {}\n", r.total));
    out.push_str(&format!(
        "  responded             : {} ({:.2}%)\n",
        r.responded,
        r.success_pct()
    ));
    out.push_str(&format!("  failed on fragments   : {}\n", r.failed));
    out.push_str(&format!(
        "  last-hop AS filtering : {}\n",
        r.lasthop_filtered
    ));
    out.push_str("  paper: 389,428 probed; 99.98% responded; 59 failed; 15 last-hop-filtered\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate_matches_paper() {
        let r = run(Scale::Quick);
        assert!(r.success_pct() > 99.9, "{}", r.success_pct());
        assert_eq!(r.responded + r.failed, r.total);
        assert!(r.lasthop_filtered <= r.failed);
    }
}
