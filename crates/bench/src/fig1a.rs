//! Fig. 1a — "Impact of MTU size on the 5G UPF performance".
//!
//! 800 flows through the UPF datapath on a single core, MTU swept from
//! 1500 B to 9000 B. Paper: 208 Gbps at 9 KB, a 5.6× speedup over 1500 B,
//! scaling almost linearly because the UPF only touches headers.

use crate::Scale;
use px_upf::upf_throughput_bps;

/// One MTU point.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// MTU in bytes.
    pub mtu: usize,
    /// Single-core throughput in bits/sec.
    pub throughput_bps: f64,
    /// Speedup over the 1500 B row.
    pub speedup: f64,
}

/// Runs the sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    let (flows, pkts) = match scale {
        Scale::Full => (800, 100_000),
        Scale::Quick => (100, 10_000),
    };
    let mtus = [1500usize, 3000, 4500, 6000, 7500, 9000];
    let base = upf_throughput_bps(1500, flows, pkts);
    mtus.iter()
        .map(|&mtu| {
            let tp = upf_throughput_bps(mtu, flows, pkts);
            Row {
                mtu,
                throughput_bps: tp,
                speedup: tp / base,
            }
        })
        .collect()
}

/// Renders the paper-style table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig 1a — 5G UPF throughput vs MTU (single core, 800 flows)\n");
    out.push_str("  MTU (B) | throughput | speedup vs 1500B\n");
    out.push_str("  --------+------------+-----------------\n");
    for r in rows {
        out.push_str(&format!(
            "  {:7} | {:>10} | {:.2}x\n",
            r.mtu,
            crate::fmt_bps(r.throughput_bps),
            r.speedup
        ));
    }
    out.push_str("  paper: 9000B = 208 Gbps, 5.6x over 1500B\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig1a() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 6);
        let r9000 = rows.iter().find(|r| r.mtu == 9000).unwrap();
        assert!((r9000.throughput_bps / 1e9 - 208.0).abs() < 10.0);
        assert!((r9000.speedup - 5.6).abs() < 0.3);
        // Near-linear scaling: monotone and roughly proportional.
        for w in rows.windows(2) {
            assert!(w[1].throughput_bps > w[0].throughput_bps);
        }
        let r3000 = rows.iter().find(|r| r.mtu == 3000).unwrap();
        assert!((r3000.speedup - 2.0).abs() < 0.25, "≈2x at 2x MTU");
    }
}
