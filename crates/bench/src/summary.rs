//! The paper-vs-measured summary: every headline number from the
//! abstract/intro cross-checked against our reproduction in one table.

use crate::Scale;

/// One headline claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Where in the paper the number appears.
    pub source: &'static str,
    /// What is claimed.
    pub what: &'static str,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Unit/format hint: "x" for ratios, "Tbps", "Gbps", "%".
    pub unit: &'static str,
}

impl Claim {
    /// Relative deviation from the paper's value.
    pub fn deviation(&self) -> f64 {
        (self.measured - self.paper).abs() / self.paper
    }
}

/// Runs every experiment at the given scale and assembles the claims.
pub fn run(scale: Scale) -> Vec<Claim> {
    let mut claims = Vec::new();

    // Fig 1a / §1: "a 5G UPF achieves 5.6× higher throughput with 9 KB
    // MTU ... reaching 208 Gbps on a single CPU core".
    let fig1a = crate::fig1a::run(scale);
    let r9000 = fig1a.iter().find(|r| r.mtu == 9000).unwrap();
    claims.push(Claim {
        source: "Fig 1a",
        what: "UPF 9KB single-core throughput",
        paper: 208.0,
        measured: r9000.throughput_bps / 1e9,
        unit: "Gbps",
    });
    claims.push(Claim {
        source: "Fig 1a",
        what: "UPF 9KB vs 1500B speedup",
        paper: 5.6,
        measured: r9000.speedup,
        unit: "x",
    });

    // Fig 1b: 1500B + G/LRO = 50.1 Gbps.
    let fig1b = crate::fig1b::run(scale);
    let glro = fig1b.iter().find(|r| r.label == "1500B, G/LRO").unwrap();
    claims.push(Claim {
        source: "Fig 1b",
        what: "1500B+G/LRO single-flow RX",
        paper: 50.1,
        measured: glro.throughput_bps / 1e9,
        unit: "Gbps",
    });

    // Fig 1c: drops at 4 flows.
    let fig1c = crate::fig1c::run(scale);
    let at4 = fig1c.iter().find(|r| r.flows == 4).unwrap();
    claims.push(Claim {
        source: "Fig 1c",
        what: "G/LRO throughput drop @4 flows",
        paper: 31.0,
        measured: 100.0 * at4.glro_1500_drop,
        unit: "%",
    });
    claims.push(Claim {
        source: "Fig 1c",
        what: "9KB throughput drop @4 flows",
        paper: 7.0,
        measured: 100.0 * at4.jumbo_drop,
        unit: "%",
    });

    // Fig 1d / §2.2: 9KB beats 1500B+G/LRO by 5.4x in the WAN.
    let fig1d = crate::fig1d::run(scale);
    let wan9 = fig1d.iter().find(|r| r.mtu == 9000).unwrap();
    claims.push(Claim {
        source: "Fig 1d",
        what: "WAN 9KB vs 1500B+G/LRO",
        paper: 5.4,
        measured: wan9.ratio,
        unit: "x",
    });

    // Table 1: 2.88x CPU at 100 sessions.
    let t1 = crate::table1::run(scale);
    let r100 = t1.iter().find(|r| r.sessions == 100).unwrap();
    claims.push(Claim {
        source: "Table 1",
        what: "parallel-conns CPU penalty @100",
        paper: 2.88,
        measured: r100.legacy6_pct / r100.jumbo_pct,
        unit: "x",
    });

    // Fig 5a: the three 8-core anchors.
    let fig5a = crate::fig5a::run(scale);
    let cell = |sys: &str| {
        fig5a
            .iter()
            .find(|r| r.system == sys && r.cores == 8)
            .unwrap()
    };
    claims.push(Claim {
        source: "Fig 5a",
        what: "PXGW TCP throughput (8 cores)",
        paper: 1.09,
        measured: cell("PX").throughput_bps / 1e12,
        unit: "Tbps",
    });
    claims.push(Claim {
        source: "Fig 5a",
        what: "PXGW+hdr-DMA TCP throughput",
        paper: 1.45,
        measured: cell("PX+header-only").throughput_bps / 1e12,
        unit: "Tbps",
    });
    claims.push(Claim {
        source: "Fig 5a",
        what: "baseline GRO throughput",
        paper: 167.0,
        measured: cell("baseline-GRO").throughput_bps / 1e9,
        unit: "Gbps",
    });
    claims.push(Claim {
        source: "Fig 5a",
        what: "PX conversion yield",
        paper: 93.0,
        measured: 100.0 * cell("PX").conversion_yield,
        unit: "%",
    });
    claims.push(Claim {
        source: "Fig 5a",
        what: "baseline conversion yield",
        paper: 76.0,
        measured: 100.0 * cell("baseline-GRO").conversion_yield,
        unit: "%",
    });

    // §5.2 sender: 2.5x.
    let sender = crate::sender::run(scale);
    claims.push(Claim {
        source: "§5.2",
        what: "sender-only upgrade WAN gain",
        paper: 2.5,
        measured: sender[1].ratio,
        unit: "x",
    });

    // Fig 5c: receiver gains + caravan.
    let (fig5c, udp) = crate::fig5c::run(scale);
    let glro = fig5c.iter().find(|r| r.label == "+LRO+GRO").unwrap();
    claims.push(Claim {
        source: "Fig 5c",
        what: "receiver gain with G/LRO",
        paper: 1.8,
        measured: glro.gain,
        unit: "x",
    });
    claims.push(Claim {
        source: "Fig 5c",
        what: "caravan+UDP_GRO vs 1500B UDP",
        paper: 2.4,
        measured: udp.gain,
        unit: "x",
    });

    // §5.3: Utah-UMass speedup + survey success.
    let pm = crate::fpmtud::run(scale);
    if let Some(m) = pm.iter().find(|r| r.from == "Utah" && r.to == "UMass") {
        claims.push(Claim {
            source: "§5.3",
            what: "F-PMTUD vs PLPMTUD (Utah-UMass)",
            paper: 368.0,
            measured: m.speedup,
            unit: "x",
        });
    }
    let sv = crate::survey::run(scale);
    claims.push(Claim {
        source: "§5.3",
        what: "fragmented-request success rate",
        paper: 99.98,
        measured: sv.success_pct(),
        unit: "%",
    });

    claims
}

/// Renders the summary table.
pub fn render(claims: &[Claim]) -> String {
    let mut out = String::new();
    out.push_str("Summary — paper vs measured (every headline number)\n");
    out.push_str("  source  | claim                            | paper    | measured | dev\n");
    out.push_str("  --------+----------------------------------+----------+----------+------\n");
    for c in claims {
        out.push_str(&format!(
            "  {:7} | {:32} | {:6.2} {:4} | {:6.2} {:4} | {:4.0}%\n",
            c.source,
            c.what,
            c.paper,
            c.unit,
            c.measured,
            c.unit,
            100.0 * c.deviation()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every headline claim reproduces within a factor-level tolerance
    /// (the shape criterion: who wins and by roughly what factor).
    #[test]
    fn all_headlines_within_tolerance() {
        let claims = run(Scale::Quick);
        assert!(claims.len() >= 14);
        for c in &claims {
            assert!(
                c.deviation() < 0.45,
                "{} / {}: paper {} measured {} ({}% off)",
                c.source,
                c.what,
                c.paper,
                c.measured,
                (100.0 * c.deviation()) as i64
            );
        }
    }
}
