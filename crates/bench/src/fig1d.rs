//! Fig. 1d — "Impact of MTU size for WAN connection (single flow)".
//!
//! A full TCP simulation over the paper's WAN profile (10 ms delay,
//! 0.01% random loss): one flow, MTU swept. This experiment uses *no
//! cost model at all* — the outcome is pure congestion-control dynamics
//! (cwnd grows in MSS units; Mathis steady state ∝ √(MSS·wire-MTU)).
//! Paper: 9 KB outperforms 1500 B + G/LRO by 5.4×.

use crate::Scale;
use px_sim::Nanos;
use px_workload::iperf::IperfPair;

/// One MTU point.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// End-to-end MTU.
    pub mtu: usize,
    /// Average goodput over the run, bits/sec.
    pub throughput_bps: f64,
    /// Ratio over the 1500 B row (G/LRO does not change TCP dynamics
    /// under byte-counted cwnd growth, so 1500 B ≡ 1500 B + G/LRO here).
    pub ratio: f64,
    /// Sender retransmissions (sanity: loss was actually experienced).
    pub retransmits: u64,
}

/// Runs the WAN sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    let duration = match scale {
        Scale::Full => Nanos::from_secs(60),
        Scale::Quick => Nanos::from_secs(10),
    };
    let mtus = [1500usize, 3000, 9000];
    let mut rows = Vec::new();
    let mut base = 0.0;
    for &mtu in &mtus {
        let mut pair = IperfPair::paper_wan(mtu);
        pair.duration = duration;
        // Average over a few seeds: one 0.01%-loss run has high variance.
        let seeds: &[u64] = match scale {
            Scale::Full => &[1, 2, 3, 4, 5],
            Scale::Quick => &[1, 2],
        };
        let mut bps = 0.0;
        let mut rtx = 0;
        for &s in seeds {
            pair.seed = s;
            let r = pair.run_tcp();
            assert_eq!(r.integrity_errors, 0, "stream corruption");
            bps += r.aggregate_bps;
            rtx += r.retransmits;
        }
        bps /= seeds.len() as f64;
        if mtu == 1500 {
            base = bps;
        }
        rows.push(Row {
            mtu,
            throughput_bps: bps,
            ratio: bps / base,
            retransmits: rtx,
        });
    }
    rows
}

/// Renders the paper-style table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig 1d — single-flow WAN throughput (10 ms delay, 0.01% loss)\n");
    out.push_str("  MTU (B) | throughput | vs 1500B (=1500B+G/LRO)\n");
    out.push_str("  --------+------------+------------------------\n");
    for r in rows {
        out.push_str(&format!(
            "  {:7} | {:>10} | {:.2}x\n",
            r.mtu,
            crate::fmt_bps(r.throughput_bps),
            r.ratio
        ));
    }
    out.push_str("  paper: 9000B beats 1500B+G/LRO by 5.4x\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig1d_shape() {
        let rows = run(Scale::Quick);
        let r9000 = rows.iter().find(|r| r.mtu == 9000).unwrap();
        // Mathis scaling predicts ≈6×; the paper measured 5.4×. Accept a
        // generous band on the short Quick run.
        assert!(
            r9000.ratio > 3.0 && r9000.ratio < 9.0,
            "9000B ratio {}",
            r9000.ratio
        );
        assert!(r9000.retransmits > 0, "loss must have occurred");
        let r3000 = rows.iter().find(|r| r.mtu == 3000).unwrap();
        assert!(r3000.ratio > 1.2 && r3000.ratio < r9000.ratio);
    }
}
