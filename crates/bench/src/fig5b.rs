//! Fig. 5b — PXGW UDP (PX-caravan) throughput and conversion yield.
//!
//! Same sweep as Fig. 5a with 800 bidirectional UDP flows. Paper: "the
//! peak throughput is slightly lower [than TCP] due to the absence of
//! LRO and TSO benefits. Nevertheless, the conversion yield remains
//! comparable to TCP, thanks to delayed merging. Enabling header-only
//! DMA also improves the maximum throughput."

use crate::fig5a::{render_titled, run_kind, Row};
use crate::Scale;
use px_core::pipeline::WorkloadKind;

/// Runs Fig. 5b (UDP).
pub fn run(scale: Scale) -> Vec<Row> {
    run_kind(scale, WorkloadKind::Udp)
}

/// Renders the paper-style table.
pub fn render(rows: &[Row]) -> String {
    render_titled(
        rows,
        "Fig 5b — PXGW UDP (PX-caravan) throughput / conversion yield (800 flows)",
        "  paper: peak slightly below TCP; CY comparable; header-only DMA still helps\n  (baseline CY is 0% for UDP by construction: GRO-style merging cannot\n  legally merge datagrams — the problem PX-caravan exists to solve)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(rows: &'a [Row], system: &str, cores: usize) -> &'a Row {
        rows.iter()
            .find(|r| r.system == system && r.cores == cores)
            .unwrap()
    }

    #[test]
    fn reproduces_fig5b_shape() {
        let udp = run(Scale::Quick);
        let tcp = crate::fig5a::run(Scale::Quick);
        for sys in ["PX", "PX+header-only"] {
            let u = cell(&udp, sys, 8);
            let t = cell(&tcp, sys, 8);
            assert!(
                u.throughput_bps < t.throughput_bps,
                "{sys}: UDP peak must be below TCP ({} vs {})",
                u.throughput_bps,
                t.throughput_bps
            );
            // "slightly lower", not collapsed.
            assert!(u.throughput_bps > 0.4 * t.throughput_bps);
            // "conversion yield remains comparable to TCP".
            assert!(
                u.conversion_yield > t.conversion_yield - 0.12,
                "{sys}: CY {} vs TCP {}",
                u.conversion_yield,
                t.conversion_yield
            );
        }
        // Header-only DMA improves the UDP maximum too.
        let px = cell(&udp, "PX", 8);
        let hdr = cell(&udp, "PX+header-only", 8);
        assert!(hdr.throughput_bps > px.throughput_bps);
    }
}
