//! Fig. 5a — PXGW TCP throughput (TP) and conversion yield (CY).
//!
//! 800 bidirectional TCP flows through the gateway, cores swept 1→8,
//! three systems: the DPDK-GRO baseline, PX, and PX with header-only
//! DMA. Paper at 8 cores: baseline 167 Gbps / 76% CY; PX 1.09 Tbps /
//! 93%; PX+header-only 1.45 Tbps / 94%.

use crate::Scale;
use px_core::pipeline::{run_pipeline, PipelineConfig, SystemVariant, WorkloadKind};

/// One (system, cores) cell.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// System label.
    pub system: &'static str,
    /// Core count.
    pub cores: usize,
    /// Forwarding throughput, bits/sec.
    pub throughput_bps: f64,
    /// Conversion yield (fraction of output packets at iMTU size).
    pub conversion_yield: f64,
    /// Whether the memory bus (not the CPU) was the binding constraint.
    pub bus_bound: bool,
}

fn systems() -> [(&'static str, SystemVariant); 3] {
    [
        ("baseline-GRO", SystemVariant::BaselineGro),
        ("PX", SystemVariant::Px),
        ("PX+header-only", SystemVariant::PxHeaderOnly),
    ]
}

/// Runs the sweep for a workload kind (shared with Fig. 5b).
pub fn run_kind(scale: Scale, workload: WorkloadKind) -> Vec<Row> {
    let trace_pkts = match scale {
        Scale::Full => 120_000,
        Scale::Quick => 25_000,
    };
    let mut rows = Vec::new();
    for (label, variant) in systems() {
        for cores in [1usize, 2, 4, 8] {
            let mut cfg = PipelineConfig::fig5(variant, workload, cores);
            cfg.trace_pkts = trace_pkts;
            let rep = run_pipeline(cfg);
            rows.push(Row {
                system: label,
                cores,
                throughput_bps: rep.throughput_bps,
                conversion_yield: rep.conversion_yield,
                bus_bound: rep.membus_bound_bps < rep.cpu_bound_bps,
            });
        }
    }
    rows
}

/// Runs Fig. 5a (TCP).
pub fn run(scale: Scale) -> Vec<Row> {
    run_kind(scale, WorkloadKind::Tcp)
}

/// Renders the paper-style table.
pub fn render(rows: &[Row]) -> String {
    render_titled(
        rows,
        "Fig 5a — PXGW TCP throughput / conversion yield (800 flows)",
        "  paper @8 cores: baseline 167 Gbps/76%, PX 1.09 Tbps/93%, PX+hdr 1.45 Tbps/94%",
    )
}

pub(crate) fn render_titled(rows: &[Row], title: &str, footer: &str) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str("  system         | cores | throughput  | CY    | bound\n");
    out.push_str("  ---------------+-------+-------------+-------+------\n");
    for r in rows {
        out.push_str(&format!(
            "  {:14} | {:5} | {:>11} | {:>5} | {}\n",
            r.system,
            r.cores,
            crate::fmt_bps(r.throughput_bps),
            crate::pct(r.conversion_yield),
            if r.bus_bound { "mem" } else { "cpu" },
        ));
    }
    out.push_str(footer);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(rows: &'a [Row], system: &str, cores: usize) -> &'a Row {
        rows.iter()
            .find(|r| r.system == system && r.cores == cores)
            .unwrap()
    }

    #[test]
    fn reproduces_fig5a_at_8_cores() {
        let rows = run(Scale::Quick);
        let base = cell(&rows, "baseline-GRO", 8);
        let px = cell(&rows, "PX", 8);
        let hdr = cell(&rows, "PX+header-only", 8);
        // Throughput anchors (generous bands at Quick scale).
        assert!(
            (base.throughput_bps / 1e9 - 167.0).abs() < 30.0,
            "base {}",
            base.throughput_bps
        );
        assert!(
            (px.throughput_bps / 1e12 - 1.09).abs() < 0.08,
            "px {}",
            px.throughput_bps
        );
        assert!(
            (hdr.throughput_bps / 1e12 - 1.45).abs() < 0.15,
            "hdr {}",
            hdr.throughput_bps
        );
        // Yields: baseline well below PX; PX near the paper's 93%.
        assert!(base.conversion_yield < px.conversion_yield);
        assert!(px.conversion_yield > 0.85, "px CY {}", px.conversion_yield);
        assert!(
            base.conversion_yield > 0.5 && base.conversion_yield < 0.9,
            "base CY {}",
            base.conversion_yield
        );
        // The defining regime change: PX is bus-bound at 8 cores,
        // header-only DMA makes it CPU-bound.
        assert!(px.bus_bound);
        assert!(!hdr.bus_bound);
    }

    #[test]
    fn scaling_shapes() {
        let rows = run(Scale::Quick);
        // PX+hdr scales near-linearly in cores.
        let t1 = cell(&rows, "PX+header-only", 1).throughput_bps;
        let t8 = cell(&rows, "PX+header-only", 8).throughput_bps;
        let ratio = t8 / t1;
        assert!(ratio > 6.0 && ratio < 9.0, "8-core scaling {ratio}");
        // PX flattens once the bus saturates.
        let px4 = cell(&rows, "PX", 4).throughput_bps;
        let px8 = cell(&rows, "PX", 8).throughput_bps;
        assert!(px8 / px4 < 1.7, "bus cap flattens scaling: {}", px8 / px4);
    }
}
