//! `figures metrics` — metrics export from a live engine run.
//!
//! Runs the Parallel engine with observability armed, then renders the
//! final [`MetricsSnapshot`] in Prometheus text exposition format or as
//! JSON (including the sampler's throughput time series). The
//! Prometheus output is checked against [`validate_prometheus`] before
//! it is printed, so CI catches format regressions without an external
//! scraper.

use crate::Scale;
use px_core::engine::{run_engine, EngineConfig, EngineMode};
use px_core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
use px_obs::{time_series_json, MetricsSnapshot, TimeSample};
use px_sim::stats::metrics_snapshot_from;

/// Which text format `figures metrics` emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition format.
    Prometheus,
    /// Hand-rolled JSON with the time series attached.
    Json,
}

/// The metric name prefix used for every exported series.
pub const METRICS_PREFIX: &str = "pxgw";

/// One metrics-export run: the final snapshot plus the sampler series.
#[derive(Debug, Clone)]
pub struct MetricsRun {
    /// Final whole-run snapshot (counters, gauges, histograms).
    pub snapshot: MetricsSnapshot,
    /// Periodic samples collected by the in-run sampler thread (always
    /// ends with the final post-run sample).
    pub series: Vec<TimeSample>,
}

/// Runs the Parallel engine with observability on and collects the
/// exportable state.
pub fn run(scale: Scale) -> MetricsRun {
    let trace_pkts = match scale {
        Scale::Full => 120_000,
        Scale::Quick => 20_000,
    };
    let cores = 4usize;
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, cores);
    pipe.trace_pkts = trace_pkts;
    let r = run_engine(EngineConfig::new(pipe, EngineMode::Parallel));
    MetricsRun {
        snapshot: metrics_snapshot_from(&r.totals, &r.obs.hists, cores),
        series: r.obs.time_series.clone(),
    }
}

/// Renders one run in the requested format. Prometheus output is
/// validated first; a malformed exposition aborts loudly rather than
/// shipping unparseable text.
pub fn render(run: &MetricsRun, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Prometheus => {
            let text = run.snapshot.to_prometheus(METRICS_PREFIX);
            if let Err(e) = validate_prometheus(&text) {
                return format!("INVALID PROMETHEUS OUTPUT: {e}\n---\n{text}");
            }
            text
        }
        MetricsFormat::Json => {
            let mut out = String::new();
            out.push_str("{\n  \"metrics\":\n");
            out.push_str(&run.snapshot.to_json("  "));
            out.push_str(",\n  \"time_series\":\n");
            out.push_str(&time_series_json(&run.series, "  "));
            out.push_str("\n}\n");
            out
        }
    }
}

/// Line-format validator for Prometheus text exposition output.
///
/// Checks, per metric family: `# HELP` precedes `# TYPE` precedes
/// samples; sample names match the family (modulo `_bucket`/`_sum`/
/// `_count` suffixes on histograms); sample values parse as numbers;
/// histogram `_bucket` lines carry a `le` label, are cumulative, and
/// end with `le="+Inf"` equal to `_count`.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut current_family: Option<(String, String)> = None; // (name, type)
    let mut have_help = false;
    let mut bucket_cum: Option<u64> = None;
    let mut inf_count: Option<u64> = None;
    let mut families = 0usize;

    let close_family =
        |family: &Option<(String, String)>, inf: &Option<u64>| -> Result<(), String> {
            if let Some((name, kind)) = family {
                if kind == "histogram" && inf.is_none() {
                    return Err(format!("histogram {name} has no le=\"+Inf\" bucket"));
                }
            }
            Ok(())
        };

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            close_family(&current_family, &inf_count)?;
            let name = rest
                .split_whitespace()
                .next()
                .ok_or_else(|| format!("line {n}: HELP without a metric name"))?;
            current_family = Some((name.to_string(), String::new()));
            have_help = true;
            bucket_cum = None;
            inf_count = None;
            families += 1;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {n}: TYPE without a metric name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {n}: TYPE without a type"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown metric type {kind}"));
            }
            match current_family.as_mut() {
                Some((fam, slot)) if fam == name && have_help => *slot = kind.to_string(),
                _ => return Err(format!("line {n}: TYPE {name} without a preceding HELP")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {n}: unrecognised comment {line}"));
        }

        // Sample line: name[{labels}] value
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample without a value: {line}"))?;
        value_part
            .parse::<f64>()
            .map_err(|_| format!("line {n}: non-numeric value {value_part}"))?;
        let (bare, labels) = match name_part.split_once('{') {
            Some((b, l)) => (
                b,
                Some(
                    l.strip_suffix('}')
                        .ok_or_else(|| format!("line {n}: unterminated label set"))?,
                ),
            ),
            None => (name_part, None),
        };
        let Some((fam, kind)) = current_family.as_ref() else {
            return Err(format!("line {n}: sample {bare} before any HELP/TYPE"));
        };
        if kind.is_empty() {
            return Err(format!("line {n}: sample {bare} before its TYPE"));
        }
        let suffix_ok = if kind == "histogram" {
            bare == format!("{fam}_bucket")
                || bare == format!("{fam}_sum")
                || bare == format!("{fam}_count")
        } else {
            bare == fam
        };
        if !suffix_ok {
            return Err(format!(
                "line {n}: sample {bare} does not belong to family {fam}"
            ));
        }
        if bare.ends_with("_bucket") {
            let labels =
                labels.ok_or_else(|| format!("line {n}: _bucket sample without labels"))?;
            let le = labels
                .split(',')
                .find_map(|kv| kv.trim().strip_prefix("le="))
                .ok_or_else(|| format!("line {n}: _bucket sample without an le label"))?
                .trim_matches('"');
            let cum = value_part
                .parse::<u64>()
                .map_err(|_| format!("line {n}: non-integer bucket count"))?;
            if let Some(prev) = bucket_cum {
                if cum < prev {
                    return Err(format!(
                        "line {n}: bucket counts not cumulative ({cum} < {prev})"
                    ));
                }
            }
            bucket_cum = Some(cum);
            if le == "+Inf" {
                inf_count = Some(cum);
            }
        } else if bare.ends_with("_count") && kind == "histogram" {
            let c = value_part
                .parse::<u64>()
                .map_err(|_| format!("line {n}: non-integer _count"))?;
            if let Some(inf) = inf_count {
                if inf != c {
                    return Err(format!("line {n}: _count {c} != le=\"+Inf\" bucket {inf}"));
                }
            }
        }
    }
    close_family(&current_family, &inf_count)?;
    if families == 0 {
        return Err("no metric families found".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_run_exports_valid_prometheus() {
        let m = run(Scale::Quick);
        let text = m.snapshot.to_prometheus(METRICS_PREFIX);
        validate_prometheus(&text).expect("engine snapshot must export cleanly");
        assert!(text.contains("pxgw_pkts_in_total"));
        assert!(text.contains("pxgw_batch_ns_bucket"));
        // The sampler always contributes at least the final sample.
        assert!(!m.series.is_empty());
        let rendered = render(&m, MetricsFormat::Prometheus);
        assert!(!rendered.starts_with("INVALID"));
    }

    #[test]
    fn json_render_includes_time_series() {
        let m = run(Scale::Quick);
        let json = render(&m, MetricsFormat::Json);
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"time_series\""));
        assert!(json.contains("\"interval_bps\""));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_prometheus("").is_err());
        // Sample before HELP/TYPE.
        assert!(validate_prometheus("pxgw_x 1\n").is_err());
        // TYPE without HELP.
        assert!(validate_prometheus("# TYPE pxgw_x counter\npxgw_x 1\n").is_err());
        // Non-numeric value.
        assert!(
            validate_prometheus("# HELP pxgw_x d\n# TYPE pxgw_x counter\npxgw_x abc\n").is_err()
        );
        // Histogram without +Inf.
        assert!(validate_prometheus(
            "# HELP pxgw_h d\n# TYPE pxgw_h histogram\npxgw_h_bucket{le=\"1\"} 1\npxgw_h_sum 1\npxgw_h_count 1\n"
        )
        .is_err());
        // Non-cumulative buckets.
        assert!(validate_prometheus(
            "# HELP pxgw_h d\n# TYPE pxgw_h histogram\npxgw_h_bucket{le=\"1\"} 2\npxgw_h_bucket{le=\"+Inf\"} 1\npxgw_h_sum 1\npxgw_h_count 1\n"
        )
        .is_err());
        // A clean family passes.
        assert!(validate_prometheus("# HELP pxgw_x d\n# TYPE pxgw_x counter\npxgw_x 1\n").is_ok());
    }

    #[test]
    fn live_endpoint_serves_metrics_health_and_trace() {
        // A Parallel run with the live endpoint armed on an ephemeral
        // port: the handle in the report keeps serving from the shared
        // registry after the run, so the smoke test scrapes post-run.
        let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, 2);
        pipe.trace_pkts = 4_000;
        let mut cfg = EngineConfig::new(pipe, EngineMode::Parallel);
        cfg.obs.slo = px_obs::SloSpec::demo();
        cfg.serve_port = Some(0);
        let report = run_engine(cfg);
        let handle = report.serve.as_ref().expect("endpoint must bind port 0");
        let addr = handle.addr();

        let (status, body) = px_obs::http_get(addr, "/metrics").expect("/metrics reachable");
        assert_eq!(status, 200);
        validate_prometheus(&body).expect("scraped exposition must validate");
        assert!(body.contains("pxgw_pkts_in_total"));
        // The adversarial taxonomy (DESIGN.md §17) is always exposed —
        // zero-valued on a clean run, but scrapeable before any attack.
        assert!(body.contains("pxgw_dropped_inconsistent_overlap_total"));
        assert!(body.contains("pxgw_dropped_overlap_evasion_total"));
        assert!(body.contains("pxgw_pmtud_spoof_rejected_total"));
        assert!(body.contains("pxgw_pmtu_floor_clamps_total"));

        // A healthy run under the demo objectives answers 200 with an
        // ok verdict; breaches would flip it to 503.
        let (status, body) = px_obs::http_get(addr, "/healthz").expect("/healthz reachable");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ok\": true"), "{body}");

        let (status, body) = px_obs::http_get(addr, "/trace?flow=1").expect("/trace reachable");
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"traceEvents\": ["), "{body}");
        assert_eq!(body.matches('{').count(), body.matches('}').count());

        let (status, _) = px_obs::http_get(addr, "/nope").expect("unknown route still answers");
        assert_eq!(status, 404);
    }
}
