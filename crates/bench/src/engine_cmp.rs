//! Modeled vs. real: the Fig. 5a/5b sweep driven through the *actual*
//! multi-threaded engine, next to the calibrated pipeline model.
//!
//! The model ([`px_core::pipeline::run_pipeline`]) prices cycles and
//! the memory bus to predict what a 3rd-gen Xeon PXGW forwards
//! (Tbps-scale). The engine ([`px_core::engine::run_engine`]) runs the
//! same trace through the same per-core merge/caravan code on real OS
//! threads and measures wall-clock on *this* host (Gbps-scale, one
//! process, no NIC). The two columns answer different questions; the
//! row-by-row invariant that ties them together is the conversion
//! yield, which both compute from the same steady-state output packets
//! and must agree exactly.

use crate::Scale;
use px_core::engine::{run_engine, EngineConfig, EngineMode};
use px_core::pipeline::{run_pipeline, PipelineConfig, SystemVariant, WorkloadKind};

/// One (workload, cores) comparison row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Workload label ("TCP" / "UDP").
    pub workload: &'static str,
    /// Core count (model cores == engine worker threads).
    pub cores: usize,
    /// Modeled forwarding throughput (calibrated cycle/bus model).
    pub modeled_bps: f64,
    /// Measured single-host throughput of the threaded engine.
    pub measured_bps: f64,
    /// Conversion yield the model reports.
    pub modeled_cy: f64,
    /// Conversion yield the engine measured.
    pub engine_cy: f64,
    /// Steady-state output packets, model.
    pub pkts_out_model: u64,
    /// Steady-state output packets, engine.
    pub pkts_out_engine: u64,
}

/// Runs the PX variant through both the model and the Parallel engine.
pub fn run(scale: Scale) -> Vec<Row> {
    let trace_pkts = match scale {
        Scale::Full => 120_000,
        Scale::Quick => 20_000,
    };
    let mut rows = Vec::new();
    for (label, workload) in [("TCP", WorkloadKind::Tcp), ("UDP", WorkloadKind::Udp)] {
        for cores in [1usize, 2, 4, 8] {
            let mut pipe = PipelineConfig::fig5(SystemVariant::Px, workload, cores);
            pipe.trace_pkts = trace_pkts;
            let model = run_pipeline(pipe);
            let engine = run_engine(EngineConfig::new(pipe, EngineMode::Parallel));
            rows.push(Row {
                workload: label,
                cores,
                modeled_bps: model.throughput_bps,
                measured_bps: engine.throughput_bps,
                modeled_cy: model.conversion_yield,
                engine_cy: engine.conversion_yield,
                pkts_out_model: model.pkts_out,
                pkts_out_engine: engine.totals.pkts_out_inband,
            });
        }
    }
    rows
}

/// Renders the side-by-side table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Engine — modeled PXGW vs real threaded datapath (PX variant, 800 flows)\n");
    out.push_str("  wl  | cores | modeled TP  | this-host TP | model CY | engine CY | agree\n");
    out.push_str("  ----+-------+-------------+--------------+----------+-----------+------\n");
    for r in rows {
        out.push_str(&format!(
            "  {:3} | {:5} | {:>11} | {:>12} | {:>8} | {:>9} | {}\n",
            r.workload,
            r.cores,
            crate::fmt_bps(r.modeled_bps),
            crate::fmt_bps(r.measured_bps),
            crate::pct(r.modeled_cy),
            crate::pct(r.engine_cy),
            if r.pkts_out_model == r.pkts_out_engine {
                "yes"
            } else {
                "NO"
            },
        ));
    }
    out.push_str(
        "  modeled TP prices a calibrated Xeon + memory bus; this-host TP is the\n  \
         engine's wall-clock in this process. Yields come from the same output\n  \
         packets and must agree exactly.",
    );
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_yield_equals_modeled_yield() {
        for r in run(Scale::Quick) {
            assert_eq!(
                r.pkts_out_model, r.pkts_out_engine,
                "{} @{} cores: steady-state output packet counts diverged",
                r.workload, r.cores
            );
            assert!(
                (r.modeled_cy - r.engine_cy).abs() < 1e-12,
                "{} @{} cores: CY {} vs {}",
                r.workload,
                r.cores,
                r.modeled_cy,
                r.engine_cy
            );
            assert!(r.measured_bps > 0.0);
        }
    }
}
