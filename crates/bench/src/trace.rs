//! `figures trace` — a Perfetto-loadable flow-lifecycle trace sample.
//!
//! Runs the Deterministic engine over the Fig. 5 TCP and UDP workloads
//! with span tracing armed, replays every captured merge emission
//! through egress split engines (stamping the producing span's causal
//! link onto the consuming `Split` spans), and renders the combined
//! per-lane span streams as chrome://tracing JSON via
//! [`px_obs::perfetto_json`].
//!
//! Deterministic mode means the exported trace is bit-identical across
//! reruns — the committed `TRACE_sample.json` regenerates exactly.
//!
//! Lane layout in the export: lanes `0..cores` are the TCP merge-side
//! cores, `cores..2*cores` the egress split engines consuming their
//! jumbos, `2*cores..3*cores` the UDP caravan cores.

use crate::Scale;
use px_core::engine::{run_engine, EngineConfig, EngineMode, EngineReport};
use px_core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
use px_core::split::SplitEngine;
use px_obs::{perfetto_json, ObsConfig, SloSpec, Span, SpanCat};
use px_wire::PacketBuf;

/// Gateway cores per leg (merge-side lanes; the split and caravan legs
/// mirror it).
pub const CORES: usize = 4;

/// The outcome of a trace run: the Perfetto JSON plus the span census
/// the renderer and CI gates assert against.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// The full Perfetto / chrome://tracing JSON document.
    pub json: String,
    /// Distinct span categories present, in [`SpanCat`] order.
    pub categories: Vec<&'static str>,
    /// Spans exported across every lane.
    pub spans_total: usize,
    /// TCP merge-emission spans (each carries a causal link id).
    pub merge_spans: usize,
    /// UDP caravan-emission spans.
    pub caravan_spans: usize,
    /// Egress split spans produced by replaying captured jumbos.
    pub split_spans: usize,
    /// Split spans whose link matches a producing merge span.
    pub linked_splits: usize,
    /// Lanes in the export.
    pub lanes: usize,
}

/// Span-tracing configuration for the trace legs: a ring big enough to
/// hold every span of the run (the census below assumes nothing was
/// overwritten) and the demo SLO armed so watchdog alerts would appear
/// as `slo` spans if an objective tripped.
fn obs_cfg() -> ObsConfig {
    ObsConfig {
        span_capacity: 1 << 16,
        slo: SloSpec::demo(),
        ..ObsConfig::default()
    }
}

fn leg(workload: WorkloadKind, trace_pkts: usize, capture: bool) -> EngineReport {
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, workload, CORES);
    pipe.trace_pkts = trace_pkts;
    let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
    cfg.capture_output = capture;
    cfg.obs = obs_cfg();
    run_engine(cfg)
}

/// Runs both legs, replays captured jumbos through split engines, and
/// assembles the Perfetto export.
pub fn run(scale: Scale) -> TraceRun {
    let trace_pkts = match scale {
        Scale::Full => 1_600,
        Scale::Quick => 320,
    };

    // Leg 1 — TCP: merge-side spans plus every emitted packet, captured
    // in core order so output[i] pairs with that core's i-th Merge span
    // (the Fig. 5 config steers nothing: every emission is a merge
    // emission and records exactly one Merge span).
    let tcp = leg(WorkloadKind::Tcp, trace_pkts, true);
    let emtu = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, CORES).emtu;
    let mut lanes: Vec<Vec<Span>> = tcp.obs.per_core_spans.clone();
    let mut captured = tcp.captured_output.iter();
    let mut split_lanes: Vec<Vec<Span>> = Vec::with_capacity(CORES);
    for spans in &tcp.obs.per_core_spans {
        let mut split = SplitEngine::new(emtu);
        split.enable_obs(obs_cfg());
        for sp in spans.iter().filter(|s| s.cat == SpanCat::Merge) {
            let jumbo = captured
                .next()
                .expect("every Merge span pairs with one captured emission");
            split.set_span_link(sp.link);
            let mut sink = |b: PacketBuf| Some(b);
            split.push_into(jumbo, &mut sink);
        }
        split_lanes.push(split.obs.recent_spans(usize::MAX));
    }
    assert!(
        captured.next().is_none(),
        "captured outputs must be exhausted by the per-core Merge spans"
    );
    lanes.extend(split_lanes);

    // Leg 2 — UDP: caravan-side spans (classify + bundle fill windows).
    let udp = leg(WorkloadKind::Udp, trace_pkts, false);
    lanes.extend(udp.obs.per_core_spans.clone());

    // Census over the assembled lanes.
    let merge_links: std::collections::HashSet<u64> = lanes
        .iter()
        .flatten()
        .filter(|s| s.cat == SpanCat::Merge)
        .map(|s| s.link)
        .collect();
    let count = |cat: SpanCat| lanes.iter().flatten().filter(|s| s.cat == cat).count();
    let merge_spans = count(SpanCat::Merge);
    let caravan_spans = count(SpanCat::Caravan);
    let split_spans = count(SpanCat::Split);
    let linked_splits = lanes
        .iter()
        .flatten()
        .filter(|s| s.cat == SpanCat::Split && merge_links.contains(&s.link))
        .count();
    let all_cats = [
        SpanCat::Classify,
        SpanCat::Steer,
        SpanCat::Merge,
        SpanCat::Caravan,
        SpanCat::Split,
        SpanCat::Evict,
        SpanCat::Degrade,
        SpanCat::Restart,
        SpanCat::Slo,
    ];
    let categories: Vec<&'static str> = all_cats
        .iter()
        .filter(|c| count(**c) > 0)
        .map(|c| c.name())
        .collect();
    let spans_total = lanes.iter().map(Vec::len).sum();

    TraceRun {
        json: perfetto_json(&lanes, None),
        categories,
        spans_total,
        merge_spans,
        caravan_spans,
        split_spans,
        linked_splits,
        lanes: lanes.len(),
    }
}

/// Renders the trace census (the JSON itself is written to disk by the
/// `figures` binary).
pub fn render(r: &TraceRun) -> String {
    let mut s = String::new();
    s.push_str("Flow-lifecycle trace sample (Perfetto JSON)\n");
    s.push_str(&format!(
        "  lanes: {}   spans: {}   bytes: {}\n",
        r.lanes,
        r.spans_total,
        r.json.len()
    ));
    s.push_str(&format!("  categories: {}\n", r.categories.join(", ")));
    s.push_str(&format!(
        "  merge emissions: {}   caravan bundles: {}   split emissions: {} ({} causally linked)\n",
        r.merge_spans, r.caravan_spans, r.split_spans, r.linked_splits
    ));
    s.push_str("  load in https://ui.perfetto.dev or chrome://tracing\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_sample_has_linked_lifecycle_categories() {
        let t = run(Scale::Quick);
        // ≥ 4 distinct categories — the ISSUE acceptance floor.
        assert!(
            t.categories.len() >= 4,
            "expected ≥4 span categories, got {:?}",
            t.categories
        );
        for want in ["classify", "merge", "caravan", "split"] {
            assert!(
                t.categories.contains(&want),
                "missing {want}: {:?}",
                t.categories
            );
        }
        assert!(t.merge_spans > 0);
        assert!(t.caravan_spans > 0);
        // Every split span descends from a captured merge emission.
        assert!(t.split_spans > 0);
        assert_eq!(t.linked_splits, t.split_spans);
        assert_eq!(t.lanes, 3 * CORES);
        // Cheap well-formedness: balanced structure, correct envelope.
        assert!(t.json.starts_with("{\"traceEvents\": ["));
        assert_eq!(t.json.matches('{').count(), t.json.matches('}').count());
        assert_eq!(t.json.matches('[').count(), t.json.matches(']').count());
        let render = render(&t);
        assert!(render.contains("causally linked"));
    }

    #[test]
    fn trace_export_is_deterministic() {
        // Deterministic mode + logical-time spans: regenerating the
        // sample must be byte-identical.
        let a = run(Scale::Quick);
        let b = run(Scale::Quick);
        assert_eq!(a.json, b.json);
    }
}
