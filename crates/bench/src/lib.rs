//! # px-bench — the figure/table regeneration harness
//!
//! One module per table/figure in the paper's evaluation. Each module
//! exposes `run(scale)` returning structured rows, and `render(&rows)`
//! printing the same table the paper reports. The `figures` binary ties
//! them together:
//!
//! ```text
//! cargo run --release -p px-bench --bin figures            # everything
//! cargo run --release -p px-bench --bin figures fig5a      # one figure
//! ```
//!
//! [`Scale`] trades fidelity for wall-clock: `Full` reproduces the
//! paper's parameters (389k survey servers, 30 s WAN flows, 120k-packet
//! gateway traces); `Quick` shrinks everything for CI and Criterion.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine_cmp;
pub mod fairness;
pub mod fig1a;
pub mod fig1b;
pub mod fig1c;
pub mod fig1d;
pub mod fig5a;
pub mod fig5b;
pub mod fig5c;
pub mod flow_scale;
pub mod fpmtud;
pub mod json_report;
pub mod metrics;
pub mod sender;
pub mod single_core;
pub mod summary;
pub mod survey;
pub mod table1;
pub mod trace;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters (minutes of wall-clock for the WAN sims).
    Full,
    /// Reduced parameters for tests and Criterion (seconds).
    Quick,
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats bits/sec the way the paper does.
pub use px_sim::stats::fmt_bps;
