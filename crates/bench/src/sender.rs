//! §5.2 "Sender in a b-network" — the incremental-upgrade headline.
//!
//! Only the *sender's* network upgrades to the 9 KB iMTU; the receiver
//! stays legacy. PXGW raises the MSS the receiver advertises and splits
//! the sender's jumbo segments back to 1500 B for the WAN (10 ms delay,
//! 0.01% loss). Paper: TCP throughput increases by 2.5×.
//!
//! The mechanism is pure TCP dynamics: the sender's cwnd grows in 9 KB
//! units while losses still strike per 1500 B wire packet — Mathis gives
//! a √(9000/1500) ≈ 2.45× gain, which the event simulation reproduces
//! with no cost model involved.

use crate::Scale;
use px_core::gateway::{GatewayConfig, PxGateway, EXTERNAL_PORT, INTERNAL_PORT};
use px_sim::link::LinkConfig;
use px_sim::netem::Netem;
use px_sim::network::Network;
use px_sim::node::PortId;
use px_sim::Nanos;
use px_tcp::conn::ConnConfig;
use px_tcp::host::{Host, HostConfig};
use std::net::Ipv4Addr;

const SENDER: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1); // inside the b-network
const RECEIVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 2); // legacy WAN

/// One configuration row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The b-network's iMTU (1500 = no upgrade, the baseline).
    pub imtu: usize,
    /// Average goodput, bits/sec.
    pub throughput_bps: f64,
    /// Ratio over the 1500 B baseline.
    pub ratio: f64,
    /// The MSS the sender ended up using (9000-iMTU ⇒ 8960 via PXGW).
    pub sender_mss: usize,
}

/// Runs one sender-side configuration, averaged over seeds.
pub fn run_one(imtu: usize, duration: Nanos, seeds: &[u64]) -> (f64, usize) {
    let mut total_bps = 0.0;
    let mut mss = 0;
    for &seed in seeds {
        let mut net = Network::new(seed);
        let sender = net.add_node(Host::new(HostConfig::new(SENDER, imtu)));
        let gw = net.add_node(PxGateway::new(GatewayConfig {
            imtu,
            emtu: 1500,
            steer: None,
            ..Default::default()
        }));
        let receiver = net.add_node(Host::new(HostConfig::new(RECEIVER, 1500)));
        // Clean jumbo link inside the b-network.
        net.connect(
            (sender, PortId(0)),
            (gw, INTERNAL_PORT),
            LinkConfig::new(100_000_000_000, Nanos::from_micros(20), imtu),
        );
        // The legacy WAN: 10 ms one-way delay, 0.01% loss, netem's
        // default 1000-packet router buffer.
        net.connect(
            (gw, EXTERNAL_PORT),
            (receiver, PortId(0)),
            LinkConfig::new(100_000_000_000, Nanos::ZERO, 1500)
                .with_netem(Netem::paper_wan())
                .with_queue(1000 * 1500),
        );
        net.node_mut::<Host>(receiver)
            .listen(5201, ConnConfig::new((RECEIVER, 5201), (SENDER, 0), 1500));
        net.node_mut::<Host>(sender).connect_at(
            0,
            ConnConfig::new((SENDER, 40000), (RECEIVER, 5201), imtu).sending(u64::MAX),
            Some(duration.0),
        );
        net.run_until(duration + Nanos::from_secs(1));
        let r = net.node_ref::<Host>(receiver);
        let st = &r.tcp_stats()[0];
        assert_eq!(st.integrity_errors, 0, "split corrupted the stream");
        total_bps += st.bytes_received as f64 * 8.0 / duration.as_secs_f64();
        mss = net.node_ref::<Host>(sender).tcp_stats()[0].effective_mss;
    }
    (total_bps / seeds.len() as f64, mss)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Row> {
    let (duration, seeds): (Nanos, &[u64]) = match scale {
        Scale::Full => (Nanos::from_secs(60), &[1, 2, 3]),
        Scale::Quick => (Nanos::from_secs(8), &[1, 2]),
    };
    let (base_bps, base_mss) = run_one(1500, duration, seeds);
    let (jumbo_bps, jumbo_mss) = run_one(9000, duration, seeds);
    vec![
        Row {
            imtu: 1500,
            throughput_bps: base_bps,
            ratio: 1.0,
            sender_mss: base_mss,
        },
        Row {
            imtu: 9000,
            throughput_bps: jumbo_bps,
            ratio: jumbo_bps / base_bps,
            sender_mss: jumbo_mss,
        },
    ]
}

/// Renders the paper-style table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("§5.2 sender-in-b-network — WAN TCP throughput (10 ms, 0.01% loss)\n");
    out.push_str("  b-network iMTU | sender MSS | throughput | vs legacy\n");
    out.push_str("  ---------------+------------+------------+----------\n");
    for r in rows {
        out.push_str(&format!(
            "  {:14} | {:10} | {:>10} | {:.2}x\n",
            r.imtu,
            r.sender_mss,
            crate::fmt_bps(r.throughput_bps),
            r.ratio
        ));
    }
    out.push_str("  paper: 2.5x from upgrading only the sender network\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_sender_gain() {
        let rows = run(Scale::Quick);
        let jumbo = &rows[1];
        assert_eq!(jumbo.sender_mss, 8960, "PXGW raised the advertised MSS");
        assert!(
            jumbo.ratio > 1.6 && jumbo.ratio < 3.6,
            "sender-side gain {} (paper: 2.5x, Mathis: 2.45x)",
            jumbo.ratio
        );
    }
}
