//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures [--quick] [exp ...]
//! ```
//!
//! With no experiment names, runs everything. Experiments: fig1a fig1b
//! fig1c fig1d table1 fig5a fig5b fig5c sender fpmtud survey summary.

use px_bench::Scale;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every allocation so the `json` experiment can report
/// steady-state allocations-per-packet for the gateway hot loops. One
/// relaxed atomic increment per alloc — negligible next to the
/// allocation itself, so the other experiments are unaffected.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the only extra work is a
// relaxed atomic increment, which cannot violate any allocator invariant.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: `ptr` was produced by `System.alloc` above with the same
    // layout, so handing it back to `System.dealloc` is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same provenance argument as `dealloc`; `System.realloc`
    // upholds the GlobalAlloc contract for the returned pointer.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_so_far() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Runs the machine-readable benchmark record and writes
/// `BENCH_engine.json` into the current directory.
fn run_json(scale: Scale) -> String {
    let hot = px_bench::json_report::measure_hot_loops(scale, allocs_so_far);
    let engine = px_bench::json_report::measure_engine(scale);
    let flow_scale = px_bench::flow_scale::run(scale);
    let single_core = px_bench::single_core::run(scale);
    let obs = px_bench::json_report::measure_observability(scale);
    let tracing = px_bench::json_report::measure_tracing(scale);
    let robust = px_bench::json_report::measure_robustness(scale);
    let adversarial = px_bench::json_report::measure_adversarial(scale);
    let json = px_bench::json_report::render(
        scale,
        &hot,
        &engine,
        &flow_scale,
        &single_core,
        &obs,
        &tracing,
        &robust,
        &adversarial,
    );
    let path = "BENCH_engine.json";
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    format!("{json}  [written to {path}]")
}

/// Runs the flow-lifecycle trace sample and writes the Perfetto JSON to
/// `TRACE_sample.json` in the current directory.
fn run_trace(scale: Scale) -> String {
    let t = px_bench::trace::run(scale);
    let path = "TRACE_sample.json";
    std::fs::write(path, &t.json).expect("write TRACE_sample.json");
    format!("{}  [written to {path}]", px_bench::trace::render(&t))
}

/// Runs a Parallel engine with the live endpoint armed, self-scrapes
/// `/metrics`, `/healthz`, and `/trace`, and — when `PX_SERVE_SECS` is
/// set — keeps the endpoint up that long for external scrapers.
fn run_serve(scale: Scale) -> String {
    use px_core::engine::{run_engine, EngineConfig, EngineMode};
    use px_core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
    let trace_pkts = match scale {
        Scale::Full => 120_000,
        Scale::Quick => 20_000,
    };
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, 4);
    pipe.trace_pkts = trace_pkts;
    let mut cfg = EngineConfig::new(pipe, EngineMode::Parallel);
    cfg.obs.slo = px_obs::SloSpec::demo();
    cfg.serve_port = Some(0);
    let report = run_engine(cfg);
    let Some(handle) = report.serve.as_ref() else {
        return "live endpoint failed to bind (serve_port was set but no handle came back)".into();
    };
    let addr = handle.addr();
    let mut s = format!("live endpoint at http://{addr}\n");
    for path in ["/metrics", "/healthz", "/trace"] {
        match px_obs::http_get(addr, path) {
            Ok((status, body)) => {
                s.push_str(&format!(
                    "  GET {path} -> {status} ({} bytes)\n",
                    body.len()
                ));
            }
            Err(e) => s.push_str(&format!("  GET {path} -> error: {e}\n")),
        }
    }
    let hold = std::env::var("PX_SERVE_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    if hold > 0 {
        s.push_str(&format!(
            "  holding the endpoint open for {hold}s (PX_SERVE_SECS) — scrape away\n"
        ));
        std::thread::sleep(std::time::Duration::from_secs(hold));
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "figures — regenerate the paper's tables and figures\n\n             USAGE: figures [--quick] [EXPERIMENT ...]\n\n             EXPERIMENTS:\n               fig1a    5G UPF throughput vs MTU\n               fig1b    single-flow RX offload matrix\n               fig1c    RX throughput vs concurrent flows\n               fig1d    WAN single-flow TCP (full simulation)\n               table1   server CPU: 1x9000B vs 6x1500B connections\n               fig5a    PXGW TCP throughput / conversion yield\n               fig5b    PXGW UDP (PX-caravan)\n               fig5c    b-network receiver throughput\n               engine   modeled PXGW vs real threaded datapath\n               single_core  checksum kernels, batch parse, SG split (1-core raw speed)\n               json     machine-readable engine + hot-path record (writes BENCH_engine.json)\n               metrics  Prometheus/JSON metrics export from a live engine run (--format prometheus|json)\n               trace    flow-lifecycle span trace, Perfetto JSON (writes TRACE_sample.json)\n               serve    live HTTP endpoint (/metrics /healthz /trace) from a Parallel run; PX_SERVE_SECS holds it open\n               sender   §5.2 sender-only upgrade over the WAN\n               fpmtud   §5.3 F-PMTUD vs PLPMTUD pairwise probing\n               survey   §5.3 fragment-delivery survey\n               fairness extension: MTU-mix bottleneck sharing (§6)\n               summary  every headline number, paper vs measured\n\n             With no experiment names, everything runs. --quick shrinks\n             workloads for CI."
        );
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    // `--format <prometheus|json>` selects the `metrics` output format;
    // strip the pair before experiment-name filtering.
    let mut format = px_bench::metrics::MetricsFormat::Prometheus;
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--format" {
            match it.next().map(String::as_str) {
                Some("prometheus") => format = px_bench::metrics::MetricsFormat::Prometheus,
                Some("json") => format = px_bench::metrics::MetricsFormat::Json,
                other => {
                    eprintln!(
                        "--format expects 'prometheus' or 'json', got {:?}",
                        other.unwrap_or("<nothing>")
                    );
                    std::process::exit(2);
                }
            }
        } else if !a.starts_with("--") {
            positional.push(a.as_str());
        }
    }
    let selected = positional;
    let all = [
        "fig1a",
        "fig1b",
        "fig1c",
        "fig1d",
        "table1",
        "fig5a",
        "fig5b",
        "fig5c",
        "engine",
        "single_core",
        "sender",
        "fpmtud",
        "survey",
        "fairness",
        "summary",
    ];
    let run_list: Vec<&str> = if selected.is_empty() {
        all.to_vec()
    } else {
        selected
    };

    println!("PacketExpress figure harness — scale: {:?}\n", scale);
    for name in run_list {
        let t0 = Instant::now();
        let table = match name {
            "fig1a" => px_bench::fig1a::render(&px_bench::fig1a::run(scale)),
            "fig1b" => px_bench::fig1b::render(&px_bench::fig1b::run(scale)),
            "fig1c" => px_bench::fig1c::render(&px_bench::fig1c::run(scale)),
            "fig1d" => px_bench::fig1d::render(&px_bench::fig1d::run(scale)),
            "table1" => px_bench::table1::render(&px_bench::table1::run(scale)),
            "fig5a" => px_bench::fig5a::render(&px_bench::fig5a::run(scale)),
            "fig5b" => px_bench::fig5b::render(&px_bench::fig5b::run(scale)),
            "fig5c" => {
                let (rows, udp) = px_bench::fig5c::run(scale);
                px_bench::fig5c::render(&rows, &udp)
            }
            "engine" => px_bench::engine_cmp::render(&px_bench::engine_cmp::run(scale)),
            "single_core" => px_bench::single_core::render(&px_bench::single_core::run(scale)),
            "json" => run_json(scale),
            "metrics" => px_bench::metrics::render(&px_bench::metrics::run(scale), format),
            "trace" => run_trace(scale),
            "serve" => run_serve(scale),
            "sender" => px_bench::sender::render(&px_bench::sender::run(scale)),
            "fpmtud" => px_bench::fpmtud::render(&px_bench::fpmtud::run(scale)),
            "survey" => px_bench::survey::render(&px_bench::survey::run(scale)),
            "fairness" => px_bench::fairness::render(&px_bench::fairness::run(scale)),
            "summary" => px_bench::summary::render(&px_bench::summary::run(scale)),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        println!("{table}");
        println!("  [{name} took {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}
