//! Extension experiment — the paper's §6 open question:
//!
//! > "Does a large MTU affect network congestion and how do we ensure
//! > fair bandwidth allocation in the mix of small and large-MTU
//! > senders?"
//!
//! We run N legacy (1500 B MSS) and N jumbo (9000 B MSS via PXGW) flows
//! through one shared bottleneck and measure the bandwidth split and
//! Jain's fairness index. Loss-based congestion control grows cwnd in
//! MSS units, so jumbo senders are expected to take a super-proportional
//! share — quantifying exactly how regressive the mix is (and therefore
//! how much a deployment would need pacing/AQM to compensate).

use crate::Scale;
use px_core::gateway::{GatewayConfig, PxGateway, EXTERNAL_PORT, INTERNAL_PORT};
use px_sim::link::LinkConfig;
use px_sim::netem::Netem;
use px_sim::network::Network;
use px_sim::node::PortId;
use px_sim::router::Router;
use px_sim::Nanos;
use px_tcp::conn::ConnConfig;
use px_tcp::host::{Host, HostConfig};
use std::net::Ipv4Addr;

const LEGACY_NET: [u8; 2] = [10, 3];
const JUMBO_NET: [u8; 2] = [10, 1];
const SINK_NET: [u8; 2] = [198, 51];

/// Result of one fairness run.
#[derive(Debug, Clone)]
pub struct FairnessReport {
    /// Flows per class.
    pub flows_per_class: usize,
    /// Per-flow goodput of the legacy (1500 B) class, bits/sec.
    pub legacy_flow_bps: Vec<f64>,
    /// Per-flow goodput of the jumbo (9 KB, PXGW-translated) class.
    pub jumbo_flow_bps: Vec<f64>,
    /// Share of the aggregate taken by the jumbo class.
    pub jumbo_share: f64,
    /// Jain's fairness index over all flows (1.0 = perfectly fair).
    pub jain_index: f64,
}

/// Jain's fairness index: (Σx)² / (n·Σx²).
pub fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    sum * sum / (xs.len() as f64 * sq)
}

/// Runs `n` legacy + `n` jumbo flows into one receiver behind a shared
/// bottleneck. The jumbo senders live in a b-network behind a PXGW; the
/// legacy senders connect directly. All flows share the bottleneck
/// router's egress link and queue.
pub fn run_mix(n: usize, bottleneck_bps: u64, duration: Nanos, seed: u64) -> FairnessReport {
    let mut net = Network::new(seed);
    let legacy_host = net.add_node(Host::new(HostConfig::new(
        Ipv4Addr::new(LEGACY_NET[0], LEGACY_NET[1], 0, 1),
        1500,
    )));
    let jumbo_host = net.add_node(Host::new(HostConfig::new(
        Ipv4Addr::new(JUMBO_NET[0], JUMBO_NET[1], 0, 1),
        9000,
    )));
    let gw = net.add_node(PxGateway::new(GatewayConfig {
        steer: None,
        ..Default::default()
    }));
    let sink = net.add_node(Host::new(HostConfig::new(
        Ipv4Addr::new(SINK_NET[0], SINK_NET[1], 0, 2),
        1500,
    )));
    // Bottleneck router: port 0 = legacy senders, 1 = gateway (jumbo
    // senders), 2 = shared egress towards the sink.
    let mut router = Router::new(Ipv4Addr::new(10, 254, 0, 1), vec![1500, 1500, 1500]);
    router.add_route(
        Ipv4Addr::new(LEGACY_NET[0], LEGACY_NET[1], 0, 0),
        16,
        PortId(0),
    );
    router.add_route(
        Ipv4Addr::new(JUMBO_NET[0], JUMBO_NET[1], 0, 0),
        16,
        PortId(1),
    );
    router.add_route(Ipv4Addr::new(SINK_NET[0], SINK_NET[1], 0, 0), 16, PortId(2));
    let rt = net.add_node(router);

    let fast = |mtu| LinkConfig::new(10_000_000_000, Nanos::from_micros(50), mtu);
    net.connect((legacy_host, PortId(0)), (rt, PortId(0)), fast(1500));
    net.connect((jumbo_host, PortId(0)), (gw, INTERNAL_PORT), fast(9000));
    net.connect((gw, EXTERNAL_PORT), (rt, PortId(1)), fast(1500));
    // The shared bottleneck: finite rate, WAN delay, droptail queue.
    net.connect(
        (rt, PortId(2)),
        (sink, PortId(0)),
        LinkConfig::new(bottleneck_bps, Nanos::from_millis(5), 1500)
            .with_netem(Netem::delay(Nanos::from_millis(5)))
            .with_queue(256 * 1500),
    );

    let sink_addr = Ipv4Addr::new(SINK_NET[0], SINK_NET[1], 0, 2);
    for i in 0..n as u16 {
        net.node_mut::<Host>(sink).listen(
            8000 + i,
            ConnConfig::new((sink_addr, 8000 + i), (Ipv4Addr::UNSPECIFIED, 0), 1500),
        );
        net.node_mut::<Host>(sink).listen(
            9000 + i,
            ConnConfig::new((sink_addr, 9000 + i), (Ipv4Addr::UNSPECIFIED, 0), 1500),
        );
        net.node_mut::<Host>(legacy_host).connect_at(
            (i as u64) * 500_000,
            ConnConfig::new(
                (Ipv4Addr::new(LEGACY_NET[0], LEGACY_NET[1], 0, 1), 20000 + i),
                (sink_addr, 8000 + i),
                1500,
            )
            .sending(u64::MAX),
            Some(duration.0),
        );
        net.node_mut::<Host>(jumbo_host).connect_at(
            (i as u64) * 500_000 + 250_000,
            ConnConfig::new(
                (Ipv4Addr::new(JUMBO_NET[0], JUMBO_NET[1], 0, 1), 20000 + i),
                (sink_addr, 9000 + i),
                9000,
            )
            .sending(u64::MAX),
            Some(duration.0),
        );
    }
    net.run_until(duration + Nanos::from_secs(1));

    let stats = net.node_ref::<Host>(sink).tcp_stats();
    let secs = duration.as_secs_f64();
    let mut legacy_flow_bps = Vec::new();
    let mut jumbo_flow_bps = Vec::new();
    for st in &stats {
        assert_eq!(st.integrity_errors, 0);
        let bps = st.bytes_received as f64 * 8.0 / secs;
        if (8000..9000).contains(&st.local_port) {
            legacy_flow_bps.push(bps);
        } else {
            jumbo_flow_bps.push(bps);
        }
    }
    let lsum: f64 = legacy_flow_bps.iter().sum();
    let jsum: f64 = jumbo_flow_bps.iter().sum();
    let all: Vec<f64> = legacy_flow_bps
        .iter()
        .chain(&jumbo_flow_bps)
        .copied()
        .collect();
    FairnessReport {
        flows_per_class: n,
        legacy_flow_bps,
        jumbo_flow_bps,
        jumbo_share: jsum / (jsum + lsum),
        jain_index: jain(&all),
    }
}

/// Runs the fairness sweep.
pub fn run(scale: Scale) -> Vec<FairnessReport> {
    let (duration, counts): (Nanos, &[usize]) = match scale {
        Scale::Full => (Nanos::from_secs(30), &[1, 2, 4]),
        Scale::Quick => (Nanos::from_secs(10), &[2]),
    };
    counts
        .iter()
        .map(|&n| run_mix(n, 1_000_000_000, duration, 71 + n as u64))
        .collect()
}

/// Renders the report.
pub fn render(rows: &[FairnessReport]) -> String {
    let mut out = String::new();
    out.push_str("Extension — MTU-mix fairness at a shared 1 Gbps bottleneck (§6 open question)\n");
    out.push_str("  flows/class | legacy avg  | jumbo avg   | jumbo share | Jain\n");
    out.push_str("  ------------+-------------+-------------+-------------+------\n");
    for r in rows {
        let lavg = r.legacy_flow_bps.iter().sum::<f64>() / r.legacy_flow_bps.len().max(1) as f64;
        let javg = r.jumbo_flow_bps.iter().sum::<f64>() / r.jumbo_flow_bps.len().max(1) as f64;
        out.push_str(&format!(
            "  {:11} | {:>11} | {:>11} | {:10.1}% | {:.2}\n",
            r.flows_per_class,
            crate::fmt_bps(lavg),
            crate::fmt_bps(javg),
            100.0 * r.jumbo_share,
            r.jain_index
        ));
    }
    out.push_str(
        "  (not in the paper: quantifies its §6 concern — loss-based cc favours large-MSS flows)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_properties() {
        assert!((jain(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(jain(&[1.0, 0.0, 0.0]) < 0.34);
        assert!((jain(&[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jumbo_senders_take_a_superproportional_share() {
        let rows = run(Scale::Quick);
        let r = &rows[0];
        assert_eq!(r.legacy_flow_bps.len(), r.flows_per_class);
        assert_eq!(r.jumbo_flow_bps.len(), r.flows_per_class);
        // Everyone got something; the link is shared.
        assert!(r.legacy_flow_bps.iter().all(|&b| b > 1e6));
        assert!(r.jumbo_flow_bps.iter().all(|&b| b > 1e6));
        // The paper's concern materialises: jumbo flows beat their fair
        // 50% share, and overall fairness is visibly imperfect.
        assert!(
            r.jumbo_share > 0.55,
            "jumbo share {} should exceed fair share",
            r.jumbo_share
        );
        assert!(r.jain_index < 0.999, "mix cannot be perfectly fair");
        // Utilisation sanity: the bottleneck is actually saturated-ish.
        let total: f64 = r.legacy_flow_bps.iter().chain(&r.jumbo_flow_bps).sum();
        assert!(total > 0.5e9, "aggregate {total}");
    }
}
