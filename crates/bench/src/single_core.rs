//! Raw per-core speed: the PR-7 record behind `single_core_speed` in
//! `BENCH_engine.json`.
//!
//! Three layers, measured on one core of this host:
//!
//! * **checksum kernels** — MiB/s of [`px_wire::checksum`]'s scalar,
//!   u64-wide, SSE2, and AVX2 implementations over wire-MTU and jumbo
//!   buffers;
//! * **engine matrix** — the 1-core Parallel TCP datapath swept over
//!   {kernel × batch-parse on/off}, digests off (raw speed, not the
//!   correctness spine);
//! * **split emission** — the copying TSO splitter vs the zero-copy
//!   scatter-gather path, MiB/s of jumbo input bytes.
//!
//! The headline `speedup()` compares the pre-PR-7 shape (u64 kernel,
//! per-packet parsing) against the tuned shape (best SIMD kernel,
//! batch-front parsing) on the identical 1-core trace.

use crate::Scale;
use px_core::engine::{run_engine, EngineConfig, EngineMode};
use px_core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
use px_core::split::SplitEngine;
use px_wire::checksum::{self, Kernel};
use px_wire::ipv4::Ipv4Repr;
use px_wire::pool::{PacketSink, SgPacket};
use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr};
use px_wire::{IpProtocol, PacketBuf};
use std::net::Ipv4Addr;
use std::time::Instant;

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const MIB: f64 = 1024.0 * 1024.0;

/// One checksum kernel's measured rate.
#[derive(Debug, Clone, Copy)]
pub struct KernelRow {
    /// Kernel label (`PX_CHECKSUM_FORCE` vocabulary).
    pub kernel: &'static str,
    /// Whether this CPU can run it natively (a forced unavailable
    /// kernel degrades to the best available, so its rate is still
    /// meaningful — just not *its* rate).
    pub available: bool,
    /// MiB/s over 1480 B buffers (wire-MTU payload shape).
    pub mib_s_mtu: f64,
    /// MiB/s over 8960 B buffers (jumbo payload shape).
    pub mib_s_jumbo: f64,
}

/// One {kernel × batch-parse} engine measurement.
#[derive(Debug, Clone, Copy)]
pub struct EngineSpeedRow {
    /// Forced checksum kernel for the run.
    pub kernel: &'static str,
    /// Batch-front classification on?
    pub batch_parse: bool,
    /// Best-of-N 1-core throughput (input bits/s).
    pub throughput_bps: f64,
}

/// One split-emission mode measurement.
#[derive(Debug, Clone, Copy)]
pub struct SplitSpeedRow {
    /// "flat" (copying splitter) or "sg" (scatter-gather views).
    pub mode: &'static str,
    /// MiB/s of jumbo input bytes pushed through the splitter.
    pub mib_s: f64,
}

/// The full single-core speed record.
#[derive(Debug, Clone)]
pub struct SingleCore {
    /// Per-kernel checksum rates.
    pub kernels: Vec<KernelRow>,
    /// The {kernel × batch-parse} engine matrix.
    pub engine: Vec<EngineSpeedRow>,
    /// Split emission: flat vs scatter-gather.
    pub split: Vec<SplitSpeedRow>,
    /// 1-core throughput in the exact shape `bench_engine_scaling`
    /// measured at PR 6: u64 kernel, per-packet parsing, and per-flow
    /// digests on (the old bench left the FNV byte walk in the loop).
    pub before_bps: f64,
    /// 1-core throughput in the tuned shape the bench measures now:
    /// best available kernel, batch-front parsing, digests off.
    pub after_bps: f64,
    /// The datapath-only comparison (digests off on BOTH sides): u64 +
    /// per-packet parsing vs best kernel + batch parsing. Separating
    /// this from `speedup()` keeps the record honest about how much of
    /// the headline comes from no longer timing the digest harness.
    pub datapath_speedup: f64,
}

impl SingleCore {
    /// Tuned ÷ baseline single-core throughput, as `bench_engine_scaling`
    /// records it (PR-6 bench shape → PR-7 bench shape).
    pub fn speedup(&self) -> f64 {
        if self.before_bps <= 0.0 {
            return 0.0;
        }
        self.after_bps / self.before_bps
    }

    /// Best jumbo-buffer checksum rate ÷ the u64 kernel's — the
    /// kernel-level win in isolation.
    pub fn kernel_speedup(&self) -> f64 {
        let rate = |name: &str| {
            self.kernels
                .iter()
                .find(|k| k.kernel == name)
                .map_or(0.0, |k| k.mib_s_jumbo)
        };
        let base = rate("u64");
        let best = self
            .kernels
            .iter()
            .filter(|k| k.available)
            .map(|k| k.mib_s_jumbo)
            .fold(0.0f64, f64::max);
        if base <= 0.0 {
            0.0
        } else {
            best / base
        }
    }
}

fn tcp_jumbo(len: usize) -> Vec<u8> {
    let payload: Vec<u8> = (0..len).map(|j| ((j * 13 + 7) % 251) as u8).collect();
    let repr = TcpRepr {
        src_port: 6000,
        dst_port: 80,
        seq: SeqNum(1),
        ack: SeqNum(1),
        flags: TcpFlags::ACK,
        window: 2048,
        options: vec![],
    };
    let seg = repr.build_segment(SRC, DST, &payload);
    Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
        .build_packet(&seg)
        .unwrap_or_default()
}

/// Times `f` over `reps` repetitions and returns the best MiB/s given
/// `bytes` of work per repetition.
fn best_mib_s(reps: usize, bytes: usize, mut f: impl FnMut()) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        best = best.max(bytes as f64 / MIB / dt);
    }
    best
}

/// Measures every checksum kernel over MTU-sized and jumbo buffers.
pub fn measure_kernels(scale: Scale) -> Vec<KernelRow> {
    let iters = match scale {
        Scale::Full => 20_000usize,
        Scale::Quick => 1_000,
    };
    let mtu_buf: Vec<u8> = (0..1480u32)
        .map(|i| (i.wrapping_mul(131) >> 1) as u8)
        .collect();
    let jumbo_buf: Vec<u8> = (0..8960u32)
        .map(|i| (i.wrapping_mul(193) >> 1) as u8)
        .collect();
    Kernel::ALL
        .iter()
        .map(|&k| {
            let run = |buf: &[u8]| {
                best_mib_s(3, buf.len() * iters, || {
                    let mut acc = 0u32;
                    for _ in 0..iters {
                        acc = acc.wrapping_add(u32::from(checksum::ones_complement_sum_with(
                            k,
                            std::hint::black_box(buf),
                        )));
                    }
                    std::hint::black_box(acc);
                })
            };
            KernelRow {
                kernel: k.name(),
                available: k.available(),
                mib_s_mtu: run(&mtu_buf),
                mib_s_jumbo: run(&jumbo_buf),
            }
        })
        .collect()
}

fn one_core_cfg(trace_pkts: usize, batch_parse: bool, digests: bool) -> EngineConfig {
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, 1);
    pipe.trace_pkts = trace_pkts;
    let mut cfg = EngineConfig::new(pipe, EngineMode::Parallel);
    cfg.digests = digests;
    cfg.batch_parse = batch_parse;
    cfg
}

fn best_engine_bps(trace_pkts: usize, reps: usize, batch_parse: bool, digests: bool) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let r = run_engine(one_core_cfg(trace_pkts, batch_parse, digests));
        best = best.max(r.throughput_bps);
    }
    best
}

/// Sweeps the 1-core engine over {kernel × batch-parse}. The forced
/// kernel is process-global; it is restored to auto before returning.
pub fn measure_engine_matrix(scale: Scale) -> Vec<EngineSpeedRow> {
    let (trace_pkts, reps) = match scale {
        Scale::Full => (120_000usize, 3usize),
        Scale::Quick => (20_000, 1),
    };
    let mut rows = Vec::new();
    for &k in &Kernel::ALL {
        for batch_parse in [false, true] {
            checksum::force_kernel(Some(k));
            rows.push(EngineSpeedRow {
                kernel: k.name(),
                batch_parse,
                throughput_bps: best_engine_bps(trace_pkts, reps, batch_parse, false),
            });
        }
    }
    checksum::force_kernel(None);
    rows
}

/// Measures the TSO splitter with copying emission vs scatter-gather
/// views, over jumbo inputs at eMTU 1500.
pub fn measure_split(scale: Scale) -> Vec<SplitSpeedRow> {
    let pushes = match scale {
        Scale::Full => 20_000usize,
        Scale::Quick => 2_000,
    };
    let jumbo = tcp_jumbo(8760);

    // Recycling flat sink: pooled buffers cycle engine → sink → engine.
    struct FlatSink {
        total: u64,
    }
    impl PacketSink for FlatSink {
        fn accept(&mut self, buf: PacketBuf) -> Option<PacketBuf> {
            self.total += buf.len() as u64;
            Some(buf)
        }
    }
    // SG sink: consumes views in place, no materialising copy.
    struct SgSink {
        total: u64,
    }
    impl PacketSink for SgSink {
        fn accept(&mut self, buf: PacketBuf) -> Option<PacketBuf> {
            self.total += buf.len() as u64;
            Some(buf)
        }
        fn push_sg(&mut self, mut pkt: SgPacket<'_>) -> Option<PacketBuf> {
            self.total += pkt.total_len() as u64;
            Some(pkt.take_header())
        }
    }

    // Interleave the two modes rep-by-rep so clock drift and thermal
    // state hit both equally; keep the best of each.
    let mut flat_eng = SplitEngine::new(1500);
    flat_eng.set_sg(false);
    let mut flat_sink = FlatSink { total: 0 };
    let mut sg_eng = SplitEngine::new(1500);
    let mut sg_sink = SgSink { total: 0 };
    let bytes = jumbo.len() * pushes;
    let mut flat = 0.0f64;
    let mut sg = 0.0f64;
    for _ in 0..5 {
        flat = flat.max(best_mib_s(1, bytes, || {
            for _ in 0..pushes {
                flat_eng.push_into(std::hint::black_box(&jumbo), &mut flat_sink);
            }
        }));
        sg = sg.max(best_mib_s(1, bytes, || {
            for _ in 0..pushes {
                sg_eng.push_into(std::hint::black_box(&jumbo), &mut sg_sink);
            }
        }));
    }
    std::hint::black_box((flat_sink.total, sg_sink.total));
    vec![
        SplitSpeedRow {
            mode: "flat",
            mib_s: flat,
        },
        SplitSpeedRow {
            mode: "sg",
            mib_s: sg,
        },
    ]
}

/// Runs the full single-core record: kernels, engine matrix, split
/// modes, and the headline before/after pair.
pub fn run(scale: Scale) -> SingleCore {
    let kernels = measure_kernels(scale);
    let engine = measure_engine_matrix(scale);
    let split = measure_split(scale);
    let find = |name: &str, bp: bool| {
        engine
            .iter()
            .find(|r| r.kernel == name && r.batch_parse == bp)
            .map_or(0.0, |r| r.throughput_bps)
    };
    let best_kernel = Kernel::ALL
        .iter()
        .rev()
        .find(|k| k.available())
        .map_or("u64", |k| k.name());
    let after_bps = find(best_kernel, true);
    let u64_perpkt_bps = find("u64", false);
    let datapath_speedup = if u64_perpkt_bps > 0.0 {
        after_bps / u64_perpkt_bps
    } else {
        0.0
    };
    // The PR-6 bench shape: u64 kernel, per-packet parsing, digests on.
    let (trace_pkts, reps) = match scale {
        Scale::Full => (120_000usize, 3usize),
        Scale::Quick => (20_000, 1),
    };
    checksum::force_kernel(Some(Kernel::U64));
    let before_bps = best_engine_bps(trace_pkts, reps, false, true);
    checksum::force_kernel(None);
    SingleCore {
        kernels,
        engine,
        split,
        before_bps,
        after_bps,
        datapath_speedup,
    }
}

/// Renders the human-readable table.
pub fn render(sc: &SingleCore) -> String {
    let mut out = String::new();
    out.push_str("Single-core raw speed — checksum kernels, batch parse, SG split\n");
    out.push_str("  checksum kernels (MiB/s):\n");
    out.push_str("    kernel | avail | 1480 B      | 8960 B\n");
    out.push_str("    -------+-------+-------------+------------\n");
    for k in &sc.kernels {
        out.push_str(&format!(
            "    {:6} | {:5} | {:>11.0} | {:>10.0}\n",
            k.kernel,
            if k.available { "yes" } else { "no" },
            k.mib_s_mtu,
            k.mib_s_jumbo
        ));
    }
    out.push_str("  1-core engine (TCP, digests off):\n");
    out.push_str("    kernel | batch | throughput\n");
    out.push_str("    -------+-------+-----------\n");
    for r in &sc.engine {
        out.push_str(&format!(
            "    {:6} | {:5} | {}\n",
            r.kernel,
            if r.batch_parse { "on" } else { "off" },
            crate::fmt_bps(r.throughput_bps)
        ));
    }
    out.push_str("  split emission (8760 B jumbos → 1500 B wire):\n");
    for r in &sc.split {
        out.push_str(&format!("    {:4} : {:.0} MiB/s\n", r.mode, r.mib_s));
    }
    out.push_str(&format!(
        "  bench_engine_scaling 1-core, PR-6 shape → PR-7 shape: {} → {} ({:.2}x)\n",
        crate::fmt_bps(sc.before_bps),
        crate::fmt_bps(sc.after_bps),
        sc.speedup()
    ));
    out.push_str(&format!(
        "  datapath-only speedup (digests off both sides): {:.2}x\n",
        sc.datapath_speedup
    ));
    out.push_str(&format!(
        "  checksum kernel speedup (u64 → best, jumbo buffers): {:.2}x\n",
        sc.kernel_speedup()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_record_is_complete_and_positive() {
        let sc = run(Scale::Quick);
        assert_eq!(sc.kernels.len(), 4);
        for k in &sc.kernels {
            assert!(k.mib_s_mtu > 0.0 && k.mib_s_jumbo > 0.0, "{k:?}");
        }
        assert_eq!(sc.engine.len(), 8, "4 kernels x batch on/off");
        for r in &sc.engine {
            assert!(r.throughput_bps > 0.0, "{r:?}");
        }
        assert_eq!(sc.split.len(), 2);
        assert!(sc.split.iter().all(|r| r.mib_s > 0.0));
        assert!(sc.before_bps > 0.0 && sc.after_bps > 0.0);
        assert!(sc.datapath_speedup > 0.0);
        let table = render(&sc);
        assert!(table.contains("PR-6 shape"));
        assert!(table.contains("sg"));
    }
}
