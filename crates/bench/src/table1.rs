//! Table 1 — server-side CPU: one 9 KB connection vs six parallel
//! 1500 B connections per download session.

use crate::Scale;
use px_workload::axel;

/// One row of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Concurrent download sessions.
    pub sessions: usize,
    /// CPU% for 1 connection at 9000 B MTU.
    pub jumbo_pct: f64,
    /// CPU% for 6 connections at 1500 B MTU.
    pub legacy6_pct: f64,
}

/// Runs the table.
pub fn run(_scale: Scale) -> Vec<Row> {
    axel::table1(&[1, 10, 100])
        .into_iter()
        .map(|(sessions, jumbo_pct, legacy6_pct)| Row {
            sessions,
            jumbo_pct,
            legacy6_pct,
        })
        .collect()
}

/// Renders the paper-style table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 1 — server CPU: 1 conn (9000B) vs 6 conns (1500B)\n");
    out.push_str("  sessions | 1 conn 9000B | 6 conn 1500B\n");
    out.push_str("  ---------+--------------+-------------\n");
    for r in rows {
        out.push_str(&format!(
            "  {:8} | {:11.2}% | {:11.2}%\n",
            r.sessions, r.jumbo_pct, r.legacy6_pct
        ));
    }
    out.push_str("  paper: 20.20/19.52, 22.12/34.53, 34.72/100.00 (2.88x at 100)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table1() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 3);
        let r100 = rows[2];
        assert_eq!(r100.sessions, 100);
        assert_eq!(r100.legacy6_pct, 100.0);
        let ratio = r100.legacy6_pct / r100.jumbo_pct;
        assert!((ratio - 2.88).abs() < 0.35, "ratio {ratio}");
    }
}
