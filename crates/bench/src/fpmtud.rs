//! §5.3 — F-PMTUD vs PLPMTUD on a CloudLab-like 6-site WAN.
//!
//! Six sites probe all pairwise paths. Paper: "both methods produce
//! identical PMTU values on all paths, but F-PMTUD is significantly
//! faster … between the Utah and Massachusetts nodes, we observe that
//! F-PMTUD is 368× faster than PLPMTUD."
//!
//! The gap is structural: F-PMTUD needs one RTT regardless of the path,
//! while PLPMTUD pays `tries × timeout` for every probe size that turns
//! out to be too big (loss is its only signal).

use crate::Scale;
use px_pmtud::fpmtud::{FpmtudDaemon, FpmtudProber, ProbeOutcome, ProberConfig};
use px_pmtud::plpmtud::{PlpmtudConfig, PlpmtudProber};
use px_pmtud::topology::{build_path, true_pmtu, Hop, DAEMON_ADDR, PROBER_ADDR};
use px_sim::Nanos;

/// The six sites: name, access-link MTU. (Jumbo-capable CloudLab sites
/// run 9000 B access fabrics; others stay at 1500 B.)
pub const SITES: [(&str, usize); 6] = [
    ("Utah", 9000),
    ("Wisconsin", 9000),
    ("Clemson", 1500),
    ("UMass", 1500),
    ("APT", 9000),
    ("Emulab", 1500),
];

/// One-way inter-site delays in microseconds (upper triangle, symmetric).
/// Utah/APT/Emulab share a campus; UMass is the far east-coast site.
const DELAY_US: [[u64; 6]; 6] = [
    [0, 14_000, 25_000, 31_000, 500, 500],
    [14_000, 0, 15_000, 17_000, 14_000, 14_000],
    [25_000, 15_000, 0, 12_000, 25_000, 25_000],
    [31_000, 17_000, 12_000, 0, 31_000, 31_000],
    [500, 14_000, 25_000, 31_000, 0, 300],
    [500, 14_000, 25_000, 31_000, 300, 0],
];

/// Core MTU between two sites: jumbo only inside the shared campus
/// fabric (Utah ↔ APT), legacy 1500 elsewhere.
fn core_mtu(a: usize, b: usize) -> usize {
    let campus = [0usize, 4]; // Utah, APT
    if campus.contains(&a) && campus.contains(&b) {
        9000
    } else {
        1500
    }
}

/// One probed pair.
#[derive(Debug, Clone)]
pub struct Row {
    /// Source site name.
    pub from: &'static str,
    /// Destination site name.
    pub to: &'static str,
    /// Ground-truth path MTU.
    pub true_pmtu: usize,
    /// F-PMTUD's answer.
    pub fpmtud_pmtu: usize,
    /// F-PMTUD's discovery time.
    pub fpmtud_time: Nanos,
    /// PLPMTUD's answer.
    pub plpmtud_pmtu: usize,
    /// PLPMTUD's convergence time.
    pub plpmtud_time: Nanos,
    /// Speedup of F-PMTUD.
    pub speedup: f64,
}

fn hops_for(a: usize, b: usize) -> Vec<Hop> {
    vec![
        Hop::new(SITES[a].1, 20),
        Hop {
            mtu: core_mtu(a, b),
            delay: Nanos(DELAY_US[a][b] * 1000),
        },
        Hop::new(SITES[b].1, 20),
    ]
}

/// Probes one ordered pair with both algorithms.
pub fn probe_pair(a: usize, b: usize) -> Row {
    let hops = hops_for(a, b);

    // F-PMTUD: one probe, sized to the first-hop MTU, DF clear.
    let prober = FpmtudProber::new(ProberConfig::new(PROBER_ADDR, DAEMON_ADDR, hops[0].mtu));
    let daemon = FpmtudDaemon::new(DAEMON_ADDR);
    let (mut net, p, _) = build_path(101, prober, daemon, &hops, false);
    net.run_until(Nanos::from_secs(10));
    let (f_pmtu, f_time) = match net
        .node_ref::<FpmtudProber>(p)
        .outcome
        .clone()
        .expect("F-PMTUD finished")
    {
        ProbeOutcome::Discovered { pmtu, elapsed, .. } => (pmtu, elapsed),
        // Neither terminal failure discovers a PMTU on these paths; the
        // fallback clamp reports the static eMTU, not a measurement.
        ProbeOutcome::TimedOut { .. } | ProbeOutcome::BlackholedToFallback { .. } => {
            (0, Nanos::MAX)
        }
    };

    // PLPMTUD (Scamper defaults): binary search with DF probes.
    let prober = PlpmtudProber::new(PlpmtudConfig::scamper(
        PROBER_ADDR,
        DAEMON_ADDR,
        hops[0].mtu,
    ));
    let daemon = FpmtudDaemon::new(DAEMON_ADDR);
    let (mut net, p, _) = build_path(102, prober, daemon, &hops, false);
    net.run_until(Nanos::from_secs(600));
    let out = net
        .node_ref::<PlpmtudProber>(p)
        .outcome
        .clone()
        .expect("PLPMTUD finished");

    Row {
        from: SITES[a].0,
        to: SITES[b].0,
        true_pmtu: true_pmtu(&hops),
        fpmtud_pmtu: f_pmtu,
        fpmtud_time: f_time,
        plpmtud_pmtu: out.pmtu,
        plpmtud_time: out.elapsed,
        speedup: out.elapsed.0 as f64 / f_time.0.max(1) as f64,
    }
}

/// Runs all pairwise probes (15 pairs; `Quick` probes a subset).
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for a in 0..SITES.len() {
        for b in (a + 1)..SITES.len() {
            if scale == Scale::Quick && !(a == 0 || b == 3) {
                continue; // Quick: Utah-* and *-UMass pairs only
            }
            rows.push(probe_pair(a, b));
        }
    }
    rows
}

/// Renders the paper-style table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("§5.3 — F-PMTUD vs PLPMTUD (Scamper), pairwise site probing\n");
    out.push_str(
        "  pair                 | true | F-PMTUD (time)     | PLPMTUD (time)     | speedup\n",
    );
    out.push_str(
        "  ---------------------+------+--------------------+--------------------+--------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:9} → {:9} | {:4} | {:4} ({:>9}) | {:4} ({:>9}) | {:.0}x\n",
            r.from,
            r.to,
            r.true_pmtu,
            r.fpmtud_pmtu,
            r.fpmtud_time.to_string(),
            r.plpmtud_pmtu,
            r.plpmtud_time.to_string(),
            r.speedup
        ));
    }
    out.push_str("  paper: identical PMTUs on all paths; Utah↔UMass speedup 368x\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmtu_values_agree_and_fpmtud_is_much_faster() {
        let rows = run(Scale::Quick);
        assert!(!rows.is_empty());
        for r in &rows {
            // "Identical PMTU values": both within discovery resolution
            // of the truth (F-PMTUD: 8-byte fragment rounding; PLPMTUD:
            // search granularity).
            assert!(
                r.true_pmtu - r.fpmtud_pmtu <= 28,
                "{}→{} F-PMTUD {} vs true {}",
                r.from,
                r.to,
                r.fpmtud_pmtu,
                r.true_pmtu
            );
            assert!(
                r.true_pmtu - r.plpmtud_pmtu <= 28,
                "{}→{} PLPMTUD {} vs true {}",
                r.from,
                r.to,
                r.plpmtud_pmtu,
                r.true_pmtu
            );
            // One RTT vs multi-RTT+timeout: when the first-hop MTU
            // exceeds the PMTU (probing actually searches), the speedup
            // is enormous; flat jumbo-to-jumbo paths tie.
            if r.true_pmtu < 9000 && SITES.iter().any(|s| s.0 == r.from && s.1 == 9000) {
                assert!(
                    r.speedup > 50.0,
                    "{}→{} speedup {}",
                    r.from,
                    r.to,
                    r.speedup
                );
            }
        }
        // The paper's marquee pair: Utah ↔ UMass, hundreds of times faster.
        let marquee = rows
            .iter()
            .find(|r| r.from == "Utah" && r.to == "UMass")
            .expect("Utah-UMass probed");
        assert!(
            marquee.speedup > 150.0 && marquee.speedup < 800.0,
            "Utah↔UMass speedup {} (paper: 368x)",
            marquee.speedup
        );
    }
}
