//! Fig. 1c — "Impact of concurrent flows".
//!
//! Aggregate single-core RX throughput as the flow count grows. Paper:
//! G/LRO at 1500 B loses 31% of its throughput with only 4 concurrent
//! flows (interleaving breaks up aggregation), while the 9 KB
//! configuration loses just 7% (its benefit never depended on
//! aggregation).

use crate::Scale;
use px_sim::calib;
use px_sim::nic::{rx_saturation_bps, RxConfig};

/// One flow-count point.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Concurrent flows.
    pub flows: usize,
    /// 1500 B + G/LRO throughput, bits/sec.
    pub glro_1500_bps: f64,
    /// Drop vs the single-flow value, fraction.
    pub glro_1500_drop: f64,
    /// 9000 B (no RX offloads) throughput, bits/sec.
    pub jumbo_bps: f64,
    /// Drop vs the single-flow value, fraction.
    pub jumbo_drop: f64,
}

/// Runs the concurrency sweep.
pub fn run(_scale: Scale) -> Vec<Row> {
    let m = calib::endpoint_model();
    let glro = |flows| {
        rx_saturation_bps(
            &m,
            &RxConfig {
                mtu: 1500,
                lro: true,
                gro: true,
                flows,
            },
        )
    };
    let jumbo = |flows| {
        rx_saturation_bps(
            &m,
            &RxConfig {
                mtu: 9000,
                lro: false,
                gro: false,
                flows,
            },
        )
    };
    let (g1, j1) = (glro(1), jumbo(1));
    [1usize, 2, 4, 8, 16, 32]
        .iter()
        .map(|&flows| {
            let g = glro(flows);
            let j = jumbo(flows);
            Row {
                flows,
                glro_1500_bps: g,
                glro_1500_drop: 1.0 - g / g1,
                jumbo_bps: j,
                jumbo_drop: 1.0 - j / j1,
            }
        })
        .collect()
}

/// Renders the paper-style table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig 1c — aggregate RX throughput vs concurrent flows (1 core)\n");
    out.push_str("  flows | 1500B+G/LRO        | 9000B (no offloads)\n");
    out.push_str("  ------+--------------------+--------------------\n");
    for r in rows {
        out.push_str(&format!(
            "  {:5} | {:>9} (-{:4.1}%) | {:>9} (-{:4.1}%)\n",
            r.flows,
            crate::fmt_bps(r.glro_1500_bps),
            100.0 * r.glro_1500_drop,
            crate::fmt_bps(r.jumbo_bps),
            100.0 * r.jumbo_drop,
        ));
    }
    out.push_str("  paper: -31% at 4 flows for G/LRO vs -7% for 9000B\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig1c() {
        let rows = run(Scale::Quick);
        let at4 = rows.iter().find(|r| r.flows == 4).unwrap();
        assert!(
            (at4.glro_1500_drop - 0.31).abs() < 0.04,
            "{}",
            at4.glro_1500_drop
        );
        assert!((at4.jumbo_drop - 0.07).abs() < 0.03, "{}", at4.jumbo_drop);
        // G/LRO keeps degrading with more flows; jumbo stays mild.
        let at32 = rows.iter().find(|r| r.flows == 32).unwrap();
        assert!(at32.glro_1500_drop > at4.glro_1500_drop);
        assert!(at32.jumbo_drop < 0.25);
    }
}
