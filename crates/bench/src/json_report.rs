//! `figures json` — the machine-readable benchmark record.
//!
//! Produces the contents of `BENCH_engine.json`: per-(workload, cores)
//! engine throughput and conversion yield from the real threaded
//! datapath, plus steady-state allocations-per-packet for each hot loop
//! (merge, split, caravan), measured with the counting global allocator
//! the `figures` binary installs.
//!
//! The JSON is hand-rolled — the workspace deliberately carries no
//! serialisation dependency — and every number is emitted with enough
//! precision to diff across commits.

use crate::Scale;
use px_core::caravan_gw::{CaravanConfig, CaravanEngine};
use px_core::engine::{run_engine, run_engine_on_trace, EngineConfig, EngineMode};
use px_core::merge::{MergeConfig, MergeEngine};
use px_core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
use px_core::split::SplitEngine;
use px_faults::FaultSpec;
use px_obs::{time_series_json, HistSet, ObsConfig, Profiler, SloSpec, SloWatchdog, TimeSample};
use px_wire::ipv4::Ipv4Repr;
use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr};
use px_wire::{IpProtocol, PacketBuf, UdpRepr};
use std::net::Ipv4Addr;

/// A source of "allocations so far" — the counting `#[global_allocator]`
/// the binary installs (the library cannot: it forbids `unsafe`).
pub type AllocCounter = fn() -> u64;

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Steady-state allocations per packet for one hot loop.
#[derive(Debug, Clone, Copy)]
pub struct HotLoopAllocs {
    /// Loop label ("merge" / "split" / "caravan").
    pub loop_name: &'static str,
    /// Packets pushed in the measured (post-warm-up) region.
    pub pkts: u64,
    /// Global allocations observed over the measured region.
    pub allocs: u64,
}

/// One engine measurement row.
#[derive(Debug, Clone)]
pub struct EngineRow {
    /// Workload label ("TCP" / "UDP").
    pub workload: &'static str,
    /// Worker-thread count.
    pub cores: usize,
    /// Measured wall-clock forwarding rate on this host.
    pub throughput_bps: f64,
    /// Steady-state conversion yield.
    pub conversion_yield: f64,
    /// Input packets.
    pub pkts_in: u64,
    /// Output packets (drain included).
    pub pkts_out: u64,
}

fn tcp_pkt(port: u16, seq: u32, len: usize) -> Vec<u8> {
    let payload: Vec<u8> = (0..len).map(|j| ((j * 13 + 7) % 251) as u8).collect();
    let repr = TcpRepr {
        src_port: port,
        dst_port: 80,
        seq: SeqNum(seq),
        ack: SeqNum(1),
        flags: TcpFlags::ACK,
        window: 2048,
        options: vec![],
    };
    let seg = repr.build_segment(SRC, DST, &payload);
    Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
        .build_packet(&seg)
        .unwrap()
}

fn udp_pkt(port: u16, ident: u16, len: usize) -> Vec<u8> {
    let payload: Vec<u8> = (0..len).map(|j| ((j * 29 + 3) % 251) as u8).collect();
    let dg = UdpRepr {
        src_port: port,
        dst_port: 4433,
    }
    .build_datagram(SRC, DST, &payload)
    .unwrap();
    let mut ip = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, dg.len());
    ip.ident = ident;
    ip.build_packet(&dg).unwrap()
}

/// Drives each engine's sink hot path with prebuilt inputs and a
/// recycling sink, and reports allocations over the post-warm-up region.
pub fn measure_hot_loops(scale: Scale, allocs: AllocCounter) -> Vec<HotLoopAllocs> {
    let (warmup, measured) = match scale {
        Scale::Full => (32usize, 512usize),
        Scale::Quick => (8, 64),
    };
    let mut sunk = 0u64;
    let mut out = Vec::new();

    // merge: rounds of 6 contiguous 1460 B segments on two flows.
    let mut merge = MergeEngine::new(MergeConfig {
        imtu: 9000,
        emtu: 1500,
        hold_ns: 50_000,
        table_capacity: 64,
    });
    let segs: Vec<Vec<u8>> = (0..(warmup + measured) * 12)
        .map(|i| {
            let round = (i / 12) as u32;
            let slot = (i % 12) as u32;
            tcp_pkt(
                5000 + (slot % 2) as u16,
                (round * 6 + slot / 2) * 1460,
                1460,
            )
        })
        .collect();
    let mut now = 0u64;
    let mut drive_merge = |pkts: &[Vec<u8>], sunk: &mut u64| {
        for pkt in pkts {
            let mut sink = |b: PacketBuf| {
                *sunk += b.len() as u64;
                Some(b)
            };
            merge.poll_into(now, &mut sink);
            merge.push_into(now, pkt, &mut sink);
            now += 10_000;
        }
    };
    drive_merge(&segs[..warmup * 12], &mut sunk);
    let before = allocs();
    drive_merge(&segs[warmup * 12..], &mut sunk);
    out.push(HotLoopAllocs {
        loop_name: "merge",
        pkts: (measured * 12) as u64,
        allocs: allocs() - before,
    });

    // split: one jumbo in, six wire segments out, per push.
    let mut split = SplitEngine::new(1500);
    let jumbo = tcp_pkt(6000, 1, 8760);
    let mut drive_split = |n: usize, sunk: &mut u64| {
        for _ in 0..n {
            let mut sink = |b: PacketBuf| {
                *sunk += b.len() as u64;
                Some(b)
            };
            split.push_into(&jumbo, &mut sink);
        }
    };
    drive_split(warmup * 12, &mut sunk);
    let before = allocs();
    drive_split(measured * 12, &mut sunk);
    out.push(HotLoopAllocs {
        loop_name: "split",
        pkts: (measured * 12) as u64,
        allocs: allocs() - before,
    });

    // caravan: same-flow 1100 B datagrams with consecutive IP-IDs.
    let mut caravan = CaravanEngine::new(CaravanConfig {
        imtu: 9000,
        hold_ns: 50_000,
        table_capacity: 64,
        require_consecutive_ip_id: true,
        probe_port: 9999,
    });
    let dgrams: Vec<Vec<u8>> = (0..(warmup + measured) * 12)
        .map(|i| udp_pkt(7000, i as u16, 1100))
        .collect();
    let mut cnow = 0u64;
    let mut drive_caravan = |pkts: &[Vec<u8>], sunk: &mut u64| {
        for pkt in pkts {
            let mut sink = |b: PacketBuf| {
                *sunk += b.len() as u64;
                Some(b)
            };
            caravan.poll_into(cnow, &mut sink);
            caravan.push_inbound_into(cnow, pkt, &mut sink);
            cnow += 10_000;
        }
    };
    drive_caravan(&dgrams[..warmup * 12], &mut sunk);
    let before = allocs();
    drive_caravan(&dgrams[warmup * 12..], &mut sunk);
    out.push(HotLoopAllocs {
        loop_name: "caravan",
        pkts: (measured * 12) as u64,
        allocs: allocs() - before,
    });

    assert!(sunk > 0, "hot loops must have emitted real output");
    out
}

/// Runs the Parallel engine across workloads and core counts.
pub fn measure_engine(scale: Scale) -> Vec<EngineRow> {
    let trace_pkts = match scale {
        Scale::Full => 120_000,
        Scale::Quick => 20_000,
    };
    let mut rows = Vec::new();
    for (label, workload) in [("TCP", WorkloadKind::Tcp), ("UDP", WorkloadKind::Udp)] {
        for cores in [1usize, 2, 4, 8] {
            let mut pipe = PipelineConfig::fig5(SystemVariant::Px, workload, cores);
            pipe.trace_pkts = trace_pkts;
            let r = run_engine(EngineConfig::new(pipe, EngineMode::Parallel));
            rows.push(EngineRow {
                workload: label,
                cores,
                throughput_bps: r.throughput_bps,
                conversion_yield: r.conversion_yield,
                pkts_in: r.totals.pkts_in,
                pkts_out: r.totals.pkts_out,
            });
        }
    }
    rows
}

/// Observability overhead: the same 4-core TCP workload with the
/// flight recorder off vs on.
#[derive(Debug, Clone)]
pub struct ObsOverhead {
    /// Per-core event-ring capacity of the enabled run.
    pub ring_capacity: usize,
    /// Best-of-N throughput with observability disabled.
    pub disabled_bps: f64,
    /// Best-of-N throughput with observability enabled.
    pub enabled_bps: f64,
    /// Merged histograms from the enabled run (latency summaries).
    pub hists: HistSet,
    /// Sampler time series from the enabled run.
    pub series: Vec<TimeSample>,
}

impl ObsOverhead {
    /// Fractional throughput lost to recording (0 when enabled ≥
    /// disabled — timing noise on small runs).
    pub fn overhead_frac(&self) -> f64 {
        if self.disabled_bps <= 0.0 {
            return 0.0;
        }
        ((self.disabled_bps - self.enabled_bps) / self.disabled_bps).max(0.0)
    }
}

/// The recording overhead budget the record attests against (§ISSUE
/// acceptance: ≤ 5%).
pub const OBS_OVERHEAD_BUDGET_FRAC: f64 = 0.05;

/// Measures the observability overhead: best-of-3 Parallel runs on 4
/// cores with recording disabled, then enabled, over the identical
/// trace. Best-of-N absorbs scheduler noise that would otherwise
/// dominate a single-run comparison.
pub fn measure_observability(scale: Scale) -> ObsOverhead {
    let trace_pkts = match scale {
        Scale::Full => 120_000,
        Scale::Quick => 20_000,
    };
    let cores = 4usize;
    let reps = 3;
    let run_once = |obs: ObsConfig| {
        let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, cores);
        pipe.trace_pkts = trace_pkts;
        let mut cfg = EngineConfig::new(pipe, EngineMode::Parallel);
        cfg.obs = obs;
        run_engine(cfg)
    };

    let mut disabled_bps = 0.0f64;
    for _ in 0..reps {
        disabled_bps = disabled_bps.max(run_once(ObsConfig::disabled()).throughput_bps);
    }
    let mut enabled_bps = 0.0f64;
    let mut hists = HistSet::default();
    let mut series = Vec::new();
    for _ in 0..reps {
        let r = run_once(ObsConfig::default());
        if r.throughput_bps > enabled_bps {
            enabled_bps = r.throughput_bps;
            hists = r.obs.hists;
            series = r.obs.time_series.clone();
        }
    }
    ObsOverhead {
        ring_capacity: ObsConfig::default().ring_capacity,
        disabled_bps,
        enabled_bps,
        hists,
        series,
    }
}

/// Tier-2 tracing overhead and census: the same 4-core TCP workload
/// with spans, the continuous profiler, and the SLO watchdog all armed,
/// against a fully disabled baseline.
#[derive(Debug, Clone)]
pub struct TracingBench {
    /// Per-core span-ring capacity of the enabled run.
    pub span_capacity: usize,
    /// Best-of-N throughput with observability disabled.
    pub disabled_bps: f64,
    /// Best-of-N throughput with spans + profiler + watchdog live.
    pub enabled_bps: f64,
    /// Spans held across every core's ring at the end of the best
    /// enabled run.
    pub spans_held: usize,
    /// The merged continuous profiler from the best enabled run.
    pub profile: Profiler,
    /// The merged SLO watchdog tallies from the best enabled run.
    pub slo: SloWatchdog,
}

impl TracingBench {
    /// Fractional throughput lost to tier-2 recording (0 when enabled ≥
    /// disabled — timing noise on small runs).
    pub fn overhead_frac(&self) -> f64 {
        if self.disabled_bps <= 0.0 {
            return 0.0;
        }
        ((self.disabled_bps - self.enabled_bps) / self.disabled_bps).max(0.0)
    }
}

/// Measures the tier-2 tracing overhead: best-of-3 Parallel runs on 4
/// cores with everything off, then with span tracing, the continuous
/// profiler, and the demo SLO watchdog all armed. The ≤5% budget
/// ([`OBS_OVERHEAD_BUDGET_FRAC`]) covers this configuration too — the
/// ISSUE acceptance gate reads `tracing.overhead_frac` from the record.
pub fn measure_tracing(scale: Scale) -> TracingBench {
    let trace_pkts = match scale {
        Scale::Full => 120_000,
        Scale::Quick => 20_000,
    };
    let cores = 4usize;
    let reps = 3;
    let run_once = |obs: ObsConfig| {
        let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, cores);
        pipe.trace_pkts = trace_pkts;
        let mut cfg = EngineConfig::new(pipe, EngineMode::Parallel);
        cfg.obs = obs;
        run_engine(cfg)
    };
    let armed = || ObsConfig {
        slo: SloSpec::demo(),
        ..ObsConfig::default()
    };

    let mut disabled_bps = 0.0f64;
    for _ in 0..reps {
        disabled_bps = disabled_bps.max(run_once(ObsConfig::disabled()).throughput_bps);
    }
    let mut enabled_bps = 0.0f64;
    let mut best: Option<px_core::engine::EngineReport> = None;
    for _ in 0..reps {
        let r = run_once(armed());
        if r.throughput_bps > enabled_bps {
            enabled_bps = r.throughput_bps;
            best = Some(r);
        }
    }
    let best = best.expect("reps > 0");
    TracingBench {
        span_capacity: armed().span_capacity,
        disabled_bps,
        enabled_bps,
        spans_held: best.obs.per_core_spans.iter().map(Vec::len).sum(),
        profile: best.obs.profile.clone(),
        slo: best.obs.slo.clone(),
    }
}

/// Robustness under injected faults: degraded-mode and chaos-mode
/// throughput next to the clean baseline, with the degradation and
/// self-healing counters that prove the fault paths actually fired.
#[derive(Debug, Clone)]
pub struct Robustness {
    /// Best-of-N clean throughput (faults compiled in, disabled).
    pub clean_bps: f64,
    /// Best-of-N throughput with resource faults armed (pool dry on
    /// half the aggregate creations, table denial on a quarter).
    pub degraded_bps: f64,
    /// Passthrough packets the degraded run forwarded unmerged.
    pub degraded_pkts: u64,
    /// Aggregate creations that found the pool dry in the degraded run.
    pub pool_exhausted: u64,
    /// Packets lost to backpressure in the degraded run — must be 0:
    /// degradation forwards, it never drops.
    pub backpressure_drops: u64,
    /// Conversion yield while degraded (passthroughs count against it).
    pub degraded_yield: f64,
    /// Best-of-N throughput under worker panics every 5th batch.
    pub self_healing_bps: f64,
    /// Supervisor restarts over the best self-healing run.
    pub worker_restarts: u64,
}

impl Robustness {
    /// Degraded-mode throughput relative to clean.
    pub fn degraded_frac(&self) -> f64 {
        if self.clean_bps <= 0.0 {
            return 0.0;
        }
        self.degraded_bps / self.clean_bps
    }

    /// Self-healing-mode throughput relative to clean.
    pub fn self_healing_frac(&self) -> f64 {
        if self.clean_bps <= 0.0 {
            return 0.0;
        }
        self.self_healing_bps / self.clean_bps
    }
}

/// Measures graceful degradation and self-healing on the 4-core TCP
/// Parallel workload: a clean run, a run with resource faults armed
/// (every other aggregate creation finds the pool dry), and a run
/// whose workers panic every 5th batch and are restarted in place.
/// Best-of-N per mode, like [`measure_observability`].
pub fn measure_robustness(scale: Scale) -> Robustness {
    let trace_pkts = match scale {
        Scale::Full => 120_000,
        Scale::Quick => 20_000,
    };
    let cores = 4usize;
    let reps = 3;
    let run_once = |faults: FaultSpec| {
        let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, cores);
        pipe.trace_pkts = trace_pkts;
        let mut cfg = EngineConfig::new(pipe, EngineMode::Parallel);
        cfg.faults = faults;
        run_engine(cfg)
    };
    let best_of = |faults: FaultSpec| {
        let mut best: Option<px_core::engine::EngineReport> = None;
        for _ in 0..reps {
            let r = run_once(faults);
            if best
                .as_ref()
                .is_none_or(|b| r.throughput_bps > b.throughput_bps)
            {
                best = Some(r);
            }
        }
        best.expect("reps > 0")
    };

    let clean = best_of(FaultSpec::off());
    // Resource faults only: the ingress trace is untouched, so every
    // input packet still comes out the far side (merged or passthrough).
    let degraded = best_of(FaultSpec {
        enabled: true,
        seed: 0xDE64,
        pool_dry_ppm: 500_000,
        table_deny_ppm: 250_000,
        ..FaultSpec::off()
    });
    let healing = best_of(FaultSpec {
        enabled: true,
        seed: 0x4EA1,
        panic_every_batches: 5,
        ..FaultSpec::off()
    });
    Robustness {
        clean_bps: clean.throughput_bps,
        degraded_bps: degraded.throughput_bps,
        degraded_pkts: degraded.totals.degraded_pkts,
        pool_exhausted: degraded.totals.pool_exhausted,
        backpressure_drops: degraded.totals.backpressure_drops,
        degraded_yield: degraded.conversion_yield,
        self_healing_bps: healing.throughput_bps,
        worker_restarts: healing.totals.worker_restarts,
    }
}

/// Throughput and drop taxonomy under the seeded attack matrix
/// (DESIGN.md §17): the same workload clean and with an on-path
/// injector spliced in, plus the F-PMTUD guard's ledger against an
/// off-path spoof storm.
#[derive(Debug, Clone)]
pub struct Adversarial {
    /// Best-of-N throughput on the attack-free trace.
    pub clean_bps: f64,
    /// Best-of-N throughput with injection/overlap/duplicate attacks
    /// spliced into the same trace.
    pub attacked_bps: f64,
    /// Attack packets the generator spliced in.
    pub attack_pkts: u64,
    /// Bit-identical duplicate replays among them (dropped silently).
    pub benign_dups: u64,
    /// Injections caught as inconsistent overlaps (typed drops).
    pub dropped_inconsistent_overlap: u64,
    /// Below-base straddles refused as evasion attempts.
    pub dropped_overlap_evasion: u64,
    /// Packets lost to backpressure under attack — must stay 0.
    pub backpressure_drops: u64,
    /// Forged F-PMTUD reports thrown at the guard.
    pub spoof_reports: u64,
    /// Of those, rejected by nonce/probe-id attestation.
    pub spoof_rejected: u64,
    /// Attested below-floor claims clamped at `pmtu_floor`.
    pub floor_clamps: u64,
    /// The PMTU estimate after the storm and the recovery re-probe
    /// (must be back at the genuine value).
    pub pmtu_after_storm: usize,
}

impl Adversarial {
    /// Under-attack throughput relative to clean.
    pub fn attacked_frac(&self) -> f64 {
        if self.clean_bps <= 0.0 {
            return 0.0;
        }
        self.attacked_bps / self.clean_bps
    }
}

/// Measures the adversarial block: clean vs under-attack throughput on
/// the 4-core TCP Parallel datapath over the seeded attack generator's
/// traces (best-of-N each), and the guard's counters after a 500-report
/// spoof storm plus a handful of attested below-floor claims.
pub fn measure_adversarial(scale: Scale) -> Adversarial {
    let (flows, segs_per_flow) = match scale {
        Scale::Full => (32usize, 256usize),
        Scale::Quick => (16usize, 64usize),
    };
    let seed = 0xADB5;
    let reps = 3;
    let cores = 4usize;
    let best_of = |trace: &[(px_wire::FlowKey, Vec<u8>)]| {
        let mut best: Option<px_core::engine::EngineReport> = None;
        for _ in 0..reps {
            let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, cores);
            pipe.n_flows = flows;
            let cfg = EngineConfig::new(pipe, EngineMode::Parallel);
            let r = run_engine_on_trace(cfg, trace.to_vec());
            if best
                .as_ref()
                .is_none_or(|b| r.throughput_bps > b.throughput_bps)
            {
                best = Some(r);
            }
        }
        best.expect("reps > 0")
    };

    let clean = best_of(&px_faults::attack::tcp_clean_trace(
        seed,
        flows,
        segs_per_flow,
    ));
    let attack_trace = px_faults::attack::tcp_attack_trace(seed, flows, segs_per_flow);
    let attacked = best_of(&attack_trace.pkts);

    // The off-path spoofer against the hardened guard: one genuine
    // report establishes 9000, then a seeded storm of forgeries and a
    // few attested-but-absurd shrink claims.
    let mut guard = px_pmtud::PmtudGuard::new(px_pmtud::GuardConfig::new(9000, seed));
    let (id, nonce) = guard.next_probe();
    guard.on_report(id, nonce, &[9000]);
    let spoofs = px_faults::attack::spoof_report_stream(seed, 500, 8);
    let spoof_reports = spoofs.len() as u64;
    for s in &spoofs {
        guard.on_report(s.probe_id, s.nonce, &s.sizes);
    }
    for _ in 0..4 {
        let (id, nonce) = guard.next_probe();
        guard.on_report(id, nonce, &[64]);
    }
    // The recovery re-probe: one genuine attested report restores the
    // true estimate after the held/clamped shrink episode.
    let (id, nonce) = guard.next_probe();
    guard.on_report(id, nonce, &[9000]);

    Adversarial {
        clean_bps: clean.throughput_bps,
        attacked_bps: attacked.throughput_bps,
        attack_pkts: attack_trace.attack_pkts,
        benign_dups: attack_trace.benign_dups,
        dropped_inconsistent_overlap: attacked.totals.dropped_inconsistent_overlap,
        dropped_overlap_evasion: attacked.totals.dropped_overlap_evasion,
        backpressure_drops: attacked.totals.backpressure_drops,
        spoof_reports,
        spoof_rejected: guard.stats.spoof_rejected,
        floor_clamps: guard.stats.floor_clamps,
        pmtu_after_storm: guard.pmtu(),
    }
}

/// Runs the `px-analyze` workspace check so the benchmark record can
/// attest the datapath invariants held for the measured build. Renders
/// the `static_analysis` block: file/violation counts, per-rule tallies,
/// call-graph size, and the waiver census. `violation_count` must be 0
/// for a publishable record.
pub fn static_analysis_json() -> String {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let report = match px_analyze::run_check(&px_analyze::Config::default(), &root) {
        Ok(r) => r,
        // A walk failure (e.g. record regenerated outside the repo) is
        // reported as an impossible violation count, never hidden.
        Err(_) => {
            return format!(
                "  \"static_analysis\": {{\"tool\": \"px-analyze\", \"files_checked\": 0, \"violation_count\": {}}},\n",
                usize::MAX
            );
        }
    };
    let counts = report.rule_counts();
    let rules = px_analyze::Rule::ALL
        .iter()
        .map(|r| format!("\"{}\": {}", r.name(), counts.get(r.name()).unwrap_or(&0)))
        .collect::<Vec<_>>()
        .join(", ");
    let waivers = report
        .stats
        .waivers_used
        .iter()
        .map(|(rule, n)| format!("\"{rule}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "  \"static_analysis\": {{\"tool\": \"px-analyze\", \"files_checked\": {}, \"violation_count\": {}, \"functions\": {}, \"call_edges\": {}, \"rules\": {{{rules}}}, \"waivers_used\": {{{waivers}}}}},\n",
        report.files_checked,
        report.violations.len(),
        report.stats.functions,
        report.stats.call_edges,
    )
}

fn hist_summary_json(name: &str, h: &px_obs::Histo64) -> String {
    format!(
        "\"{name}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        h.count(),
        h.p50(),
        h.p90(),
        h.p99(),
        h.max()
    )
}

/// Renders the full report as pretty-printed JSON.
// One argument per top-level JSON section: bundling them into a struct
// would just move the same eight names one level down.
#[allow(clippy::too_many_arguments)]
pub fn render(
    scale: Scale,
    hot: &[HotLoopAllocs],
    engine: &[EngineRow],
    flow_scale: &[crate::flow_scale::FlowScaleRow],
    single_core: &crate::single_core::SingleCore,
    obs: &ObsOverhead,
    tracing: &TracingBench,
    robust: &Robustness,
    adversarial: &Adversarial,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Full => "full",
            Scale::Quick => "quick",
        }
    ));
    s.push_str("  \"hot_path_allocs\": {\n");
    for (i, h) in hot.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{\"pkts\": {}, \"allocs\": {}, \"allocs_per_pkt\": {:.6}}}{}\n",
            h.loop_name,
            h.pkts,
            h.allocs,
            h.allocs as f64 / h.pkts as f64,
            if i + 1 < hot.len() { "," } else { "" }
        ));
    }
    s.push_str("  },\n");
    s.push_str(&static_analysis_json());
    s.push_str("  \"engine\": [\n");
    for (i, r) in engine.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"cores\": {}, \"throughput_bps\": {:.0}, \
             \"conversion_yield\": {:.6}, \"pkts_in\": {}, \"pkts_out\": {}}}{}\n",
            r.workload,
            r.cores,
            r.throughput_bps,
            r.conversion_yield,
            r.pkts_in,
            r.pkts_out,
            if i + 1 < engine.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"flow_scale\": [\n");
    for (i, r) in flow_scale.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"flows\": {}, \"cores\": {}, \"window_pkts\": {}, \"throughput_bps\": {:.0}, \
             \"elephant_yield\": {:.6}, \"flows_live\": {}, \"steered_mice_pkts\": {}, \
             \"arena_peak_bytes\": {}}}{}\n",
            r.flows,
            crate::flow_scale::CORES,
            r.window_pkts,
            r.throughput_bps,
            r.elephant_yield,
            r.flows_live,
            r.steered_mice_pkts,
            r.arena_peak_bytes,
            if i + 1 < flow_scale.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"single_core_speed\": {\n");
    s.push_str("    \"checksum_kernels\": [\n");
    for (i, k) in single_core.kernels.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"kernel\": \"{}\", \"available\": {}, \"mib_s_mtu\": {:.0}, \"mib_s_jumbo\": {:.0}}}{}\n",
            k.kernel,
            k.available,
            k.mib_s_mtu,
            k.mib_s_jumbo,
            if i + 1 < single_core.kernels.len() { "," } else { "" }
        ));
    }
    s.push_str("    ],\n");
    s.push_str("    \"engine_1core\": [\n");
    for (i, r) in single_core.engine.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"kernel\": \"{}\", \"batch_parse\": {}, \"throughput_bps\": {:.0}}}{}\n",
            r.kernel,
            r.batch_parse,
            r.throughput_bps,
            if i + 1 < single_core.engine.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("    ],\n");
    s.push_str("    \"split_emission\": [\n");
    for (i, r) in single_core.split.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"mode\": \"{}\", \"mib_s\": {:.0}}}{}\n",
            r.mode,
            r.mib_s,
            if i + 1 < single_core.split.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"before_bps\": {:.0},\n    \"after_bps\": {:.0},\n    \"speedup\": {:.4},\n    \"kernel_speedup\": {:.4}\n",
        single_core.before_bps,
        single_core.after_bps,
        single_core.speedup(),
        single_core.kernel_speedup()
    ));
    s.push_str("  },\n");
    s.push_str("  \"observability\": {\n");
    s.push_str(&format!(
        "    \"ring_capacity\": {},\n    \"disabled_bps\": {:.0},\n    \"enabled_bps\": {:.0},\n    \"overhead_frac\": {:.6},\n    \"overhead_budget_frac\": {:.2},\n",
        obs.ring_capacity,
        obs.disabled_bps,
        obs.enabled_bps,
        obs.overhead_frac(),
        OBS_OVERHEAD_BUDGET_FRAC
    ));
    s.push_str(&format!(
        "    \"latency_ns\": {{{}, {}, {}}},\n",
        hist_summary_json("batch", &obs.hists.batch_ns),
        hist_summary_json("pkt", &obs.hists.pkt_ns),
        hist_summary_json("dwell", &obs.hists.dwell_ns)
    ));
    s.push_str("    \"time_series\":\n");
    s.push_str(&time_series_json(&obs.series, "    "));
    s.push('\n');
    s.push_str("  },\n");
    s.push_str("  \"tracing\": {\n");
    s.push_str(&format!(
        "    \"span_capacity\": {},\n    \"disabled_bps\": {:.0},\n    \"enabled_bps\": {:.0},\n    \"overhead_frac\": {:.6},\n    \"overhead_budget_frac\": {:.2},\n    \"spans_held\": {},\n",
        tracing.span_capacity,
        tracing.disabled_bps,
        tracing.enabled_bps,
        tracing.overhead_frac(),
        OBS_OVERHEAD_BUDGET_FRAC,
        tracing.spans_held
    ));
    s.push_str("    \"profile\":\n");
    s.push_str(&tracing.profile.to_json("    ", 8));
    s.push_str(",\n");
    let (e_p99, e_yield, e_degrade, e_evict) = tracing.slo.breach_edges();
    let spec = tracing.slo.spec();
    s.push_str(&format!(
        "    \"slo\": {{\"evaluated\": {}, \"alerts\": {}, \"level\": {}, \
         \"breach_edges\": {{\"p99_pkt_ns\": {e_p99}, \"yield\": {e_yield}, \"degrade_residency\": {e_degrade}, \"evicted_pressure\": {e_evict}}}, \
         \"spec\": {{\"p99_pkt_ns_max\": {}, \"yield_min_ppm\": {}, \"degrade_batches_max\": {}, \"evicted_pressure_max\": {}}}}}\n",
        tracing.slo.evaluated(),
        tracing.slo.alerts(),
        tracing.slo.level(),
        spec.p99_pkt_ns_max,
        spec.yield_min_ppm,
        spec.degrade_batches_max,
        spec.evicted_pressure_max
    ));
    s.push_str("  },\n");
    s.push_str("  \"robustness\": {\n");
    s.push_str(&format!("    \"clean_bps\": {:.0},\n", robust.clean_bps));
    s.push_str(&format!(
        "    \"degraded\": {{\"throughput_bps\": {:.0}, \"relative\": {:.4}, \"conversion_yield\": {:.6}, \"degraded_pkts\": {}, \"pool_exhausted\": {}, \"backpressure_drops\": {}}},\n",
        robust.degraded_bps,
        robust.degraded_frac(),
        robust.degraded_yield,
        robust.degraded_pkts,
        robust.pool_exhausted,
        robust.backpressure_drops
    ));
    s.push_str(&format!(
        "    \"self_healing\": {{\"throughput_bps\": {:.0}, \"relative\": {:.4}, \"worker_restarts\": {}}}\n",
        robust.self_healing_bps,
        robust.self_healing_frac(),
        robust.worker_restarts
    ));
    s.push_str("  },\n");
    s.push_str("  \"adversarial\": {\n");
    s.push_str(&format!(
        "    \"clean_bps\": {:.0},\n    \"attacked_bps\": {:.0},\n    \"attacked_relative\": {:.4},\n",
        adversarial.clean_bps,
        adversarial.attacked_bps,
        adversarial.attacked_frac()
    ));
    s.push_str(&format!(
        "    \"attack_pkts\": {}, \"benign_dups\": {},\n",
        adversarial.attack_pkts, adversarial.benign_dups
    ));
    s.push_str(&format!(
        "    \"drops\": {{\"inconsistent_overlap\": {}, \"overlap_evasion\": {}, \"backpressure\": {}}},\n",
        adversarial.dropped_inconsistent_overlap,
        adversarial.dropped_overlap_evasion,
        adversarial.backpressure_drops
    ));
    s.push_str(&format!(
        "    \"pmtud\": {{\"spoof_reports\": {}, \"spoof_rejected\": {}, \"floor_clamps\": {}, \"pmtu_after_storm\": {}}}\n",
        adversarial.spoof_reports,
        adversarial.spoof_rejected,
        adversarial.floor_clamps,
        adversarial.pmtu_after_storm
    ));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_loops_report_zero_allocs_per_packet() {
        // Without the binary's counting allocator the counter reads 0,
        // so deltas are 0 — here we only check the harness mechanics
        // (packet counts, shape) and that the JSON renders.
        let hot = measure_hot_loops(Scale::Quick, || 0);
        assert_eq!(hot.len(), 3);
        for h in &hot {
            assert!(h.pkts > 0);
        }
        let engine = measure_engine(Scale::Quick);
        assert_eq!(engine.len(), 8);
        let flow_scale = crate::flow_scale::run(Scale::Quick);
        let single_core = crate::single_core::run(Scale::Quick);
        let obs = measure_observability(Scale::Quick);
        let tracing = measure_tracing(Scale::Quick);
        let robust = measure_robustness(Scale::Quick);
        let adversarial = measure_adversarial(Scale::Quick);
        let json = render(
            Scale::Quick,
            &hot,
            &engine,
            &flow_scale,
            &single_core,
            &obs,
            &tracing,
            &robust,
            &adversarial,
        );
        assert!(json.contains("\"hot_path_allocs\""));
        assert!(json.contains("\"engine\""));
        assert!(json.contains("\"flow_scale\""));
        assert!(json.contains("\"elephant_yield\""));
        assert!(json.contains("\"single_core_speed\""));
        assert!(json.contains("\"checksum_kernels\""));
        assert!(json.contains("\"engine_1core\""));
        assert!(json.contains("\"split_emission\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"observability\""));
        assert!(json.contains("\"overhead_frac\""));
        assert!(json.contains("\"time_series\""));
        assert!(json.contains("\"tracing\""));
        assert!(json.contains("\"spans_held\""));
        assert!(json.contains("\"hot_flows\""));
        assert!(json.contains("\"breach_edges\""));
        assert!(json.contains("\"robustness\""));
        assert!(json.contains("\"adversarial\""));
        assert!(json.contains("\"attacked_relative\""));
        assert!(json.contains("\"inconsistent_overlap\""));
        assert!(json.contains("\"spoof_rejected\""));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn adversarial_measure_fires_the_whole_drop_taxonomy() {
        let a = measure_adversarial(Scale::Quick);
        assert!(a.clean_bps > 0.0);
        assert!(a.attacked_bps > 0.0);
        // The generator actually attacked, and the engine caught it as
        // typed drops — never as backpressure loss.
        assert!(a.attack_pkts > 0, "{a:#?}");
        assert!(a.benign_dups > 0, "{a:#?}");
        assert!(a.dropped_inconsistent_overlap > 0, "{a:#?}");
        assert_eq!(a.backpressure_drops, 0, "{a:#?}");
        // The guard's ledger: every forgery rejected, every below-floor
        // claim clamped, the estimate back at the genuine PMTU.
        assert_eq!(a.spoof_reports, 500, "{a:#?}");
        assert_eq!(a.spoof_rejected, 500, "{a:#?}");
        assert_eq!(a.floor_clamps, 4, "{a:#?}");
        assert_eq!(a.pmtu_after_storm, 9000, "{a:#?}");
    }

    #[test]
    fn tracing_bench_records_spans_profile_and_slo() {
        let t = measure_tracing(Scale::Quick);
        assert!(t.disabled_bps > 0.0);
        assert!(t.enabled_bps > 0.0);
        // The armed run actually traced, profiled, and evaluated.
        assert!(t.spans_held > 0, "{t:#?}");
        assert!(t.profile.batches > 0, "{t:#?}");
        assert!(!t.profile.topk.is_empty(), "{t:#?}");
        assert!(t.slo.evaluated() > 0, "{t:#?}");
        // A healthy run under the demo objectives stays green.
        assert_eq!(t.slo.level(), 0, "{t:#?}");
        // Same caveat as `observability_overhead_within_budget`: the
        // suite runs concurrently, so only a loose sanity bound holds
        // here; the real ≤5% gate reads the single-process record.
        assert!(
            t.overhead_frac() <= 10.0 * OBS_OVERHEAD_BUDGET_FRAC,
            "tracing overhead {:.1}% (disabled {:.0} bps, enabled {:.0} bps)",
            t.overhead_frac() * 100.0,
            t.disabled_bps,
            t.enabled_bps
        );
    }

    #[test]
    fn robustness_modes_fire_their_fault_paths() {
        let r = measure_robustness(Scale::Quick);
        assert!(r.clean_bps > 0.0);
        assert!(r.degraded_bps > 0.0);
        assert!(r.self_healing_bps > 0.0);
        // The degraded run actually degraded — and forwarded, not
        // dropped: backpressure must stay at zero.
        assert!(r.degraded_pkts > 0, "{r:#?}");
        assert!(r.pool_exhausted > 0, "{r:#?}");
        assert_eq!(r.backpressure_drops, 0, "{r:#?}");
        // Passthroughs are never jumbo, so yield must fall.
        assert!(r.degraded_yield < 0.9, "{r:#?}");
        // The self-healing run restarted workers and still finished.
        assert!(r.worker_restarts > 0, "{r:#?}");
    }

    #[test]
    fn observability_overhead_within_budget() {
        let obs = measure_observability(Scale::Quick);
        assert!(obs.disabled_bps > 0.0);
        assert!(obs.enabled_bps > 0.0);
        // The enabled run must have actually recorded.
        assert!(obs.hists.batch_ns.count() > 0);
        assert!(!obs.series.is_empty());
        // This runs concurrently with the rest of the suite, so the two
        // wall-clock measurements see wildly different machine load —
        // only a sanity bound is meaningful here. The real ≤5%
        // attestation comes from `figures json` (single-process) and
        // the dedicated bench_obs_overhead benchmark.
        assert!(
            obs.overhead_frac() <= 10.0 * OBS_OVERHEAD_BUDGET_FRAC,
            "observability overhead {:.1}% (disabled {:.0} bps, enabled {:.0} bps)",
            obs.overhead_frac() * 100.0,
            obs.disabled_bps,
            obs.enabled_bps
        );
    }
}
