//! Criterion bench for Figs. 1b/1c: the RX saturation model across the
//! offload matrix and the concurrency sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use px_sim::calib;
use px_sim::nic::{rx_saturation_bps, RxConfig};

fn bench_offload_matrix(c: &mut Criterion) {
    let m = calib::endpoint_model();
    let mut g = c.benchmark_group("fig1b_1c_offloads");
    g.bench_function("rx_model_matrix", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(mtu, lro, gro) in &[
                (1500usize, false, false),
                (1500, true, true),
                (9000, false, false),
                (9000, true, true),
            ] {
                for flows in [1usize, 4, 32] {
                    acc += rx_saturation_bps(
                        &m,
                        &RxConfig {
                            mtu,
                            lro,
                            gro,
                            flows: std::hint::black_box(flows),
                        },
                    );
                }
            }
            acc
        });
    });
    g.bench_function("fig1b_rows", |b| {
        b.iter(|| px_bench::fig1b::run(px_bench::Scale::Quick))
    });
    g.bench_function("fig1c_rows", |b| {
        b.iter(|| px_bench::fig1c::run(px_bench::Scale::Quick))
    });
    g.finish();
}

criterion_group!(benches, bench_offload_matrix);
criterion_main!(benches);
