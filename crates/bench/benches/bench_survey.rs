//! Criterion bench for the §5.3 fragment-delivery survey: packet-level
//! probe cost per server (real fragmentation + reassembly each).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use px_pmtud::survey::{run_survey, SurveyConfig};

fn bench_survey(c: &mut Criterion) {
    let mut g = c.benchmark_group("survey");
    let n = 5_000usize;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("probe_5k_servers", |b| {
        b.iter(|| {
            run_survey(SurveyConfig {
                n_servers: std::hint::black_box(n),
                failure_prob: 59.0 / 389_428.0,
                lasthop_frac: 15.0 / 59.0,
                seed: 7,
            })
        });
    });
    g.finish();
}

criterion_group!(benches, bench_survey);
criterion_main!(benches);
