//! Criterion bench for the observability overhead budget: the Parallel
//! PXGW engine with the flight recorder + histograms enabled must stay
//! within 5% of the recorder-disabled run (the ISSUE acceptance bound;
//! `figures --json` records the measured ratio in `BENCH_engine.json`).
//!
//! A recorder micro-bench isolates the per-event cost of `record` +
//! `observe_*` so regressions point at the right layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use px_core::engine::{run_engine, EngineConfig, EngineMode};
use px_core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
use px_obs::{EventKind, ObsConfig, Recorder};

const TRACE_PKTS: usize = 20_000;
const N_FLOWS: usize = 200;

fn bench_cfg(obs: ObsConfig) -> EngineConfig {
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, 4);
    pipe.trace_pkts = TRACE_PKTS;
    pipe.n_flows = N_FLOWS;
    let mut cfg = EngineConfig::new(pipe, EngineMode::Parallel);
    cfg.obs = obs;
    cfg
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead_engine");
    g.sample_size(10);
    let emtu = px_wire::LEGACY_MTU as u64;
    g.throughput(Throughput::Bytes(TRACE_PKTS as u64 * emtu));
    for (label, obs) in [
        ("disabled", ObsConfig::disabled()),
        ("enabled", ObsConfig::default()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &obs, |b, &obs| {
            b.iter(|| {
                let rep = run_engine(std::hint::black_box(bench_cfg(obs)));
                assert_eq!(rep.totals.pkts_in, TRACE_PKTS as u64);
                assert_eq!(rep.obs.enabled, obs.enabled);
                rep.throughput_bps
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("obs_recorder_micro");
    g.throughput(Throughput::Elements(1));
    for (label, obs) in [
        ("disabled", ObsConfig::disabled()),
        ("enabled", ObsConfig::default()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &obs, |b, &obs| {
            let mut rec = Recorder::new(obs);
            let mut t = 0u64;
            b.iter(|| {
                t = t.wrapping_add(1);
                rec.record(EventKind::PktIn, t, 1500, 0x1388_0050, 0);
                rec.observe_out_size(1500);
                std::hint::black_box(rec.events_recorded())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
