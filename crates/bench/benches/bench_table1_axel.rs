//! Criterion bench for Table 1: the server CPU accounting model.

use criterion::{criterion_group, criterion_main, Criterion};
use px_workload::axel::{axel_cpu_pct, table1, AxelConfig};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_axel");
    g.bench_function("full_table", |b| {
        b.iter(|| table1(std::hint::black_box(&[1, 10, 100])));
    });
    g.bench_function("single_cell", |b| {
        b.iter(|| axel_cpu_pct(&AxelConfig::six_legacy(), std::hint::black_box(100)));
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
