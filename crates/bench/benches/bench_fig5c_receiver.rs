//! Criterion bench for Fig. 5c: the b-network receiver model (TCP
//! offload matrix + caravan UDP_GRO path).

use criterion::{criterion_group, criterion_main, Criterion};
use px_sim::calib;
use px_sim::nic::{rx_caravan_bps, rx_saturation_bps, RxConfig};

fn bench_fig5c(c: &mut Criterion) {
    let m = calib::endpoint_model();
    let mut g = c.benchmark_group("fig5c_receiver");
    g.bench_function("figure_rows", |b| {
        b.iter(|| px_bench::fig5c::run(px_bench::Scale::Quick));
    });
    g.bench_function("caravan_rx_model", |b| {
        b.iter(|| rx_caravan_bps(&m, std::hint::black_box(8860), 6, 100));
    });
    g.bench_function("tcp_rx_model_100flows", |b| {
        b.iter(|| {
            rx_saturation_bps(
                &m,
                &RxConfig {
                    mtu: std::hint::black_box(9000),
                    lro: true,
                    gro: true,
                    flows: 100,
                },
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fig5c);
criterion_main!(benches);
