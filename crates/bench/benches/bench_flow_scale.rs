//! Criterion bench for flow-state scale: wall-clock of one measured
//! flow-scale point (fill + timed churn window over the internet
//! traffic model) as the live-flow ring sweeps upward.
//!
//! The default sweep stays CI-sized (1 k and 10 k flows — seconds per
//! sample); export `PX_FLOW_SCALE_FULL=1` to extend it to the 100 k and
//! 1 M points the paper's scaling claim rests on (minutes per sample —
//! run locally, not in the smoke job).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use px_bench::flow_scale::measure_point;

fn flow_counts() -> Vec<usize> {
    if std::env::var("PX_FLOW_SCALE_FULL").is_ok_and(|v| v == "1") {
        vec![1_000, 10_000, 100_000, 1_000_000]
    } else {
        vec![1_000, 10_000]
    }
}

fn bench_flow_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_scale");
    g.sample_size(10);
    for n in flow_counts() {
        // Input wire bytes of the timed window, so Criterion reports a
        // rate comparable across ring sizes.
        let window_pkts = (2 * n).max(50_000) as u64;
        g.throughput(Throughput::Bytes(window_pkts * px_wire::LEGACY_MTU as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let row = measure_point(std::hint::black_box(n));
                assert!(row.elephant_yield > 0.5, "{row:?}");
                row.throughput_bps
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_flow_scale);
criterion_main!(benches);
