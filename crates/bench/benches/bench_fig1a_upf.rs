//! Criterion bench for Fig. 1a: the UPF pipeline per-packet cost at each
//! MTU, and the full figure regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use px_upf::upf_throughput_bps;

fn bench_fig1a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1a_upf");
    g.sample_size(10);
    for mtu in [1500usize, 9000] {
        g.bench_with_input(BenchmarkId::new("upf_pipeline", mtu), &mtu, |b, &mtu| {
            b.iter(|| upf_throughput_bps(std::hint::black_box(mtu), 100, 5_000));
        });
    }
    g.bench_function("figure_rows", |b| {
        b.iter(|| px_bench::fig1a::run(px_bench::Scale::Quick));
    });
    g.finish();
}

criterion_group!(benches, bench_fig1a);
criterion_main!(benches);
