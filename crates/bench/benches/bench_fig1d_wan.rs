//! Criterion bench for Fig. 1d: the event-driven WAN TCP simulation
//! (2 s of simulated time per iteration; throughput of the simulator
//! itself, not of TCP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use px_sim::Nanos;
use px_workload::iperf::IperfPair;

fn bench_wan(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1d_wan");
    g.sample_size(10);
    for mtu in [1500usize, 9000] {
        g.bench_with_input(BenchmarkId::new("wan_2s_sim", mtu), &mtu, |b, &mtu| {
            b.iter(|| {
                let mut pair = IperfPair::paper_wan(std::hint::black_box(mtu));
                pair.duration = Nanos::from_secs(2);
                pair.run_tcp().aggregate_bps
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wan);
criterion_main!(benches);
