//! Criterion bench for the checksum kernel matrix: every
//! [`px_wire::checksum::Kernel`] over the buffer shapes the datapath
//! actually sums — TCP wire-MTU payloads, jumbo payloads, and the short
//! header slices the scatter-gather splitter checksums separately.
//!
//! Unavailable kernels (e.g. AVX2 on a non-AVX2 host) are skipped so
//! the reported matrix never silently benchmarks a fallback.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use px_wire::checksum::{ones_complement_sum_with, Kernel};

fn bench_checksum_kernels(c: &mut Criterion) {
    for (label, len) in [
        ("tcp_header_20B", 20usize),
        ("mtu_payload_1460B", 1460),
        ("jumbo_payload_8960B", 8960),
    ] {
        let mut g = c.benchmark_group(format!("checksum_{label}"));
        let data: Vec<u8> = (0..len as u32)
            .map(|i| (i.wrapping_mul(151) >> 1) as u8)
            .collect();
        g.throughput(Throughput::Bytes(len as u64));
        for k in Kernel::ALL {
            if !k.available() {
                continue;
            }
            g.bench_with_input(BenchmarkId::from_parameter(k.name()), &k, |b, &k| {
                b.iter(|| ones_complement_sum_with(k, std::hint::black_box(&data)))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_checksum_kernels);
criterion_main!(benches);
