//! Criterion bench for the real threaded engine: forwarded bytes/sec of
//! the Parallel-mode PXGW datapath as worker threads sweep 1 → 8, plus
//! the PR-7 single-core before/after pair.
//!
//! Throughput is reported in input bytes, so the per-core scaling curve
//! is directly comparable to the modeled Fig. 5a CPU-bound line (minus
//! this host's thread/channel overheads, which are the point of
//! measuring).
//!
//! The scaling sweep runs the tuned datapath (auto checksum kernel,
//! batch-front parsing, digests off — digests are the correctness
//! harness, not the datapath; see `EngineConfig::digests`). The
//! `single_core_before/after` pair reproduces what this bench measured
//! at PR 6 (u64 kernel, per-packet parsing, digests on) next to the
//! tuned shape, so the recorded speedup is the bench's own
//! before/after, not a synthetic microbenchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use px_core::engine::{run_engine, EngineConfig, EngineMode};
use px_core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
use px_wire::checksum::{self, Kernel};

const TRACE_PKTS: usize = 20_000;
const N_FLOWS: usize = 200;

fn bench_cfg(
    workload: WorkloadKind,
    cores: usize,
    digests: bool,
    batch_parse: bool,
) -> EngineConfig {
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, workload, cores);
    pipe.trace_pkts = TRACE_PKTS;
    pipe.n_flows = N_FLOWS;
    let mut cfg = EngineConfig::new(pipe, EngineMode::Parallel);
    cfg.digests = digests;
    cfg.batch_parse = batch_parse;
    cfg
}

fn bench_engine_scaling(c: &mut Criterion) {
    for (label, workload) in [("tcp", WorkloadKind::Tcp), ("udp", WorkloadKind::Udp)] {
        let mut g = c.benchmark_group(format!("engine_scaling_{label}"));
        g.sample_size(10);
        // Input bytes per run: the trace is eMTU-sized packets.
        let emtu = px_wire::LEGACY_MTU as u64;
        g.throughput(Throughput::Bytes(TRACE_PKTS as u64 * emtu));
        for cores in [1usize, 2, 4, 8] {
            g.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
                b.iter(|| {
                    let rep = run_engine(std::hint::black_box(bench_cfg(
                        workload, cores, false, true,
                    )));
                    assert_eq!(rep.totals.pkts_in, TRACE_PKTS as u64);
                    rep.throughput_bps
                });
            });
        }
        g.finish();
    }
}

fn bench_single_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_single_core");
    g.sample_size(10);
    let emtu = px_wire::LEGACY_MTU as u64;
    g.throughput(Throughput::Bytes(TRACE_PKTS as u64 * emtu));
    // PR-6 shape: u64 kernel, per-packet parsing, per-flow digests.
    g.bench_function("before_u64_perpkt_digests", |b| {
        checksum::force_kernel(Some(Kernel::U64));
        b.iter(|| {
            let rep = run_engine(std::hint::black_box(bench_cfg(
                WorkloadKind::Tcp,
                1,
                true,
                false,
            )));
            assert_eq!(rep.totals.pkts_in, TRACE_PKTS as u64);
            rep.throughput_bps
        });
        checksum::force_kernel(None);
    });
    // PR-7 shape: best SIMD kernel, batch-front parsing, digests off.
    g.bench_function("after_simd_batch", |b| {
        b.iter(|| {
            let rep = run_engine(std::hint::black_box(bench_cfg(
                WorkloadKind::Tcp,
                1,
                false,
                true,
            )));
            assert_eq!(rep.totals.pkts_in, TRACE_PKTS as u64);
            rep.throughput_bps
        });
    });
    g.finish();
}

criterion_group!(benches, bench_engine_scaling, bench_single_core);
criterion_main!(benches);
