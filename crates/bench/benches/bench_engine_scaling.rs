//! Criterion bench for the real threaded engine: forwarded bytes/sec of
//! the Parallel-mode PXGW datapath as worker threads sweep 1 → 8.
//!
//! Throughput is reported in input bytes, so the per-core scaling curve
//! is directly comparable to the modeled Fig. 5a CPU-bound line (minus
//! this host's thread/channel overheads, which are the point of
//! measuring).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use px_core::engine::{run_engine, EngineConfig, EngineMode};
use px_core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};

const TRACE_PKTS: usize = 20_000;
const N_FLOWS: usize = 200;

fn bench_cfg(workload: WorkloadKind, cores: usize) -> EngineConfig {
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, workload, cores);
    pipe.trace_pkts = TRACE_PKTS;
    pipe.n_flows = N_FLOWS;
    EngineConfig::new(pipe, EngineMode::Parallel)
}

fn bench_engine_scaling(c: &mut Criterion) {
    for (label, workload) in [("tcp", WorkloadKind::Tcp), ("udp", WorkloadKind::Udp)] {
        let mut g = c.benchmark_group(format!("engine_scaling_{label}"));
        g.sample_size(10);
        // Input bytes per run: the trace is eMTU-sized packets.
        let emtu = px_wire::LEGACY_MTU as u64;
        g.throughput(Throughput::Bytes(TRACE_PKTS as u64 * emtu));
        for cores in [1usize, 2, 4, 8] {
            g.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
                b.iter(|| {
                    let rep = run_engine(std::hint::black_box(bench_cfg(workload, cores)));
                    assert_eq!(rep.totals.pkts_in, TRACE_PKTS as u64);
                    rep.throughput_bps
                });
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
