//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **delayed merging** on/off — conversion-yield impact measured via
//!   the pipeline (throughput here, yield asserted in tests);
//! * **small-flow steering** on/off — gateway work under a mice-heavy mix;
//! * **flow table** — LRU hash table vs naive linear scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use px_core::flowtable::FlowTable;
use px_core::merge::{MergeConfig, MergeEngine};
use px_core::pipeline::{run_pipeline, PipelineConfig, SystemVariant, TraceGen, WorkloadKind};
use px_wire::FlowKey;
use std::net::Ipv4Addr;

fn bench_delayed_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_delayed_merge");
    g.sample_size(10);
    for (label, hold) in [("hold_50us", 50_000u64), ("hold_off", 0)] {
        g.bench_with_input(BenchmarkId::new("pipeline", label), &hold, |b, &hold| {
            b.iter(|| {
                let mut cfg = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, 4);
                cfg.trace_pkts = 10_000;
                cfg.n_flows = 100;
                cfg.hold_ns = hold;
                run_pipeline(std::hint::black_box(cfg)).conversion_yield
            });
        });
    }
    g.finish();
}

fn bench_merge_engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_merge_engine");
    g.sample_size(10);
    // Pre-generate a trace once; measure pure engine push cost.
    let mut tracer = TraceGen::new(WorkloadKind::Tcp, 64, 1500, 12, 3);
    let trace: Vec<Vec<u8>> = tracer.generate(5_000).into_iter().map(|(_, p)| p).collect();
    g.bench_function("merge_push_5k_pkts", |b| {
        b.iter(|| {
            let mut eng = MergeEngine::new(MergeConfig::default());
            let mut n = 0usize;
            for (i, p) in trace.iter().enumerate() {
                n += eng.push(i as u64 * 100, p.clone()).len();
            }
            n + eng.flush_all().len()
        });
    });
    g.finish();
}

/// A deliberately naive comparison point: per-flow state in a Vec with
/// linear scans (what PXGW must *not* do at 800+ flows).
struct LinearTable<V> {
    entries: Vec<(FlowKey, V)>,
}

impl<V> LinearTable<V> {
    fn get_mut(&mut self, key: &FlowKey) -> Option<&mut V> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

fn bench_flowtable(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_flowtable");
    let keys: Vec<FlowKey> = (0..800u16)
        .map(|i| {
            FlowKey::tcp(
                Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
                30000 + i,
                Ipv4Addr::new(10, 1, 0, 1),
                5201,
            )
        })
        .collect();
    g.bench_function("lru_hash_800flows", |b| {
        let mut t: FlowTable<u64> = FlowTable::new(2048);
        for (i, k) in keys.iter().enumerate() {
            t.insert(*k, i as u64);
        }
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % keys.len();
            *t.get_mut(std::hint::black_box(&keys[i])).unwrap()
        });
    });
    g.bench_function("linear_scan_800flows", |b| {
        let mut t = LinearTable {
            entries: keys
                .iter()
                .enumerate()
                .map(|(i, k)| (*k, i as u64))
                .collect(),
        };
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % keys.len();
            *t.get_mut(std::hint::black_box(&keys[i])).unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_delayed_merge,
    bench_merge_engine_throughput,
    bench_flowtable,
    bench_steering,
    bench_cc_algorithms
);
criterion_main!(benches);

mod steering_ablation {
    use super::*;
    use px_core::steer::{FlowClass, FlowClassifier, SteerConfig};

    /// A mice-heavy mixed trace: 4 elephant flows with long runs, 200
    /// mice with 1-2 packets each, interleaved.
    pub fn mixed_trace() -> Vec<Vec<u8>> {
        let mut elephants = TraceGen::new(WorkloadKind::Tcp, 4, 1500, 16, 11);
        let mut mice = TraceGen::new(WorkloadKind::Tcp, 200, 300, 1, 12);
        let e = elephants.generate(3_000);
        let m = mice.generate(1_000);
        let mut out = Vec::with_capacity(4_000);
        let (mut ei, mut mi) = (0usize, 0usize);
        // 3:1 interleave.
        while ei < e.len() || mi < m.len() {
            for _ in 0..3 {
                if ei < e.len() {
                    out.push(e[ei].1.clone());
                    ei += 1;
                }
            }
            if mi < m.len() {
                out.push(m[mi].1.clone());
                mi += 1;
            }
        }
        out
    }

    pub fn run_with_steering(trace: &[Vec<u8>], steer: bool) -> (usize, u64) {
        let mut classifier = steer.then(|| FlowClassifier::new(SteerConfig::default()));
        let mut eng = MergeEngine::new(MergeConfig::default());
        let mut forwarded = 0usize;
        for (i, pkt) in trace.iter().enumerate() {
            let now = i as u64 * 200;
            if let Some(cl) = &mut classifier {
                if let Ok(key) = px_sim::nic::flow_key_of(pkt) {
                    if cl.classify(now, &key) == FlowClass::Mouse {
                        forwarded += 1; // hairpinned, no merge-engine work
                        continue;
                    }
                }
            }
            forwarded += eng.push(now, pkt.clone()).len();
        }
        forwarded += eng.flush_all().len();
        (forwarded, eng.lookups())
    }
}

fn bench_steering(c: &mut Criterion) {
    let trace = steering_ablation::mixed_trace();
    let mut g = c.benchmark_group("ablation_steering");
    g.sample_size(10);
    for (label, steer) in [("with_steering", true), ("without_steering", false)] {
        g.bench_with_input(
            BenchmarkId::new("mixed_trace", label),
            &steer,
            |b, &steer| {
                b.iter(|| {
                    steering_ablation::run_with_steering(std::hint::black_box(&trace), steer)
                });
            },
        );
    }
    g.finish();
}

fn bench_cc_algorithms(c: &mut Criterion) {
    use px_sim::Nanos;
    use px_tcp::conn::CcAlgo;
    use px_workload::iperf::IperfPair;
    let mut g = c.benchmark_group("ablation_congestion_control");
    g.sample_size(10);
    for (label, cc) in [("reno", CcAlgo::Reno), ("cubic", CcAlgo::Cubic)] {
        g.bench_with_input(BenchmarkId::new("wan_2s", label), &cc, |b, &cc| {
            b.iter(|| {
                let mut pair = IperfPair::paper_wan(1500);
                pair.duration = Nanos::from_secs(2);
                pair.cc = cc;
                pair.run_tcp().aggregate_bps
            });
        });
    }
    g.finish();
}
