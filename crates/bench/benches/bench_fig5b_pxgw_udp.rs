//! Criterion bench for Fig. 5b: the PXGW caravan (UDP) pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use px_core::pipeline::{run_pipeline, PipelineConfig, SystemVariant, WorkloadKind};

fn bench_fig5b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5b_pxgw_udp");
    g.sample_size(10);
    for (label, variant) in [
        ("px", SystemVariant::Px),
        ("px_hdr", SystemVariant::PxHeaderOnly),
    ] {
        g.bench_with_input(
            BenchmarkId::new("pipeline_8core", label),
            &variant,
            |b, &v| {
                b.iter(|| {
                    let mut cfg = PipelineConfig::fig5(v, WorkloadKind::Udp, 8);
                    cfg.trace_pkts = 10_000;
                    cfg.n_flows = 200;
                    run_pipeline(std::hint::black_box(cfg)).throughput_bps
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig5b);
criterion_main!(benches);
