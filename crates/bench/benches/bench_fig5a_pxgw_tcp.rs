//! Criterion bench for Fig. 5a: the PXGW multi-core TCP pipeline — the
//! real merge engines over an RSS-sharded trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use px_core::pipeline::{run_pipeline, PipelineConfig, SystemVariant, WorkloadKind};

fn bench_fig5a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5a_pxgw_tcp");
    g.sample_size(10);
    for (label, variant) in [
        ("baseline", SystemVariant::BaselineGro),
        ("px", SystemVariant::Px),
        ("px_hdr", SystemVariant::PxHeaderOnly),
    ] {
        g.bench_with_input(
            BenchmarkId::new("pipeline_8core", label),
            &variant,
            |b, &v| {
                b.iter(|| {
                    let mut cfg = PipelineConfig::fig5(v, WorkloadKind::Tcp, 8);
                    cfg.trace_pkts = 10_000;
                    cfg.n_flows = 200;
                    run_pipeline(std::hint::black_box(cfg)).throughput_bps
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig5a);
criterion_main!(benches);
