//! Criterion bench for §5.3: one full F-PMTUD discovery (network build +
//! probe + fragment + report) vs a PLPMTUD binary search, per iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use px_pmtud::fpmtud::{FpmtudDaemon, FpmtudProber, ProberConfig};
use px_pmtud::plpmtud::{PlpmtudConfig, PlpmtudProber};
use px_pmtud::topology::{build_path, Hop, DAEMON_ADDR, PROBER_ADDR};
use px_sim::Nanos;

fn hops() -> Vec<Hop> {
    vec![
        Hop::new(9000, 100),
        Hop::new(1500, 10_000),
        Hop::new(1500, 100),
    ]
}

fn bench_fpmtud(c: &mut Criterion) {
    let mut g = c.benchmark_group("fpmtud");
    g.bench_function("fpmtud_discovery", |b| {
        b.iter(|| {
            let prober = FpmtudProber::new(ProberConfig::new(PROBER_ADDR, DAEMON_ADDR, 9000));
            let daemon = FpmtudDaemon::new(DAEMON_ADDR);
            let (mut net, p, _) = build_path(1, prober, daemon, &hops(), false);
            net.run_until(Nanos::from_secs(5));
            net.node_ref::<FpmtudProber>(p).outcome.clone()
        });
    });
    g.bench_function("plpmtud_discovery", |b| {
        b.iter(|| {
            let prober = PlpmtudProber::new(PlpmtudConfig::scamper(PROBER_ADDR, DAEMON_ADDR, 9000));
            let daemon = FpmtudDaemon::new(DAEMON_ADDR);
            let (mut net, p, _) = build_path(2, prober, daemon, &hops(), false);
            net.run_until(Nanos::from_secs(120));
            net.node_ref::<PlpmtudProber>(p).outcome.clone()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fpmtud);
criterion_main!(benches);
