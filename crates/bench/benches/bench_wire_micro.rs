//! Microbenches of the wire-format primitives every packet crosses:
//! checksum, Toeplitz RSS, TCP coalesce, TSO split, IPv4 fragmentation,
//! caravan bundling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use px_sim::nic::{try_coalesce, tso_split};
use px_wire::caravan::CaravanBuilder;
use px_wire::checksum;
use px_wire::frag::fragment;
use px_wire::ipv4::Ipv4Repr;
use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr};
use px_wire::{FlowKey, IpProtocol, RssHasher, UdpRepr};
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn tcp_pkt(seq: u32, len: usize) -> Vec<u8> {
    let repr = TcpRepr {
        src_port: 5000,
        dst_port: 80,
        seq: SeqNum(seq),
        ack: SeqNum(1),
        flags: TcpFlags::ACK,
        window: 1024,
        options: vec![],
    };
    let seg = repr.build_segment(SRC, DST, &vec![0xAB; len]);
    Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
        .build_packet(&seg)
        .unwrap()
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_micro");

    let data = vec![0xA5u8; 1500];
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("checksum_1500B", |b| {
        b.iter(|| checksum::checksum(std::hint::black_box(&data)))
    });

    let h = RssHasher::microsoft();
    let key = FlowKey::tcp(SRC, 40000, DST, 80);
    g.throughput(Throughput::Elements(1));
    g.bench_function("toeplitz_hash", |b| {
        b.iter(|| h.hash(std::hint::black_box(&key)))
    });

    let a = tcp_pkt(0, 1460);
    let bpkt = tcp_pkt(1460, 1460);
    g.bench_function("tcp_coalesce_pair", |b| {
        b.iter(|| try_coalesce(std::hint::black_box(&a), &bpkt, 9000).unwrap())
    });

    let jumbo = tcp_pkt(0, 8760);
    g.bench_function("tso_split_9000_to_1500", |b| {
        b.iter(|| tso_split(std::hint::black_box(&jumbo), 1500).unwrap())
    });

    let big_udp = {
        let dg = UdpRepr {
            src_port: 1,
            dst_port: 2,
        }
        .build_datagram(SRC, DST, &vec![0u8; 8000])
        .unwrap();
        Ipv4Repr::new(SRC, DST, IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap()
    };
    g.bench_function("ipv4_fragment_8000_to_1500", |b| {
        b.iter(|| fragment(std::hint::black_box(&big_udp), 1500).unwrap())
    });

    let dgram = UdpRepr {
        src_port: 5000,
        dst_port: 4433,
    }
    .build_datagram(SRC, DST, &vec![0u8; 1172])
    .unwrap();
    g.bench_function("caravan_bundle_7_datagrams", |b| {
        b.iter(|| {
            let mut cb = CaravanBuilder::new(8972);
            for _ in 0..7 {
                if !cb.fits(&dgram) {
                    break;
                }
                cb.push(std::hint::black_box(&dgram)).unwrap();
            }
            cb.finish()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
